"""Experiment C2b — IPC cost in one address space.

Section 2: "Inter-process communication is also much cheaper in a single
address space."

Measured side: bytes/second through an in-VM pipe between two JThreads
(the same pipes the shell's ``|`` uses).  Model side: a cross-process
Unix pipe with its two kernel copies.
"""

import os
import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from _common import (  # noqa: E402,F401
    banner,
    bench_mvm,
    record_bench,
    register_main,
)

from repro.io.streams import BufferedInputStream, make_pipe  # noqa: E402
from repro.jvm.threads import JThread, ThreadGroup  # noqa: E402
from repro.procsim.model import ProcessCostModel  # noqa: E402

#: REPRO_BENCH_N scales every series (smoke runs force it tiny).
BENCH_N = int(os.environ.get("REPRO_BENCH_N", "0"))
SMOKE = bool(BENCH_N)

PAYLOAD = b"x" * 8192
CHUNKS = BENCH_N or 512  # 4 MiB per call at the default
LINES = (BENCH_N * 4) if BENCH_N else 2000
LINE = b"pipeline payload, about a hundred bytes of typical line-oriented "\
    b"program output padding.........\n"
BLOB_LINES = (BENCH_N * 40) if BENCH_N else 20000


def _chunk_transfer(legacy: bool) -> float:
    """One 8 KiB-chunk transfer; returns MB/s.

    The ring side is the PR's data plane as shipped: default capacity
    and the zero-copy ``drain_into`` read path.  The legacy side is the
    exact pre-ring configuration — 64 KiB bytearray channel, 64 KiB
    copying reads — kept behind ``make_pipe(legacy=True)`` for this
    comparison.
    """
    root = ThreadGroup(None, "system")
    if legacy:
        reader, writer = make_pipe(capacity=64 * 1024, legacy=True)
    else:
        reader, writer = make_pipe()
    received = []

    def consume():
        total = 0
        if legacy:
            while True:
                chunk = reader.read(64 * 1024)
                if not chunk:
                    break
                total += len(chunk)
        else:
            sink = lambda segments: None  # noqa: E731 - borrow-and-drop
            while True:
                drained = reader.drain_into(sink)
                if not drained:
                    break
                total += drained
        received.append(total)

    consumer = JThread(target=consume, group=root)
    consumer.start()
    start = time.perf_counter()
    for _ in range(CHUNKS):
        writer.write(PAYLOAD)
    writer.close()
    consumer.join(30)
    elapsed = time.perf_counter() - start
    assert received == [len(PAYLOAD) * CHUNKS]
    return len(PAYLOAD) * CHUNKS / (1024 * 1024) / elapsed


def test_bench_in_vm_pipe_throughput(benchmark):
    benchmark.pedantic(lambda: _chunk_transfer(legacy=False),
                       rounds=7, iterations=1, warmup_rounds=2)
    transferred_mb = len(PAYLOAD) * CHUNKS / (1024 * 1024)
    measured_mb_s = transferred_mb / benchmark.stats.stats.min

    # The pre-PR pipe at its default capacity, measured inline best-of.
    legacy_mb_s = max(_chunk_transfer(legacy=True) for _ in range(7))
    speedup = measured_mb_s / legacy_mb_s

    model = ProcessCostModel()
    print(banner("C2b: IPC bandwidth — ring pipe vs legacy vs OS pipe"))
    print(f"ring pipe (drain_into):       {measured_mb_s:10.1f} MB/s")
    print(f"legacy pipe (pre-PR config):  {legacy_mb_s:10.1f} MB/s")
    print(f"ring over legacy: x{speedup:0.1f}")
    print(f"cross-process pipe (model):   "
          f"{model.process_pipe_mb_s:10.1f} MB/s")
    print(f"advantage: x{model.ipc_speedup(measured_mb_s):0.1f}")
    record_bench("ipc", {
        "bench": "chunk_throughput", "chunks": CHUNKS,
        "chunk_bytes": len(PAYLOAD), "smoke": SMOKE,
        "ring_mb_s": measured_mb_s, "legacy_mb_s": legacy_mb_s,
        "speedup": speedup})
    assert measured_mb_s > model.process_pipe_mb_s, \
        "paper claim: in-address-space IPC must beat OS pipes"
    if not SMOKE:  # tiny smoke transfers are all constant overhead
        assert speedup >= 2.0, (
            f"ring data plane regressed vs legacy pipe: x{speedup:0.2f}")


def test_bench_line_read_buffered_vs_unbuffered(benchmark):
    """Transport fast path, layer 1: ``read_line`` through a pipe.

    Unbuffered, every byte costs one pipe condition-variable acquisition
    (``read_line`` → ``read_byte`` → ``read(1)``).  Buffered, lock
    traffic scales with 8 KB chunks.  The dist protocol reads every
    JSON-lines frame this way, so this ratio is the frame-receive win.
    """
    root = ThreadGroup(None, "system")

    def feed(writer):
        def produce():
            try:
                for _ in range(LINES):
                    writer.write(LINE)
            finally:
                writer.close()

        producer = JThread(target=produce, group=root)
        producer.start()
        return producer

    def read_all_lines(source):
        count = 0
        while source.read_line() is not None:
            count += 1
        assert count == LINES

    def buffered_run():
        reader, writer = make_pipe(capacity=64 * 1024)
        producer = feed(writer)
        read_all_lines(BufferedInputStream(reader))
        producer.join(30)

    benchmark.pedantic(buffered_run, rounds=5, iterations=1,
                       warmup_rounds=1)
    buffered_lines_s = LINES / benchmark.stats.stats.mean

    # The unbuffered comparison point, measured inline.
    start = time.perf_counter()
    reader, writer = make_pipe(capacity=64 * 1024)
    producer = feed(writer)
    read_all_lines(reader)
    producer.join(30)
    unbuffered_lines_s = LINES / (time.perf_counter() - start)

    print(banner("C2b-line: pipe read_line — buffered vs unbuffered"))
    print(f"unbuffered (lock per byte):   {unbuffered_lines_s:10.0f} "
          f"lines/s")
    print(f"buffered (lock per chunk):    {buffered_lines_s:10.0f} "
          f"lines/s")
    print(f"advantage: x{buffered_lines_s / unbuffered_lines_s:0.1f}")
    record_bench("ipc", {
        "bench": "line_read", "lines": LINES, "smoke": SMOKE,
        "buffered_lines_s": buffered_lines_s,
        "unbuffered_lines_s": unbuffered_lines_s})
    assert buffered_lines_s > unbuffered_lines_s, \
        "buffered line reads must beat one-lock-per-byte reads"


def test_bench_shell_pipe_end_to_end(benchmark, bench_mvm):
    """The same channel, through real applications: cat /big | wc."""
    from repro.io.file import write_text
    ctx = bench_mvm.initial.context()
    blob = "payload-line\n" * BLOB_LINES  # ~260 KB at the default
    write_text(ctx, "/tmp/blob.txt", blob)

    with bench_mvm.host_session():
        from repro.io.streams import ByteArrayOutputStream, PrintStream

        def pipeline():
            sink = ByteArrayOutputStream()
            app = bench_mvm.exec(
                "tools.Shell", ["-c", "cat /tmp/blob.txt | wc -l"],
                stdout=PrintStream(sink), stderr=PrintStream(sink))
            assert app.wait_for(30) == 0
            assert sink.to_text().strip() == str(BLOB_LINES)

        benchmark.pedantic(pipeline, rounds=5, iterations=1,
                           warmup_rounds=1)
    blob_mb = len(blob) / (1024 * 1024)
    app_level_mb_s = blob_mb / benchmark.stats.stats.mean
    print(banner("C2b-app: application-level pipe (cat | wc)"))
    print(f"end-to-end through two applications: "
          f"{app_level_mb_s:10.2f} MB/s")
    record_bench("ipc", {
        "bench": "shell_pipe", "blob_bytes": len(blob), "smoke": SMOKE,
        "shell_mb_s": app_level_mb_s})
