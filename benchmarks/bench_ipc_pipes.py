"""Experiment C2b — IPC cost in one address space.

Section 2: "Inter-process communication is also much cheaper in a single
address space."

Measured side: bytes/second through an in-VM pipe between two JThreads
(the same pipes the shell's ``|`` uses).  Model side: a cross-process
Unix pipe with its two kernel copies.
"""

import os
import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from _common import banner, bench_mvm, register_main  # noqa: E402,F401

from repro.io.streams import BufferedInputStream, make_pipe  # noqa: E402
from repro.jvm.threads import JThread, ThreadGroup  # noqa: E402
from repro.procsim.model import ProcessCostModel  # noqa: E402

#: REPRO_BENCH_N scales every series (smoke runs force it tiny).
BENCH_N = int(os.environ.get("REPRO_BENCH_N", "0"))

PAYLOAD = b"x" * 8192
CHUNKS = BENCH_N or 512  # 4 MiB per call at the default
LINES = (BENCH_N * 4) if BENCH_N else 2000
LINE = b"pipeline payload, about a hundred bytes of typical line-oriented "\
    b"program output padding.........\n"
BLOB_LINES = (BENCH_N * 40) if BENCH_N else 20000


def test_bench_in_vm_pipe_throughput(benchmark):
    root = ThreadGroup(None, "system")

    def transfer():
        reader, writer = make_pipe(capacity=64 * 1024)
        received = []

        def consume():
            total = 0
            while True:
                chunk = reader.read(64 * 1024)
                if not chunk:
                    break
                total += len(chunk)
            received.append(total)

        consumer = JThread(target=consume, group=root)
        consumer.start()
        for _ in range(CHUNKS):
            writer.write(PAYLOAD)
        writer.close()
        consumer.join(30)
        assert received == [len(PAYLOAD) * CHUNKS]

    benchmark.pedantic(transfer, rounds=5, iterations=1, warmup_rounds=1)
    transferred_mb = len(PAYLOAD) * CHUNKS / (1024 * 1024)
    measured_mb_s = transferred_mb / benchmark.stats.stats.mean
    model = ProcessCostModel()
    print(banner("C2b: IPC bandwidth — in-VM pipe vs OS pipe"))
    print(f"in-VM pipe (measured):        {measured_mb_s:10.1f} MB/s")
    print(f"cross-process pipe (model):   "
          f"{model.process_pipe_mb_s:10.1f} MB/s")
    print(f"advantage: x{model.ipc_speedup(measured_mb_s):0.1f}")
    assert measured_mb_s > model.process_pipe_mb_s, \
        "paper claim: in-address-space IPC must beat OS pipes"


def test_bench_line_read_buffered_vs_unbuffered(benchmark):
    """Transport fast path, layer 1: ``read_line`` through a pipe.

    Unbuffered, every byte costs one pipe condition-variable acquisition
    (``read_line`` → ``read_byte`` → ``read(1)``).  Buffered, lock
    traffic scales with 8 KB chunks.  The dist protocol reads every
    JSON-lines frame this way, so this ratio is the frame-receive win.
    """
    root = ThreadGroup(None, "system")

    def feed(writer):
        def produce():
            try:
                for _ in range(LINES):
                    writer.write(LINE)
            finally:
                writer.close()

        producer = JThread(target=produce, group=root)
        producer.start()
        return producer

    def read_all_lines(source):
        count = 0
        while source.read_line() is not None:
            count += 1
        assert count == LINES

    def buffered_run():
        reader, writer = make_pipe(capacity=64 * 1024)
        producer = feed(writer)
        read_all_lines(BufferedInputStream(reader))
        producer.join(30)

    benchmark.pedantic(buffered_run, rounds=5, iterations=1,
                       warmup_rounds=1)
    buffered_lines_s = LINES / benchmark.stats.stats.mean

    # The unbuffered comparison point, measured inline.
    start = time.perf_counter()
    reader, writer = make_pipe(capacity=64 * 1024)
    producer = feed(writer)
    read_all_lines(reader)
    producer.join(30)
    unbuffered_lines_s = LINES / (time.perf_counter() - start)

    print(banner("C2b-line: pipe read_line — buffered vs unbuffered"))
    print(f"unbuffered (lock per byte):   {unbuffered_lines_s:10.0f} "
          f"lines/s")
    print(f"buffered (lock per chunk):    {buffered_lines_s:10.0f} "
          f"lines/s")
    print(f"advantage: x{buffered_lines_s / unbuffered_lines_s:0.1f}")
    assert buffered_lines_s > unbuffered_lines_s, \
        "buffered line reads must beat one-lock-per-byte reads"


def test_bench_shell_pipe_end_to_end(benchmark, bench_mvm):
    """The same channel, through real applications: cat /big | wc."""
    from repro.io.file import write_text
    ctx = bench_mvm.initial.context()
    blob = "payload-line\n" * BLOB_LINES  # ~260 KB at the default
    write_text(ctx, "/tmp/blob.txt", blob)

    with bench_mvm.host_session():
        from repro.io.streams import ByteArrayOutputStream, PrintStream

        def pipeline():
            sink = ByteArrayOutputStream()
            app = bench_mvm.exec(
                "tools.Shell", ["-c", "cat /tmp/blob.txt | wc -l"],
                stdout=PrintStream(sink), stderr=PrintStream(sink))
            assert app.wait_for(30) == 0
            assert sink.to_text().strip() == str(BLOB_LINES)

        benchmark.pedantic(pipeline, rounds=5, iterations=1,
                           warmup_rounds=1)
    blob_mb = len(blob) / (1024 * 1024)
    app_level_mb_s = blob_mb / benchmark.stats.stats.mean
    print(banner("C2b-app: application-level pipe (cat | wc)"))
    print(f"end-to-end through two applications: "
          f"{app_level_mb_s:10.2f} MB/s")
