"""Experiment C1 — N applications: N JVM processes vs one MPJVM.

Section 2: "a small device or an old computer system may be under-powered
and equipped with inadequate memory such that it is crippling to try to
start multiple JVMs."

We measure the single-VM side for real — per-application memory (via
tracemalloc over parked applications) and per-application launch time —
and put the calibrated process model (see ``repro.procsim.model``) next to
it for the N-process side, then print the paper's comparison for several
fleet sizes.
"""

import sys
import tracemalloc

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from _common import banner, bench_mvm, register_main  # noqa: E402,F401

from repro.jvm.threads import JThread  # noqa: E402
from repro.procsim.model import (  # noqa: E402
    ProcessCostModel,
    format_table,
    section2_table,
)


def _parked_main(jclass, ctx, args):
    JThread.sleep(60.0)
    return 0


def test_bench_per_application_memory(benchmark, bench_mvm):
    """Real per-application memory of the single-VM design."""
    class_name = register_main(bench_mvm.vm, "Parked", _parked_main)
    sample = 20

    with bench_mvm.host_session():
        def measure() -> float:
            tracemalloc.start()
            before, __ = tracemalloc.get_traced_memory()
            apps = [bench_mvm.exec(class_name) for _ in range(sample)]
            after, __ = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            for app in apps:
                app.destroy()
            for app in apps:
                app.wait_for(10)
            return (after - before) / sample

        per_app_bytes = benchmark.pedantic(measure, rounds=5, iterations=1,
                                           warmup_rounds=1)
    per_app_kb = per_app_bytes / 1024
    model = ProcessCostModel()
    print(banner("C1: memory per additional application"))
    print(f"one more app in the MPJVM (measured):  {per_app_kb:10.1f} KB")
    print(f"one more JVM process (model):          "
          f"{model.jvm_base_memory_kb:10.1f} KB")
    print(f"advantage: x{model.jvm_base_memory_kb / max(per_app_kb, 0.001):0.0f}")
    assert per_app_kb < model.jvm_base_memory_kb, \
        "paper claim: apps must be much lighter than JVM processes"


def test_bench_section2_comparison_table(benchmark, bench_mvm):
    """The full Section 2 table, with the launch time measured live."""
    class_name = register_main(bench_mvm.vm, "NoopRow",
                               lambda jclass, ctx, args: 0)

    with bench_mvm.host_session():
        def launch():
            app = bench_mvm.exec(class_name)
            assert app.wait_for(10) == 0

        benchmark.pedantic(launch, rounds=20, iterations=1,
                           warmup_rounds=3)
    measured_launch_s = benchmark.stats.stats.mean
    model = ProcessCostModel()
    for n_apps in (2, 4, 8, 16):
        rows = section2_table(n_apps, model,
                              measured_launch_s=measured_launch_s)
        print(format_table(
            rows, banner(f"C1: {n_apps} applications — N JVMs vs 1 MPJVM")))
        memory_row, startup_row = rows[0], rows[1]
        assert memory_row.advantage > 1.0
        assert startup_row.advantage > 1.0
        # The memory advantage grows with fleet size (the small-device
        # argument gets stronger, not weaker).
    small = section2_table(2, model, measured_launch_s=measured_launch_s)
    large = section2_table(16, model, measured_launch_s=measured_launch_s)
    assert large[0].advantage > small[0].advantage
