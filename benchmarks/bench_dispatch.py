"""Experiment C3 / F2 / F4 — event dispatching: centralized vs per-app.

Section 5.4: "This redesign also improves responsiveness, as each
application's event dispatching is now independent from other
applications."

Two measurements per dispatch mode:

* round-trip latency of a click (X server -> toolkit -> queue ->
  dispatcher -> listener) with an idle system;
* **responsiveness under load**: application A's callback blocks for
  ``BLOCK_S`` seconds; we measure how long application B's click takes to
  be delivered.  Centralized: ~BLOCK_S (head-of-line blocking).
  Per-application: unaffected.
"""

import os
import sys
import threading
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])

import pytest  # noqa: E402

from _common import banner, record_bench, register_main  # noqa: E402

from repro.awt.components import Button, Frame  # noqa: E402
from repro.awt.dispatch import EventDispatchThread  # noqa: E402
from repro.awt.events import (  # noqa: E402
    ActionEvent,
    EventQueue,
    PaintEvent,
)
from repro.awt.toolkit import CENTRALIZED, PER_APPLICATION  # noqa: E402
from repro.core.launcher import MultiProcVM  # noqa: E402
from repro.jvm.threads import JThread, ThreadGroup  # noqa: E402

#: REPRO_BENCH_N scales every series (smoke runs force it tiny).
BENCH_N = int(os.environ.get("REPRO_BENCH_N", "0"))
SMOKE = bool(BENCH_N)

BLOCK_S = 0.25
BURST_EVENTS = (BENCH_N * 20) if BENCH_N else 10000


class GuiProbe:
    """A GUI application exposing a clickable button to the bench."""

    def __init__(self, mvm, name, on_click=None):
        self.name = name
        self.clicked = threading.Event()
        self.on_click = on_click
        class_name = register_main(mvm.vm, f"Gui{name}", self._main)
        self.app = mvm.exec(class_name)
        deadline = time.monotonic() + 5
        self.window_id = None
        while time.monotonic() < deadline and self.window_id is None:
            self.window_id = mvm.toolkit.xserver.find_window(
                f"win-{name}")
            time.sleep(0.005)
        assert self.window_id is not None
        self.xserver = mvm.toolkit.xserver

    def _main(self, jclass, ctx, args):
        frame = Frame(f"win-{self.name}", name=f"frame-{self.name}")
        button = Button("Go", name=f"button-{self.name}")

        def handler(event):
            if self.on_click is not None:
                self.on_click(event)
            self.clicked.set()

        button.add_action_listener(handler)
        frame.add(button)
        frame.show(ctx.vm.toolkit)
        JThread.sleep(3600.0)
        return 0

    def click_and_wait(self, timeout=10.0) -> float:
        self.clicked.clear()
        start = time.perf_counter()
        self.xserver.click_component(self.window_id, f"button-{self.name}")
        assert self.clicked.wait(timeout)
        return time.perf_counter() - start

    def close(self):
        self.app.destroy()
        self.app.wait_for(5)


def _measure_blocked_latency(mode: str) -> tuple[float, float]:
    """(idle latency, latency while the other app's callback blocks)."""
    mvm = MultiProcVM.boot(dispatch_mode=mode)
    try:
        with mvm.host_session():
            blocker = GuiProbe(mvm, "blocker",
                               on_click=lambda e: time.sleep(BLOCK_S))
            victim = GuiProbe(mvm, "victim")
            idle = victim.click_and_wait()
            # Fire the blocking callback, then immediately click B.
            blocker.clicked.clear()
            blocker.xserver.click_component(blocker.window_id,
                                            "button-blocker")
            time.sleep(0.02)  # let A's dispatcher pick the event up
            blocked = victim.click_and_wait()
            blocker.clicked.wait(10)
            blocker.close()
            victim.close()
            return idle, blocked
    finally:
        mvm.shutdown()


class _CountingComponent:
    """A bare event sink: counts deliveries, flags the sentinel event."""

    def __init__(self):
        self.dispatched = 0
        self.paints = 0
        self.done = threading.Event()

    def process_event(self, event):
        self.dispatched += 1
        if isinstance(event, PaintEvent):
            self.paints += 1
        if getattr(event, "command", None) == "sentinel":
            self.done.set()


def _burst_dispatch() -> tuple[float, int, int]:
    """Post a BURST_EVENTS storm straight at one EDT.

    Mixed burst: three repaints per action event, all aimed at a handful
    of components — the shape of a remote-playground paint storm.
    Returns (events/s wall-clock, repaints posted, repaints executed).
    """
    root = ThreadGroup(None, "system")
    queue = EventQueue("bench-burst")
    components = [_CountingComponent() for _ in range(4)]
    edt = EventDispatchThread(queue, root, "bench-edt", daemon=True)
    edt.start()
    repaints = 0
    start = time.perf_counter()
    for index in range(BURST_EVENTS):
        component = components[index % len(components)]
        if index % 4:
            queue.post_event(PaintEvent(component))
            repaints += 1
        else:
            queue.post_event(ActionEvent(component, "go"))
    sentinel = components[0]
    queue.post_event(ActionEvent(sentinel, "sentinel"))
    assert sentinel.done.wait(30)
    elapsed = time.perf_counter() - start
    edt.shutdown()
    edt.join(5)
    executed = sum(component.paints for component in components)
    return (BURST_EVENTS + 1) / elapsed, repaints, executed


def test_bench_event_burst_dispatch(benchmark):
    """C3-burst: batched drain + repaint coalescing under a paint storm."""
    benchmark.pedantic(_burst_dispatch, rounds=5, iterations=1,
                       warmup_rounds=1)
    events_s, posted, executed = _burst_dispatch()
    for _ in range(4):  # best-of, same as the other series
        candidate = _burst_dispatch()
        if candidate[0] > events_s:
            events_s, posted, executed = candidate
    coalesce_ratio = executed / posted if posted else 1.0
    print(banner("C3-burst: event storm through one dispatcher"))
    print(f"events dispatched:            {events_s:10.0f} events/s")
    print(f"repaints executed/posted:     {executed}/{posted} "
          f"({coalesce_ratio:0.3f})")
    record_bench("dispatch", {
        "bench": "burst_dispatch", "events": BURST_EVENTS, "smoke": SMOKE,
        "events_s": events_s, "repaints_posted": posted,
        "repaints_executed": executed,
        "paint_coalesce_ratio": coalesce_ratio})
    if not SMOKE:
        assert coalesce_ratio < 1.0, (
            "a paint storm at 4 components must coalesce some repaints")


@pytest.mark.parametrize("mode", [CENTRALIZED, PER_APPLICATION])
def test_bench_dispatch_round_trip(benchmark, mode):
    mvm = MultiProcVM.boot(dispatch_mode=mode)
    try:
        with mvm.host_session():
            probe = GuiProbe(mvm, "latency")
            benchmark.pedantic(probe.click_and_wait, rounds=50,
                               iterations=1, warmup_rounds=5)
            probe.close()
    finally:
        mvm.shutdown()
    print(banner(f"C3: idle event round-trip, {mode}"))
    print(f"mean: {benchmark.stats.stats.mean * 1e6:8.1f} us")


def test_bench_responsiveness_isolation(benchmark):
    """The headline C3 comparison (printed table + shape assertions)."""
    def measure_both():
        central = _measure_blocked_latency(CENTRALIZED)
        per_app = _measure_blocked_latency(PER_APPLICATION)
        return central, per_app

    (central_idle, central_blocked), (per_idle, per_blocked) = \
        benchmark.pedantic(measure_both, rounds=3, iterations=1)
    print(banner("C3: B's event latency while A's callback blocks "
                 f"for {BLOCK_S * 1000:.0f} ms"))
    print(f"{'mode':<18s}{'idle':>12s}{'under load':>14s}")
    print(f"{'centralized':<18s}{central_idle * 1000:>10.1f} ms"
          f"{central_blocked * 1000:>12.1f} ms")
    print(f"{'per-application':<18s}{per_idle * 1000:>10.1f} ms"
          f"{per_blocked * 1000:>12.1f} ms")
    print(f"responsiveness advantage under load: "
          f"x{central_blocked / max(per_blocked, 1e-9):0.0f}")
    # Shape assertions, per the paper's claim.
    assert central_blocked >= BLOCK_S * 0.8, \
        "centralized dispatch must suffer head-of-line blocking"
    assert per_blocked < BLOCK_S / 2, \
        "per-application dispatch must be unaffected by A's block"
