"""Experiment C4 / F5 — the cost of reloading System per application.

Section 5.5 buys isolation (own streams, own security-manager slot) at the
price of re-defining the System class once per application.  This bench
quantifies that price and compares it with the plain delegated (shared)
load, and shows where it sits inside the whole application launch.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from _common import banner, bench_mvm, register_main  # noqa: E402,F401

from repro.core.reload import ApplicationClassLoader  # noqa: E402


def test_bench_system_reload_per_application(benchmark, bench_mvm):
    """Define a fresh System copy (new loader + new statics + init)."""
    counter = [0]

    def reload_once():
        counter[0] += 1
        loader = ApplicationClassLoader(bench_mvm.vm.boot_loader,
                                        f"bench-{counter[0]}")
        jclass = loader.load_class("java.lang.System")
        assert jclass.loader is loader

    benchmark(reload_once)
    reload_us = benchmark.stats.stats.mean * 1e6
    print(banner("C4: System reload cost (per application)"))
    print(f"re-define System through a fresh loader: {reload_us:8.1f} us")


def test_bench_shared_load_baseline(benchmark, bench_mvm):
    """Baseline: the delegated (cached, shared) load of a system class."""
    loader = ApplicationClassLoader(bench_mvm.vm.boot_loader, "shared")
    loader.load_class("java.lang.SystemProperties")

    def shared_load():
        loader.load_class("java.lang.SystemProperties")

    benchmark(shared_load)
    print(banner("C4b: shared (delegated, cached) class load baseline"))
    print(f"mean: {benchmark.stats.stats.mean * 1e9:8.1f} ns")


def test_bench_extra_reloadable_classes_ablation(benchmark, bench_mvm):
    """Section 5.5's open question ("find out which of the JVM-wide state
    truly is JVM-wide") implies the reloadable set may grow; this ablation
    measures launch-side cost as it does."""
    from repro.jvm.classloading import ClassMaterial
    extra_names = []
    for index in range(16):
        name = f"bench.PerAppState{index}"
        if name not in bench_mvm.vm.registry:
            material = ClassMaterial(name)
            material.static_init = (
                lambda jclass: jclass.statics.update({"slot": 0}))
            bench_mvm.vm.registry.register(material)
        extra_names.append(name)

    import time
    results = {}
    for count in (0, 4, 16):
        chosen = extra_names[:count]
        loops = 200
        start = time.perf_counter()
        for index in range(loops):
            loader = ApplicationClassLoader(
                bench_mvm.vm.boot_loader, f"abl-{count}-{index}",
                extra_reloadable=chosen)
            loader.load_class("java.lang.System")
            for name in chosen:
                loader.load_class(name)
        results[count] = (time.perf_counter() - start) / loops * 1e6

    def baseline():
        loader = ApplicationClassLoader(bench_mvm.vm.boot_loader, "abl")
        loader.load_class("java.lang.System")

    benchmark(baseline)
    print(banner("C4d: reload-set size ablation (per-application cost)"))
    for count, micros in results.items():
        print(f"System + {count:2d} extra reloadable classes: "
              f"{micros:8.1f} us")
    assert results[16] > results[0], "more reloads must cost more"


def test_bench_reload_share_of_app_launch(benchmark, bench_mvm):
    """How much of a whole application launch the reload machinery is."""
    class_name = register_main(bench_mvm.vm, "ReloadShare",
                               lambda jclass, ctx, args: 0)

    with bench_mvm.host_session():
        def launch():
            app = bench_mvm.exec(class_name)
            assert app.wait_for(10) == 0

        benchmark.pedantic(launch, rounds=20, iterations=1,
                           warmup_rounds=3)
    launch_us = benchmark.stats.stats.mean * 1e6

    # Measure the reload alone, inline, for the share computation.
    import time
    loops = 200
    start = time.perf_counter()
    for index in range(loops):
        loader = ApplicationClassLoader(bench_mvm.vm.boot_loader,
                                        f"share-{index}")
        loader.load_class("java.lang.System")
    reload_us = (time.perf_counter() - start) / loops * 1e6
    print(banner("C4c: reload share of application launch"))
    print(f"full launch+exit:   {launch_us:8.1f} us")
    print(f"System reload only: {reload_us:8.1f} us "
          f"({100 * reload_us / launch_us:0.1f}% of launch)")
    assert reload_us < launch_us, \
        "reloading must not dominate application launch"
