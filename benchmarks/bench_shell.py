"""Experiment C7 — shell pipelines end to end (Section 6.1).

Measures what a user of the multi-processing JVM actually experiences:
the latency of simple commands, of multi-stage pipelines (each stage a
separate application connected by in-VM pipes), and of I/O redirection.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from _common import banner, bench_mvm  # noqa: E402,F401

from repro.io.file import write_text  # noqa: E402
from repro.io.streams import ByteArrayOutputStream, PrintStream  # noqa: E402


def run_lines(mvm, lines, expect=None):
    sink = ByteArrayOutputStream()
    app = mvm.exec("tools.Shell", ["-c", *lines],
                   stdout=PrintStream(sink), stderr=PrintStream(sink))
    assert app.wait_for(30) == 0
    if expect is not None:
        assert expect in sink.to_text(), sink.to_text()


def test_bench_simple_command(benchmark, bench_mvm):
    with bench_mvm.host_session():
        benchmark.pedantic(
            lambda: run_lines(bench_mvm, ["echo ping"], "ping"),
            rounds=20, iterations=1, warmup_rounds=3)
    print(banner("C7: shell round trip, one command (echo)"))
    print(f"mean: {benchmark.stats.stats.mean * 1000:8.2f} ms")


def test_bench_two_stage_pipeline(benchmark, bench_mvm):
    with bench_mvm.host_session():
        benchmark.pedantic(
            lambda: run_lines(bench_mvm, ["echo a b c | wc"], "1 3 6"),
            rounds=20, iterations=1, warmup_rounds=3)
    print(banner("C7: two-stage pipeline (echo | wc)"))
    print(f"mean: {benchmark.stats.stats.mean * 1000:8.2f} ms")


def test_bench_three_stage_pipeline(benchmark, bench_mvm):
    ctx = bench_mvm.initial.context()
    write_text(ctx, "/tmp/bench-words.txt",
               "".join(f"word{i} match\n" if i % 3 == 0 else f"word{i}\n"
                       for i in range(300)))
    with bench_mvm.host_session():
        benchmark.pedantic(
            lambda: run_lines(
                bench_mvm,
                ["cat /tmp/bench-words.txt | grep match | wc -l"], "100"),
            rounds=10, iterations=1, warmup_rounds=2)
    print(banner("C7: three-stage pipeline (cat | grep | wc)"))
    print(f"mean: {benchmark.stats.stats.mean * 1000:8.2f} ms")


def test_bench_redirection(benchmark, bench_mvm):
    with bench_mvm.host_session():
        benchmark.pedantic(
            lambda: run_lines(
                bench_mvm,
                ["echo redirected > /tmp/bench-out.txt",
                 "cat /tmp/bench-out.txt"], "redirected"),
            rounds=10, iterations=1, warmup_rounds=2)
    print(banner("C7: output redirection + read back"))
    print(f"mean: {benchmark.stats.stats.mean * 1000:8.2f} ms")


def test_bench_parse_only(benchmark):
    """The shell's own parsing cost, isolated from application launch."""
    from repro.tools.shell import parse, tokenize
    line = "cat /tmp/a.txt | grep 'needle in hay' | wc -l > /tmp/out & " \
           "echo done"

    def parse_line():
        pipelines = parse(tokenize(line))
        assert len(pipelines) == 2

    benchmark(parse_line)
    print(banner("C7: tokenizer+parser micro-cost"))
    print(f"mean: {benchmark.stats.stats.mean * 1e6:8.2f} us")
