"""Ablation benches for the Section 8 future-work subsystems.

* Shared-object IPC vs pipe IPC: the paper calls object sharing "very
  appealing ... as an inter-application communication mechanism" — we
  quantify the appeal by comparing a shared-object round trip (bind +
  lookup with the type-safety check) against pushing the same payload
  through a pipe.
* Distributed execution: latency of launching an application on another
  JVM over the simulated network, vs launching it locally.
"""

import os
import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from _common import banner, record_bench, register_main  # noqa: E402

from repro.core.launcher import MultiProcVM  # noqa: E402
from repro.dist.client import remote_exec  # noqa: E402
from repro.dist.protocol import FrameChannel  # noqa: E402
from repro.io.streams import make_pipe  # noqa: E402
from repro.jvm.threads import JThread, ThreadGroup  # noqa: E402
from repro.net.fabric import NetworkFabric  # noqa: E402
from repro.unixfs.machine import standard_process  # noqa: E402

#: REPRO_BENCH_N scales every series (smoke runs force it tiny).
BENCH_N = int(os.environ.get("REPRO_BENCH_N", "0"))
SMOKE = bool(BENCH_N)

PAYLOAD = "x" * 1024
STDOUT_LINES = (BENCH_N * 4) if BENCH_N else 2000
FRAMES = (BENCH_N * 8) if BENCH_N else 4000
FRAME_DATA = b"f" * 100


def boot_pair():
    """Two MPJVMs on one fabric; B runs the rexec daemon on 7100."""
    fabric = NetworkFabric()
    mvm_a = MultiProcVM.boot(
        os_context=standard_process(hostname="bench-a.example.com"),
        network=fabric)
    mvm_b = MultiProcVM.boot(
        os_context=standard_process(hostname="bench-b.example.com"),
        network=fabric)
    with mvm_b.host_session():
        mvm_b.exec("dist.RexecDaemon", ["7100"])
    deadline = time.monotonic() + 5
    while time.monotonic() < deadline:
        if fabric.resolve("bench-b.example.com")._listener(7100):
            break
        time.sleep(0.01)
    return mvm_a, mvm_b


def test_bench_shared_object_round_trip(benchmark):
    mvm = MultiProcVM.boot()
    try:
        with mvm.host_session():
            space = mvm.vm.shared_objects
            counter = [0]

            def round_trip():
                counter[0] += 1
                name = "bench-slot"
                space.bind(name, PAYLOAD, replace=True)
                assert space.lookup(name) == PAYLOAD

            benchmark(round_trip)
    finally:
        mvm.shutdown()
    shared_us = benchmark.stats.stats.mean * 1e6
    print(banner("§8a: shared-object bind+lookup (1 KB payload)"))
    print(f"mean: {shared_us:8.2f} us")


def test_bench_pipe_round_trip_same_payload(benchmark):
    """The comparison point: the same 1 KB through an in-VM pipe."""
    def round_trip():
        reader, writer = make_pipe()
        writer.write(PAYLOAD.encode())
        writer.close()
        assert len(reader.read_all()) == len(PAYLOAD)
        reader.close()

    benchmark(round_trip)
    pipe_us = benchmark.stats.stats.mean * 1e6
    print(banner("§8a: pipe write+read (1 KB payload, no threads)"))
    print(f"mean: {pipe_us:8.2f} us")


def test_bench_remote_vs_local_exec(benchmark):
    """§8b: launching on another JVM vs locally, same trivial app."""
    mvm_a, mvm_b = boot_pair()
    try:
        register_main(mvm_b.vm, "RemoteNoop", lambda j, c, a: 0)

        with mvm_a.host_session():
            ctx = mvm_a.initial.context()

            def remote_round_trip():
                remote = remote_exec(ctx, "bench-b.example.com",
                                     "bench.RemoteNoop", [],
                                     user="alice", password="wonderland")
                assert remote.wait_for(10) == 0
                remote.close()

            benchmark.pedantic(remote_round_trip, rounds=15, iterations=1,
                               warmup_rounds=2)
        remote_ms = benchmark.stats.stats.mean * 1000

        # Local comparison, measured inline.
        register_main(mvm_a.vm, "LocalNoop", lambda j, c, a: 0)
        with mvm_a.host_session():
            loops = 30
            start = time.perf_counter()
            for _ in range(loops):
                app = mvm_a.exec("bench.LocalNoop")
                assert app.wait_for(10) == 0
            local_ms = (time.perf_counter() - start) / loops * 1000
    finally:
        mvm_a.shutdown()
        mvm_b.shutdown()
    print(banner("§8b: remote exec vs local exec"))
    print(f"local application launch+exit:  {local_ms:8.2f} ms")
    print(f"remote (auth + wire + launch):  {remote_ms:8.2f} ms")
    print(f"network/auth overhead factor:   x{remote_ms / local_ms:0.1f}")
    assert remote_ms > local_ms, "remote exec cannot be cheaper than local"


def _frame_burst(vectored: bool) -> float:
    """Ship FRAMES binary data frames through a pipe; returns frames/s.

    A consumer thread drains the pipe with the zero-copy path so the
    writer's send cost is what dominates — the vectored series batches
    the whole burst through ``send_many`` in slices of 64 (a realistic
    coalescer flush), the sequential series pays one ``send`` per frame.
    """
    root = ThreadGroup(None, "system")
    reader, writer = make_pipe()
    channel = FrameChannel(output_stream=writer, binary=True)
    done = []

    def consume():
        total = 0
        while True:
            drained = reader.drain_into(lambda segments: None)
            if not drained:
                break
            total += drained
        done.append(total)

    consumer = JThread(target=consume, group=root)
    consumer.start()
    frame = {"t": "o", "d": FRAME_DATA}
    start = time.perf_counter()
    if vectored:
        for base in range(0, FRAMES, 64):
            channel.send_many(
                [frame] * min(64, FRAMES - base), flush=False)
        channel.flush()
    else:
        for _ in range(FRAMES):
            channel.send(frame, flush=False)
        channel.flush()
    elapsed = time.perf_counter() - start
    channel.close()  # EOF for the consumer; reader closes after it exits
    consumer.join(30)
    reader.close()
    assert done and done[0] == FRAMES * (5 + len(FRAME_DATA))
    return FRAMES / elapsed


def test_bench_vectored_frame_send(benchmark):
    """§8e: ``send_many`` gather-writes vs per-frame ``send``."""
    benchmark.pedantic(lambda: _frame_burst(vectored=True),
                       rounds=7, iterations=1, warmup_rounds=2)
    vectored_frames_s = FRAMES / benchmark.stats.stats.min
    sequential_frames_s = max(
        _frame_burst(vectored=False) for _ in range(7))
    advantage = vectored_frames_s / sequential_frames_s
    print(banner("§8e: frame burst — vectored vs sequential send"))
    print(f"sequential send():            {sequential_frames_s:10.0f} "
          f"frames/s")
    print(f"vectored send_many():         {vectored_frames_s:10.0f} "
          f"frames/s")
    print(f"advantage: x{advantage:0.2f}")
    record_bench("transport", {
        "bench": "vectored_send", "frames": FRAMES, "smoke": SMOKE,
        "vectored_frames_s": vectored_frames_s,
        "sequential_frames_s": sequential_frames_s,
        "advantage": advantage})
    if not SMOKE:
        assert advantage >= 0.9, (
            f"vectored frame send slower than sequential: x{advantage:0.2f}")


def _register_spammer(mvm):
    line = "y" * 100

    def spam(jclass, ctx, args):
        for _ in range(int(args[0])):
            ctx.stdout.println(line)
        return 0

    return register_main(mvm.vm, "StdoutSpam", spam)


def test_bench_remote_stdout_throughput(benchmark):
    """§8c: streaming remote stdout — binary framing vs JSON lines.

    The frame-heavy series: one ~100-byte line per frame, buffered frame
    I/O and write coalescing on both paths; the protocol-2 run adds raw
    binary framing and a pooled connection.
    """
    mvm_a, mvm_b = boot_pair()
    try:
        class_name = _register_spammer(mvm_b)

        def stream(proto):
            def run():
                remote = remote_exec(
                    mvm_a.initial.context(), "bench-b.example.com",
                    class_name, [str(STDOUT_LINES)],
                    user="alice", password="wonderland", proto=proto)
                assert remote.wait_for(60) == 0
                assert len(remote.output_bytes()) == STDOUT_LINES * 101
                remote.close()
            return run

        with mvm_a.host_session():
            benchmark.pedantic(stream(proto=2), rounds=5, iterations=1,
                               warmup_rounds=1)
            binary_lines_s = STDOUT_LINES / benchmark.stats.stats.mean

            start = time.perf_counter()
            stream(proto=1)()
            json_lines_s = STDOUT_LINES / (time.perf_counter() - start)
    finally:
        mvm_a.shutdown()
        mvm_b.shutdown()
    print(banner("§8c: remote stdout streaming — binary vs JSON frames"))
    print(f"JSON lines (protocol 1):      {json_lines_s:10.0f} lines/s")
    print(f"binary frames (protocol 2):   {binary_lines_s:10.0f} lines/s")
    print(f"advantage: x{binary_lines_s / json_lines_s:0.1f}")
    record_bench("transport", {
        "bench": "remote_stdout", "lines": STDOUT_LINES, "smoke": SMOKE,
        "binary_lines_s": binary_lines_s, "json_lines_s": json_lines_s})


def test_bench_pooled_vs_fresh_connection_exec(benchmark):
    """§8d: exec latency with connection reuse vs a fresh dial each time."""
    mvm_a, mvm_b = boot_pair()
    try:
        register_main(mvm_b.vm, "PoolNoop", lambda j, c, a: 0)

        def exec_once(pooled):
            remote = remote_exec(
                mvm_a.initial.context(), "bench-b.example.com",
                "bench.PoolNoop", [], user="alice",
                password="wonderland", pooled=pooled)
            assert remote.wait_for(10) == 0
            remote.close()

        with mvm_a.host_session():
            benchmark.pedantic(lambda: exec_once(pooled=True),
                               rounds=15, iterations=1, warmup_rounds=2)
            pooled_ms = benchmark.stats.stats.mean * 1000

            loops = 15
            start = time.perf_counter()
            for _ in range(loops):
                exec_once(pooled=False)
            fresh_ms = (time.perf_counter() - start) / loops * 1000
    finally:
        mvm_a.shutdown()
        mvm_b.shutdown()
    print(banner("§8d: remote exec — pooled connection vs fresh dial"))
    print(f"fresh connection per exec:    {fresh_ms:10.2f} ms")
    print(f"pooled connection:            {pooled_ms:10.2f} ms")
    print(f"advantage: x{fresh_ms / pooled_ms:0.1f}")
