"""Ablation benches for the Section 8 future-work subsystems.

* Shared-object IPC vs pipe IPC: the paper calls object sharing "very
  appealing ... as an inter-application communication mechanism" — we
  quantify the appeal by comparing a shared-object round trip (bind +
  lookup with the type-safety check) against pushing the same payload
  through a pipe.
* Distributed execution: latency of launching an application on another
  JVM over the simulated network, vs launching it locally.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from _common import banner, register_main  # noqa: E402

from repro.core.launcher import MultiProcVM  # noqa: E402
from repro.dist.client import remote_exec  # noqa: E402
from repro.io.streams import make_pipe  # noqa: E402
from repro.net.fabric import NetworkFabric  # noqa: E402
from repro.unixfs.machine import standard_process  # noqa: E402

PAYLOAD = "x" * 1024


def test_bench_shared_object_round_trip(benchmark):
    mvm = MultiProcVM.boot()
    try:
        with mvm.host_session():
            space = mvm.vm.shared_objects
            counter = [0]

            def round_trip():
                counter[0] += 1
                name = "bench-slot"
                space.bind(name, PAYLOAD, replace=True)
                assert space.lookup(name) == PAYLOAD

            benchmark(round_trip)
    finally:
        mvm.shutdown()
    shared_us = benchmark.stats.stats.mean * 1e6
    print(banner("§8a: shared-object bind+lookup (1 KB payload)"))
    print(f"mean: {shared_us:8.2f} us")


def test_bench_pipe_round_trip_same_payload(benchmark):
    """The comparison point: the same 1 KB through an in-VM pipe."""
    def round_trip():
        reader, writer = make_pipe()
        writer.write(PAYLOAD.encode())
        writer.close()
        assert len(reader.read_all()) == len(PAYLOAD)
        reader.close()

    benchmark(round_trip)
    pipe_us = benchmark.stats.stats.mean * 1e6
    print(banner("§8a: pipe write+read (1 KB payload, no threads)"))
    print(f"mean: {pipe_us:8.2f} us")


def test_bench_remote_vs_local_exec(benchmark):
    """§8b: launching on another JVM vs locally, same trivial app."""
    fabric = NetworkFabric()
    mvm_a = MultiProcVM.boot(
        os_context=standard_process(hostname="bench-a.example.com"),
        network=fabric)
    mvm_b = MultiProcVM.boot(
        os_context=standard_process(hostname="bench-b.example.com"),
        network=fabric)
    try:
        with mvm_b.host_session():
            mvm_b.exec("dist.RexecDaemon", ["7100"])
        import time
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            if fabric.resolve("bench-b.example.com")._listener(7100):
                break
            time.sleep(0.01)
        register_main(mvm_b.vm, "RemoteNoop", lambda j, c, a: 0)

        with mvm_a.host_session():
            ctx = mvm_a.initial.context()

            def remote_round_trip():
                remote = remote_exec(ctx, "bench-b.example.com",
                                     "bench.RemoteNoop", [],
                                     user="alice", password="wonderland")
                assert remote.wait_for(10) == 0
                remote.close()

            benchmark.pedantic(remote_round_trip, rounds=15, iterations=1,
                               warmup_rounds=2)
        remote_ms = benchmark.stats.stats.mean * 1000

        # Local comparison, measured inline.
        register_main(mvm_a.vm, "LocalNoop", lambda j, c, a: 0)
        with mvm_a.host_session():
            import time
            loops = 30
            start = time.perf_counter()
            for _ in range(loops):
                app = mvm_a.exec("bench.LocalNoop")
                assert app.wait_for(10) == 0
            local_ms = (time.perf_counter() - start) / loops * 1000
    finally:
        mvm_a.shutdown()
        mvm_b.shutdown()
    print(banner("§8b: remote exec vs local exec"))
    print(f"local application launch+exit:  {local_ms:8.2f} ms")
    print(f"remote (auth + wire + launch):  {remote_ms:8.2f} ms")
    print(f"network/auth overhead factor:   x{remote_ms / local_ms:0.1f}")
    assert remote_ms > local_ms, "remote exec cannot be cheaper than local"
