"""Experiment C6 — application launch/teardown inside one MPJVM.

Section 2's case for the single-JVM design rests on launching an
*application* being far cheaper than launching a whole JVM.  This bench
measures both sides that we can measure for real:

* launching + waiting out a trivial application in a running MPJVM
  (thread-group + loader + System reload + main thread + reaper teardown);
* booting an entire fresh multi-processing VM (our stand-in for "starting
  another JVM process", which on the 1997 testbed took ~seconds).
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from _common import banner, bench_mvm, register_main  # noqa: E402,F401

from repro.core.launcher import MultiProcVM  # noqa: E402
from repro.procsim.model import ProcessCostModel  # noqa: E402


def test_bench_application_launch_and_wait(benchmark, bench_mvm):
    class_name = register_main(bench_mvm.vm, "Noop",
                               lambda jclass, ctx, args: 0)

    with bench_mvm.host_session():
        def launch():
            app = bench_mvm.exec(class_name)
            assert app.wait_for(10) == 0

        result = benchmark.pedantic(launch, rounds=30, iterations=1,
                                    warmup_rounds=3)
    measured_s = benchmark.stats.stats.mean
    model = ProcessCostModel()
    print(banner("C6: application lifecycle vs JVM process startup"))
    print(f"in-VM app launch+exit (measured): {measured_s * 1000:8.2f} ms")
    print(f"JVM process startup (model):      "
          f"{model.jvm_startup_s * 1000:8.2f} ms")
    print(f"advantage of the single-JVM path: "
          f"x{model.jvm_startup_s / measured_s:0.0f}")
    assert measured_s < model.jvm_startup_s, \
        "paper claim: app launch must beat JVM startup"


def test_bench_concurrent_application_burst(benchmark, bench_mvm):
    """Ten applications launched together and all reaped."""
    class_name = register_main(bench_mvm.vm, "BurstNoop",
                               lambda jclass, ctx, args: 0)

    with bench_mvm.host_session():
        def burst():
            apps = [bench_mvm.exec(class_name) for _ in range(10)]
            for app in apps:
                assert app.wait_for(10) == 0

        benchmark.pedantic(burst, rounds=10, iterations=1, warmup_rounds=2)
    per_app_ms = benchmark.stats.stats.mean * 1000 / 10
    print(banner("C6b: concurrent burst of 10 applications"))
    print(f"amortized per-application cost: {per_app_ms:8.2f} ms")


def test_bench_full_vm_boot(benchmark):
    """The cost of one whole (multi-processing) VM, for the C1 ratio."""
    def boot_and_stop():
        mvm = MultiProcVM.boot()
        mvm.shutdown()

    benchmark.pedantic(boot_and_stop, rounds=10, iterations=1,
                       warmup_rounds=2)
    print(banner("C6c: full VM boot+shutdown (the unit N-JVM deployments "
                 "pay per application)"))
    print(f"measured: {benchmark.stats.stats.mean * 1000:8.2f} ms")
