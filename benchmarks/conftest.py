"""Benchmark-suite options: ``--trace-out`` exports a JSONL trace.

With ``--trace-out PATH``, a process-global trace collector is installed
before any benchmark boots a VM, so spans and events from every VM in the
run land in one file — the always-on telemetry demonstrated end to end.
Without the option nothing is installed and tracing stays on its no-op
fast path.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

_exporter = None


def pytest_addoption(parser):
    parser.addoption(
        "--trace-out", action="store", default=None, metavar="PATH",
        help="export a JSONL trace of all benchmark VM activity to PATH")


def pytest_configure(config):
    global _exporter
    path = config.getoption("--trace-out")
    if path:
        from _common import install_trace_exporter
        _exporter = install_trace_exporter(path)


def pytest_unconfigure(config):
    global _exporter
    if _exporter is not None:
        count = _exporter()
        _exporter = None
        print(f"\n[trace-out] wrote {count} records to "
              f"{config.getoption('--trace-out')}")
