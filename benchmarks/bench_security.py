"""Experiment C5 — the price of the security architecture.

The paper "focussed on [secure services] while not paying particular
[attention] to performance tuning" (Section 7); this bench records what the
stack-walking access controller, the Section 5.3 user combination, and the
policy machinery cost, so the overhead story is quantified:

* ``check_permission`` as a function of stack depth;
* code-source-only grant vs the UserPermission + user-grant combination;
* ``do_privileged`` walk truncation;
* policy parsing and ``FilePermission.implies`` micro-costs.
"""

import contextlib
import os
import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])

import pytest  # noqa: E402

from _common import banner, bench_mvm, record_bench  # noqa: E402,F401

from repro.core.launcher import DEFAULT_POLICY  # noqa: E402
from repro.security import access, cache  # noqa: E402
from repro.security.codesource import CodeSource, ProtectionDomain  # noqa: E402
from repro.security.permissions import (  # noqa: E402
    FilePermission,
    Permissions,
    UserPermission,
)
from repro.security.policy import parse_policy  # noqa: E402

PERM = FilePermission("/home/alice/notes.txt", "read")

#: Iterations for the hand-timed cache series; the perf-marker smoke runs
#: set this tiny so the benchmarks stay exercised without taking time.
LOOP_N = int(os.environ.get("REPRO_BENCH_N", "20000"))


def granting_domain(name="granting"):
    return ProtectionDomain(
        CodeSource(f"file:/{name}"),
        Permissions([FilePermission("/home/alice/-", "read,write")]),
        name=name)


@contextlib.contextmanager
def stack_of(depth: int, domain_factory):
    with contextlib.ExitStack() as stack:
        for index in range(depth):
            stack.enter_context(
                access.stack_frame(domain_factory(f"d{index}")))
        yield


@pytest.mark.parametrize("depth", [1, 8, 32])
def test_bench_check_permission_stack_depth(benchmark, depth):
    with stack_of(depth, granting_domain):
        benchmark(access.check_permission, PERM)
    print(banner(f"C5: check_permission, stack depth {depth}"))
    print(f"mean: {benchmark.stats.stats.mean * 1e6:8.2f} us")


def test_bench_code_source_grant(benchmark):
    with access.stack_frame(granting_domain()):
        benchmark(access.check_permission, PERM)
    direct_us = benchmark.stats.stats.mean * 1e6
    print(banner("C5: code-source-only grant"))
    print(f"mean: {direct_us:8.2f} us")


def test_bench_user_combined_grant(benchmark):
    """Section 5.3: the grant comes from the *user's* permissions through
    a UserPermission-holding domain — the extra resolver hop is the cost
    of user-based access control."""
    user_grants = Permissions(
        [FilePermission("/home/alice/-", "read,write,delete")])
    previous = access.user_permission_resolver
    access.user_permission_resolver = lambda: user_grants
    try:
        local_domain = ProtectionDomain(
            CodeSource("file:/usr/local/java/apps/e/E.class"),
            Permissions([UserPermission()]), name="local-app")
        with access.stack_frame(local_domain):
            benchmark(access.check_permission, PERM)
    finally:
        access.user_permission_resolver = previous
    print(banner("C5: user-combined grant (Section 5.3 path)"))
    print(f"mean: {benchmark.stats.stats.mean * 1e6:8.2f} us")


def test_bench_do_privileged_truncates_walk(benchmark):
    """A privileged frame near the top makes deep stacks cheap again."""
    def denied_below(name):
        return ProtectionDomain(CodeSource(f"file:/{name}"),
                                Permissions(), name=name)

    with stack_of(32, denied_below):
        with access.stack_frame(granting_domain()):
            def privileged_check():
                access.do_privileged(
                    lambda: access.check_permission(PERM))

            benchmark(privileged_check)
    print(banner("C5: do_privileged over a 32-deep denied stack"))
    print(f"mean: {benchmark.stats.stats.mean * 1e6:8.2f} us")


# ---------------------------------------------------------------------------
# The security fast path: epoch-invalidated caching, cached vs cold
# ---------------------------------------------------------------------------

GRANTING_POLICY_TEXT = DEFAULT_POLICY + "\n".join(
    f'grant codeBase "file:/bench/d{i}/*" {{\n'
    f'    permission FilePermission "/home/alice/-", "read,write";\n'
    f'}};'
    for i in range(8))


def policy_backed_stack(depth: int):
    """A policy, and ``depth`` distinct policy-backed (non-static) domains
    the way application class loaders build them (interned)."""
    policy = parse_policy(GRANTING_POLICY_TEXT)
    domains = [
        policy.domain_for_code_source(
            CodeSource(f"file:/bench/d{i}/Cls{i}.class"))
        for i in range(depth)]
    return policy, domains


def _timed_checks(n: int) -> float:
    start = time.perf_counter()
    check = access.check_permission
    for _ in range(n):
        check(PERM)
    return time.perf_counter() - start


def test_bench_cached_vs_cold_policy_backed():
    """The tentpole number: repeated ``check_permission`` at stack depth 8
    over policy-backed domains, uncached baseline vs the epoch-invalidated
    cache (policy memo + domain memo + walk dedupe)."""
    _, domains = policy_backed_stack(8)
    with contextlib.ExitStack() as stack:
        for domain in domains:
            stack.enter_context(access.stack_frame(domain))
        with cache.disabled():
            uncached_s = _timed_checks(LOOP_N)
        access.check_permission(PERM)  # warm the memos
        cached_s = _timed_checks(LOOP_N)
    uncached_us = uncached_s / LOOP_N * 1e6
    cached_us = cached_s / LOOP_N * 1e6
    speedup = uncached_s / cached_s if cached_s else float("inf")
    print(banner("C5: depth-8 policy-backed walk, cached vs cold"))
    print(f"uncached: {uncached_us:8.2f} us/check "
          f"({1 / uncached_s * LOOP_N:10.0f} checks/s)")
    print(f"cached:   {cached_us:8.2f} us/check "
          f"({1 / cached_s * LOOP_N:10.0f} checks/s)")
    print(f"speedup:  {speedup:8.1f}x")
    record_bench("security", {
        "bench": "cached_vs_cold", "loop_n": LOOP_N,
        "smoke": LOOP_N < 5000, "uncached_us": uncached_us,
        "cached_us": cached_us, "speedup": speedup})
    if LOOP_N >= 5000:  # tiny smoke runs are too noisy to gate on
        assert speedup >= 5.0, (
            f"security cache speedup regressed: {speedup:.1f}x < 5x")


# ---------------------------------------------------------------------------
# Execution-state MAC: phase-aware walk vs the plain cached fast path
# ---------------------------------------------------------------------------

#: Same 8-domain shape as GRANTING_POLICY_TEXT, but every bench grant is
#: conditioned on phase "steady": the walk must resolve the phase and
#: consult the per-phase memos, the worst case for the phase machinery.
PHASED_POLICY_TEXT = DEFAULT_POLICY + "\n".join(
    f'grant codeBase "file:/bench/p{i}/*", phase "steady" {{\n'
    f'    permission FilePermission "/home/alice/-", "read,write";\n'
    f'}};'
    for i in range(8))


def _phased_stack(depth: int):
    policy = parse_policy(PHASED_POLICY_TEXT)
    domains = [
        policy.domain_for_code_source(
            CodeSource(f"file:/bench/p{i}/Cls{i}.class"))
        for i in range(depth)]
    return policy, domains


def _cached_us_for(domains) -> float:
    with contextlib.ExitStack() as stack:
        for domain in domains:
            stack.enter_context(access.stack_frame(domain))
        access.check_permission(PERM)  # warm the memos
        return _timed_checks(LOOP_N) / LOOP_N * 1e6


def test_bench_phase_aware_vs_plain_cached():
    """The phase-MAC acceptance gate: with the sticky PHASE_AWARE flag
    set and every grant phase-conditioned, the cached ``check_permission``
    walk must stay within 10% of the plain (phase-free) cached fast path.

    The plain series runs FIRST: parsing the phased policy flips the
    process-wide ``cache.PHASE_AWARE`` latch, which would add the phase
    resolution to the "plain" measurement too.
    """
    saved_aware = cache.PHASE_AWARE
    saved_resolver = cache.phase_resolver
    best_ratio = None
    plain_us = phased_us = 0.0
    try:
        attempts = 3
        for attempt in range(attempts):
            _, plain_domains = policy_backed_stack(8)
            plain_us = min(_cached_us_for(plain_domains)
                           for _ in range(3))
            cache.phase_resolver = lambda: "steady"
            _, phased_domains = _phased_stack(8)
            assert cache.PHASE_AWARE  # the phased policy set the latch
            phased_us = min(_cached_us_for(phased_domains)
                            for _ in range(3))
            # Reset the latch between attempts so the plain series stays
            # a true phase-free baseline (bench-only: prod never resets).
            cache.PHASE_AWARE = saved_aware
            cache.phase_resolver = saved_resolver
            ratio = phased_us / plain_us if plain_us else float("inf")
            if best_ratio is None or ratio < best_ratio:
                best_ratio = ratio
                best_pair = (plain_us, phased_us)
            if best_ratio <= 1.10:
                break
    finally:
        cache.PHASE_AWARE = saved_aware
        cache.phase_resolver = saved_resolver
    plain_us, phased_us = best_pair
    print(banner("C5: phase-aware cached walk vs plain cached walk"))
    print(f"plain cached:  {plain_us:8.2f} us/check")
    print(f"phased cached: {phased_us:8.2f} us/check")
    print(f"ratio:         {best_ratio:8.3f} (gate: <= 1.10)")
    record_bench("security", {
        "bench": "phase_aware_vs_plain", "loop_n": LOOP_N,
        "smoke": LOOP_N < 5000, "plain_cached_us": plain_us,
        "phased_cached_us": phased_us, "ratio": best_ratio})
    if LOOP_N >= 5000:  # tiny smoke runs are too noisy to gate on
        assert best_ratio <= 1.10, (
            f"phase-aware walk regressed the cached fast path: "
            f"{best_ratio:.3f}x > 1.10x")


def test_bench_post_refresh_recovery():
    """The price of coherence: every ``refresh_from`` bumps the epoch and
    the next check per domain re-resolves; steady state goes back to memo
    hits.  Series: cost of the first post-refresh check vs steady state."""
    policy, domains = policy_backed_stack(8)
    refreshes = max(LOOP_N // 200, 5)
    with contextlib.ExitStack() as stack:
        for domain in domains:
            stack.enter_context(access.stack_frame(domain))
        access.check_permission(PERM)  # warm
        steady_s = _timed_checks(LOOP_N)
        cold_total = 0.0
        for _ in range(refreshes):
            policy.refresh_from(GRANTING_POLICY_TEXT)
            start = time.perf_counter()
            access.check_permission(PERM)
            cold_total += time.perf_counter() - start
    steady_us = steady_s / LOOP_N * 1e6
    cold_us = cold_total / refreshes * 1e6
    print(banner("C5: post-refresh (epoch-invalidated) first check"))
    print(f"steady-state hit:   {steady_us:8.2f} us/check")
    print(f"first after refresh:{cold_us:8.2f} us/check "
          f"({refreshes} refreshes)")


def test_bench_user_path_cached():
    """Section 5.3 user combination with the (user, epoch) memo: the
    resolver returns the cached user Permissions, no allocation."""
    policy = parse_policy(DEFAULT_POLICY)
    previous = access.user_permission_resolver
    access.user_permission_resolver = \
        lambda: policy.permissions_for_user("alice")
    try:
        local_domain = policy.domain_for_code_source(
            CodeSource("file:/usr/local/java/apps/e/E.class"))
        with access.stack_frame(local_domain):
            with cache.disabled():
                uncached_s = _timed_checks(LOOP_N)
            access.check_permission(PERM)
            cached_s = _timed_checks(LOOP_N)
    finally:
        access.user_permission_resolver = previous
    print(banner("C5: user-combined grant, cached vs cold"))
    print(f"uncached: {uncached_s / LOOP_N * 1e6:8.2f} us/check")
    print(f"cached:   {cached_s / LOOP_N * 1e6:8.2f} us/check")
    print(f"speedup:  {uncached_s / cached_s:8.1f}x")


def test_bench_policy_parse(benchmark):
    policy = benchmark(parse_policy, DEFAULT_POLICY)
    assert policy.entries()
    print(banner("C5: parsing the default policy file"))
    print(f"mean: {benchmark.stats.stats.mean * 1e6:8.2f} us")


def test_bench_file_permission_implies(benchmark):
    holder = FilePermission("/home/alice/-", "read,write")
    target = FilePermission("/home/alice/a/b/c.txt", "read")

    def check():
        assert holder.implies(target)

    benchmark(check)
    print(banner("C5: FilePermission.implies micro-cost"))
    print(f"mean: {benchmark.stats.stats.mean * 1e9:8.1f} ns")


def test_bench_end_to_end_checked_file_read(benchmark, bench_mvm):
    """A full checked read by a local app run by Alice (policy + user
    combination + VFS), the Section 5.3 hot path."""
    from _common import register_main
    from repro.io.file import read_text

    done = []

    def main(jclass, ctx, args):
        for _ in range(100):
            read_text(ctx, "/home/alice/notes.txt")
        done.append(True)
        return 0

    class_name = register_main(bench_mvm.vm, "CheckedReader", main)
    alice = bench_mvm.vm.user_database.lookup("alice")

    with bench_mvm.host_session():
        def run_app():
            app = bench_mvm.exec(class_name, [], user=alice)
            assert app.wait_for(30) == 0

        benchmark.pedantic(run_app, rounds=5, iterations=1,
                           warmup_rounds=1)
    per_read_us = benchmark.stats.stats.mean / 100 * 1e6
    print(banner("C5: end-to-end checked file read (user-combined)"))
    print(f"per read incl. launch amortized: {per_read_us:8.2f} us")
