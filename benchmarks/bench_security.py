"""Experiment C5 — the price of the security architecture.

The paper "focussed on [secure services] while not paying particular
[attention] to performance tuning" (Section 7); this bench records what the
stack-walking access controller, the Section 5.3 user combination, and the
policy machinery cost, so the overhead story is quantified:

* ``check_permission`` as a function of stack depth;
* code-source-only grant vs the UserPermission + user-grant combination;
* ``do_privileged`` walk truncation;
* policy parsing and ``FilePermission.implies`` micro-costs.
"""

import contextlib
import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

import pytest  # noqa: E402

from _common import banner, bench_mvm  # noqa: E402,F401

from repro.core.launcher import DEFAULT_POLICY  # noqa: E402
from repro.security import access  # noqa: E402
from repro.security.codesource import CodeSource, ProtectionDomain  # noqa: E402
from repro.security.permissions import (  # noqa: E402
    FilePermission,
    Permissions,
    UserPermission,
)
from repro.security.policy import parse_policy  # noqa: E402

PERM = FilePermission("/home/alice/notes.txt", "read")


def granting_domain(name="granting"):
    return ProtectionDomain(
        CodeSource(f"file:/{name}"),
        Permissions([FilePermission("/home/alice/-", "read,write")]),
        name=name)


@contextlib.contextmanager
def stack_of(depth: int, domain_factory):
    with contextlib.ExitStack() as stack:
        for index in range(depth):
            stack.enter_context(
                access.stack_frame(domain_factory(f"d{index}")))
        yield


@pytest.mark.parametrize("depth", [1, 8, 32])
def test_bench_check_permission_stack_depth(benchmark, depth):
    with stack_of(depth, granting_domain):
        benchmark(access.check_permission, PERM)
    print(banner(f"C5: check_permission, stack depth {depth}"))
    print(f"mean: {benchmark.stats.stats.mean * 1e6:8.2f} us")


def test_bench_code_source_grant(benchmark):
    with access.stack_frame(granting_domain()):
        benchmark(access.check_permission, PERM)
    direct_us = benchmark.stats.stats.mean * 1e6
    print(banner("C5: code-source-only grant"))
    print(f"mean: {direct_us:8.2f} us")


def test_bench_user_combined_grant(benchmark):
    """Section 5.3: the grant comes from the *user's* permissions through
    a UserPermission-holding domain — the extra resolver hop is the cost
    of user-based access control."""
    user_grants = Permissions(
        [FilePermission("/home/alice/-", "read,write,delete")])
    previous = access.user_permission_resolver
    access.user_permission_resolver = lambda: user_grants
    try:
        local_domain = ProtectionDomain(
            CodeSource("file:/usr/local/java/apps/e/E.class"),
            Permissions([UserPermission()]), name="local-app")
        with access.stack_frame(local_domain):
            benchmark(access.check_permission, PERM)
    finally:
        access.user_permission_resolver = previous
    print(banner("C5: user-combined grant (Section 5.3 path)"))
    print(f"mean: {benchmark.stats.stats.mean * 1e6:8.2f} us")


def test_bench_do_privileged_truncates_walk(benchmark):
    """A privileged frame near the top makes deep stacks cheap again."""
    def denied_below(name):
        return ProtectionDomain(CodeSource(f"file:/{name}"),
                                Permissions(), name=name)

    with stack_of(32, denied_below):
        with access.stack_frame(granting_domain()):
            def privileged_check():
                access.do_privileged(
                    lambda: access.check_permission(PERM))

            benchmark(privileged_check)
    print(banner("C5: do_privileged over a 32-deep denied stack"))
    print(f"mean: {benchmark.stats.stats.mean * 1e6:8.2f} us")


def test_bench_policy_parse(benchmark):
    policy = benchmark(parse_policy, DEFAULT_POLICY)
    assert policy.entries()
    print(banner("C5: parsing the default policy file"))
    print(f"mean: {benchmark.stats.stats.mean * 1e6:8.2f} us")


def test_bench_file_permission_implies(benchmark):
    holder = FilePermission("/home/alice/-", "read,write")
    target = FilePermission("/home/alice/a/b/c.txt", "read")

    def check():
        assert holder.implies(target)

    benchmark(check)
    print(banner("C5: FilePermission.implies micro-cost"))
    print(f"mean: {benchmark.stats.stats.mean * 1e9:8.1f} ns")


def test_bench_end_to_end_checked_file_read(benchmark, bench_mvm):
    """A full checked read by a local app run by Alice (policy + user
    combination + VFS), the Section 5.3 hot path."""
    from _common import register_main
    from repro.io.file import read_text

    done = []

    def main(jclass, ctx, args):
        for _ in range(100):
            read_text(ctx, "/home/alice/notes.txt")
        done.append(True)
        return 0

    class_name = register_main(bench_mvm.vm, "CheckedReader", main)
    alice = bench_mvm.vm.user_database.lookup("alice")

    with bench_mvm.host_session():
        def run_app():
            app = bench_mvm.exec(class_name, [], user=alice)
            assert app.wait_for(30) == 0

        benchmark.pedantic(run_app, rounds=5, iterations=1,
                           warmup_rounds=1)
    per_read_us = benchmark.stats.stats.mean / 100 * 1e6
    print(banner("C5: end-to-end checked file read (user-combined)"))
    print(f"per read incl. launch amortized: {per_read_us:8.2f} us")
