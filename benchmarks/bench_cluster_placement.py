"""Cluster scheduler benches: placement latency and spawn throughput.

Two questions for the scaling roadmap:

* How much does a placement *decision* cost, and how does it grow with
  pool size?  Measured on a directly-driven registry + scheduler (no VMs)
  at 1, 3 and 9 nodes, for every policy.
* What end-to-end spawn throughput does one controller get out of a real
  pool (registry server, heartbeat agents, rexec daemons, the credential
  round trip) at 1 and 3 worker VMs?

Run with ``--trace-out PATH`` to export a JSONL trace of the VM-backed
cases (the placement-latency microbench never boots a VM).
"""

import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from _common import banner  # noqa: E402

from repro.cluster import Cluster, NodeRegistry, Scheduler  # noqa: E402
from repro.core.launcher import MultiProcVM  # noqa: E402
from repro.net.fabric import NetworkFabric  # noqa: E402
from repro.telemetry.metrics import MetricsRegistry  # noqa: E402
from repro.unixfs.machine import standard_process  # noqa: E402

POOL_SIZES = (1, 3, 9)
POLICIES = ("round-robin", "least-loaded", "locality")


def _registry_with(nodes: int) -> NodeRegistry:
    registry = NodeRegistry(metrics=MetricsRegistry(), clock=lambda: 0.0)
    for index in range(nodes):
        registry.register(f"node-{index}.example.com", port=7100 + index,
                          load={"apps": index % 4, "awt": 0},
                          classes=["bench.Target"] if index == nodes - 1
                          else [])
    return registry


def test_bench_placement_latency(benchmark):
    """Pure decision cost: place() against 1/3/9-node pools, per policy."""
    results = {}
    for nodes in POOL_SIZES:
        registry = _registry_with(nodes)
        scheduler = Scheduler(registry, metrics=registry.metrics)
        for policy in POLICIES:
            loops = 2000
            start = time.perf_counter()
            for _ in range(loops):
                scheduler.place("bench.Target", policy=policy)
            results[(nodes, policy)] = \
                (time.perf_counter() - start) / loops * 1e6

    # The benchmark fixture records the 3-node round-robin case.
    registry = _registry_with(3)
    scheduler = Scheduler(registry, metrics=registry.metrics)
    benchmark(lambda: scheduler.place("bench.Target"))

    print(banner("cluster: placement decision latency (us/placement)"))
    header = "nodes  " + "".join(f"{p:>14}" for p in POLICIES)
    print(header)
    for nodes in POOL_SIZES:
        row = f"{nodes:>5}  " + "".join(
            f"{results[(nodes, policy)]:14.2f}" for policy in POLICIES)
        print(row)
    for policy in POLICIES:
        assert results[(9, policy)] < 1000, \
            f"{policy} placement should stay well under 1 ms"


def _boot_pool(workers: int):
    fabric = NetworkFabric()
    ctrl = MultiProcVM.boot(
        os_context=standard_process(hostname="bench-ctrl.example.com"),
        network=fabric)
    pool = [MultiProcVM.boot(
        os_context=standard_process(
            hostname=f"bench-n{index}.example.com"),
        network=fabric) for index in range(workers)]
    cluster = Cluster(ctrl, suspect_after=2.0, dead_after=4.0)
    cluster.start(sweep_interval=0.2)
    for index, worker in enumerate(pool):
        cluster.join(worker, rexec_port=7110 + index, interval=0.5)
    return ctrl, pool, cluster


def _spawn_throughput(cluster, launches: int) -> float:
    start = time.perf_counter()
    apps = [cluster.exec("tools.True", [], user="alice",
                         password="wonderland") for _ in range(launches)]
    for app in apps:
        assert app.wait_for(15) == 0
        app.close()
    return launches / (time.perf_counter() - start)


def test_bench_spawn_throughput(benchmark):
    """End-to-end scheduled spawns/second at 1, 3 and 9 worker VMs."""
    rates = {}
    for workers in (1, 3, 9):
        ctrl, pool, cluster = _boot_pool(workers)
        try:
            _spawn_throughput(cluster, 4)  # warm the wire
            rates[workers] = _spawn_throughput(cluster, 12)
            if workers == 3:
                with ctrl.host_session():
                    benchmark.pedantic(
                        lambda: _spawn_throughput(cluster, 3),
                        rounds=5, iterations=1, warmup_rounds=1)
        finally:
            for worker in list(pool):
                cluster.shutdown_worker(worker)
            ctrl.shutdown()

    print(banner("cluster: scheduled spawn throughput (launches/s)"))
    for workers, rate in sorted(rates.items()):
        print(f"{workers} worker VM(s): {rate:8.1f} launches/s")
    assert all(rate > 0 for rate in rates.values())
