"""Experiment C2a / S1 — context switching and the scheduler's scale win.

Section 2: "Context switching, for example, is much less expensive if
performed within one address space, because caches need not be cleared,
page-table pointers don't have to be adjusted, and so on."

Three measurements:

* **C2a (threads vs processes)** — a same-address-space switch for real
  (two JThreads ping-ponging through condition variables — two switches
  per round trip) against the calibrated process-switch model (direct
  cost + cache/TLB refill).
* **S1 (tasks vs threads)** — the same hand-off discipline run as
  continuation tasks on one ``repro.sched`` event loop: a task switch is
  a deque rotation plus ``generator.send``, no kernel involvement, and
  must beat the OS-thread hand-off by an order of magnitude.
* **S1-scale (idle applications)** — how many *parked* applications one
  VM holds: each is a generator main asleep on the scheduler's timer
  heap, costing a heap entry and a frame, not an OS thread.

Results land in ``BENCH_sched.json`` (``record_bench("sched", ...)``)
so ``tests/perf/test_sched_gate.py`` can hold the line across runs.
"""

import os
import sys
import threading
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from _common import banner, record_bench, register_main  # noqa: E402

from repro.core.execspec import ExecSpec  # noqa: E402
from repro.core.launcher import MultiProcVM  # noqa: E402
from repro.jvm.threads import JThread, ThreadGroup  # noqa: E402
from repro.procsim.model import ProcessCostModel  # noqa: E402
from repro.sched import Scheduler, ops, sched_yield  # noqa: E402

#: REPRO_BENCH_N scales every series (smoke runs force it tiny).
BENCH_N = int(os.environ.get("REPRO_BENCH_N", "0"))
SMOKE = bool(BENCH_N)

ROUNDS_PER_CALL = (BENCH_N * 4) if BENCH_N else 2000
IDLE_APPS = BENCH_N if BENCH_N else 10000
#: Concurrent workers for the throughput comparison (16 thread pairs vs
#: 32 tasks — 2 * PAIRS workers and the same switch count on each side).
PAIRS = 16


class _PingPong:
    """Two threads forced to alternate: 2 context switches per round."""

    def __init__(self):
        self.lock = threading.Lock()
        self.cond = threading.Condition(self.lock)
        self.turn = 0
        self.rounds = 0
        self.target = 0

    def run(self, me: int, other: int) -> None:
        with self.cond:
            while self.rounds < self.target:
                while self.turn != me and self.rounds < self.target:
                    self.cond.wait(1.0)
                if self.rounds >= self.target:
                    break
                self.turn = other
                self.rounds += 1
                self.cond.notify_all()


def _thread_pingpong() -> None:
    """One OS-thread hand-off batch (ROUNDS_PER_CALL * 2 switches)."""
    root = ThreadGroup(None, "system")
    game = _PingPong()
    game.target = ROUNDS_PER_CALL
    thread_a = JThread(target=game.run, args=(0, 1), group=root)
    thread_b = JThread(target=game.run, args=(1, 0), group=root)
    thread_a.start()
    thread_b.start()
    thread_a.join(30)
    thread_b.join(30)
    assert game.rounds >= ROUNDS_PER_CALL


def _thread_switch_storm() -> int:
    """PAIRS concurrent ping-pong games; returns total switches.

    The OS-thread side of the throughput comparison: 2 * PAIRS threads
    multiplexed by the kernel, every hand-off a condvar wait/notify.
    """
    root = ThreadGroup(None, "system")
    games = []
    threads = []
    for _ in range(PAIRS):
        game = _PingPong()
        game.target = ROUNDS_PER_CALL
        games.append(game)
        threads.append(JThread(target=game.run, args=(0, 1), group=root))
        threads.append(JThread(target=game.run, args=(1, 0), group=root))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(60)
    assert all(game.rounds >= ROUNDS_PER_CALL for game in games)
    return PAIRS * ROUNDS_PER_CALL * 2


def _task_switch_storm(scheduler: Scheduler) -> int:
    """The same worker count as tasks on one event loop; total switches.

    2 * PAIRS ready tasks round-robin through the scheduler's deque, so
    every ``yield`` is one task switch (a rotation plus a
    ``generator.send``) — what the kernel hand-off above costs, without
    the kernel.
    """

    def body():
        for _ in range(ROUNDS_PER_CALL):
            yield sched_yield()

    tasks = [scheduler.spawn(body, name=f"switch-{i}")
             for i in range(PAIRS * 2)]
    assert all(task.join(60) for task in tasks)
    return PAIRS * ROUNDS_PER_CALL * 2


def test_bench_thread_switch_vs_process_switch_model(benchmark):
    benchmark.pedantic(_thread_pingpong, rounds=5, iterations=1,
                       warmup_rounds=1)
    # Each round is one hand-off = two thread switches.
    per_switch_us = (benchmark.stats.stats.mean
                     / (ROUNDS_PER_CALL * 2)) * 1e6
    model = ProcessCostModel()
    process_us = model.process_context_switch_us()
    print(banner("C2a: context switch — one address space vs processes"))
    print(f"thread switch, same address space (measured): "
          f"{per_switch_us:8.2f} us")
    print(f"process switch incl. cache/TLB refill (model): "
          f"{process_us:8.2f} us")
    print(f"  = direct {model.process_switch_us:.1f} us "
          f"+ refill penalty {model.cache_refill_penalty_us:.1f} us")
    print(f"single-address-space advantage: "
          f"x{process_us / per_switch_us:0.1f}")
    assert per_switch_us < process_us, \
        "paper claim: in-VM switches must beat process switches"


def test_bench_task_switch_vs_thread_switch(benchmark):
    """S1: continuation-task switches vs OS-thread hand-offs.

    Both sides run 2 * PAIRS concurrent workers and the same number of
    switches; the ratio is the order-of-magnitude win the tentpole
    promises (and ``tests/perf/test_sched_gate.py`` holds).
    """
    scheduler = Scheduler(name="bench-switch")
    scheduler.start()
    try:
        benchmark.pedantic(_task_switch_storm, args=(scheduler,),
                           rounds=5, iterations=1, warmup_rounds=1)
        task_s = benchmark.stats.stats.min
    finally:
        scheduler.shutdown()
    switches = PAIRS * ROUNDS_PER_CALL * 2
    # Best-of for the thread side too, so the ratio compares like to like.
    thread_s = None
    for _ in range(5):
        start = time.perf_counter()
        _thread_switch_storm()
        elapsed = time.perf_counter() - start
        thread_s = elapsed if thread_s is None else min(thread_s, elapsed)
    task_us = task_s / switches * 1e6
    thread_us = thread_s / switches * 1e6
    ratio = thread_us / task_us
    switches_per_s = switches / task_s
    print(banner(f"S1: task switch vs thread switch "
                 f"({PAIRS * 2} workers each)"))
    print(f"task switch:    {task_us:8.2f} us  "
          f"({switches_per_s:10.0f} switches/s)")
    print(f"thread switch:  {thread_us:8.2f} us")
    print(f"event-loop advantage: x{ratio:0.1f}")
    record_bench("sched", {
        "bench": "context_switch", "smoke": SMOKE,
        "rounds": ROUNDS_PER_CALL, "workers": PAIRS * 2,
        "task_switch_us": task_us, "thread_switch_us": thread_us,
        "switch_ratio": ratio, "task_switches_per_s": switches_per_s})
    if not SMOKE:
        assert ratio >= 10.0, (
            f"the scheduler must beat OS-thread hand-offs by an order "
            f"of magnitude: x{ratio:.1f} < x10")


def _idle_main(jclass, ctx, args):
    """A generator main: parked on the timer heap, owning no OS thread."""
    yield from ops.sleep(3600.0)
    return 0


def test_bench_idle_application_scale():
    """S1-scale: 10k idle applications in one VM, no thread explosion."""
    mvm = MultiProcVM.boot()
    try:
        with mvm.host_session():
            class_name = register_main(mvm.vm, "IdleApp", _idle_main)
            threads_before = threading.active_count()
            start = time.perf_counter()
            apps = [mvm.launch(ExecSpec(class_name, name=f"idle-{i}"))
                    for i in range(IDLE_APPS)]
            launch_s = time.perf_counter() - start
            deadline = time.monotonic() + 60
            scheduler = mvm.vm.scheduler
            while time.monotonic() < deadline:
                if scheduler is not None \
                        and scheduler.stats()["live"] >= IDLE_APPS:
                    break
                time.sleep(0.05)
                scheduler = mvm.vm.scheduler
            stats = scheduler.stats() if scheduler is not None else {}
            threads_during = threading.active_count()
            assert stats.get("live", 0) >= IDLE_APPS, (
                f"only {stats.get('live', 0)}/{IDLE_APPS} idle apps "
                f"became parked tasks")
            extra_threads = threads_during - threads_before
            start = time.perf_counter()
            for app in apps:
                app.destroy()
            for app in apps:
                app.wait_for(30)
            teardown_s = time.perf_counter() - start
    finally:
        mvm.shutdown()
    print(banner(f"S1-scale: {IDLE_APPS} idle apps in one VM"))
    print(f"launch:    {launch_s:8.2f} s "
          f"({IDLE_APPS / launch_s:8.0f} apps/s)")
    print(f"teardown:  {teardown_s:8.2f} s")
    print(f"extra OS threads at steady state: {extra_threads}")
    record_bench("sched", {
        "bench": "idle_scale", "smoke": SMOKE, "apps": IDLE_APPS,
        "launch_s": launch_s, "teardown_s": teardown_s,
        "apps_per_s": IDLE_APPS / launch_s,
        "extra_os_threads": extra_threads})
    # The scale claim: applications must not cost one OS thread each.
    assert extra_threads < IDLE_APPS / 10 + 20, (
        f"{extra_threads} OS threads appeared for {IDLE_APPS} idle apps "
        f"— the scheduler is not absorbing application mains")
