"""Experiment C2a — context switching in one address space.

Section 2: "Context switching, for example, is much less expensive if
performed within one address space, because caches need not be cleared,
page-table pointers don't have to be adjusted, and so on."

We measure a same-address-space switch for real (two JThreads ping-ponging
through condition variables — two switches per round trip) and compare
against the calibrated process-switch model (direct cost + cache/TLB
refill).
"""

import sys
import threading

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from _common import banner  # noqa: E402

from repro.jvm.threads import JThread, ThreadGroup  # noqa: E402
from repro.procsim.model import ProcessCostModel  # noqa: E402

ROUNDS_PER_CALL = 2000


class _PingPong:
    """Two threads forced to alternate: 2 context switches per round."""

    def __init__(self):
        self.lock = threading.Lock()
        self.cond = threading.Condition(self.lock)
        self.turn = 0
        self.rounds = 0
        self.target = 0

    def run(self, me: int, other: int) -> None:
        with self.cond:
            while self.rounds < self.target:
                while self.turn != me and self.rounds < self.target:
                    self.cond.wait(1.0)
                if self.rounds >= self.target:
                    break
                self.turn = other
                self.rounds += 1
                self.cond.notify_all()


def test_bench_thread_switch_vs_process_switch_model(benchmark):
    root = ThreadGroup(None, "system")

    def ping_pong_batch():
        game = _PingPong()
        game.target = ROUNDS_PER_CALL
        thread_a = JThread(target=game.run, args=(0, 1), group=root)
        thread_b = JThread(target=game.run, args=(1, 0), group=root)
        thread_a.start()
        thread_b.start()
        thread_a.join(30)
        thread_b.join(30)
        assert game.rounds >= ROUNDS_PER_CALL

    benchmark.pedantic(ping_pong_batch, rounds=5, iterations=1,
                       warmup_rounds=1)
    # Each round is one hand-off = two thread switches.
    per_switch_us = (benchmark.stats.stats.mean
                     / (ROUNDS_PER_CALL * 2)) * 1e6
    model = ProcessCostModel()
    process_us = model.process_context_switch_us()
    print(banner("C2a: context switch — one address space vs processes"))
    print(f"thread switch, same address space (measured): "
          f"{per_switch_us:8.2f} us")
    print(f"process switch incl. cache/TLB refill (model): "
          f"{process_us:8.2f} us")
    print(f"  = direct {model.process_switch_us:.1f} us "
          f"+ refill penalty {model.cache_refill_penalty_us:.1f} us")
    print(f"single-address-space advantage: "
          f"x{process_us / per_switch_us:0.1f}")
    assert per_switch_us < process_us, \
        "paper claim: in-VM switches must beat process switches"
