#!/usr/bin/env python
"""Smoke-test the end-to-end trace pipeline (``--trace-out``).

Runs one benchmark per instrumented subsystem — application lifecycle, AWT
dispatch, and the shell (whose ``cat`` triggers audited security checks) —
with a trace collector installed, then verifies that the exported JSONL
parses line by line and contains lifecycle spans, dispatch spans, and at
least one audited security-check event.

Usage::

    python benchmarks/export_traces.py [output.jsonl]
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(BENCH_DIR)

#: One benchmark per instrumented subsystem.
SELECTED = [
    "bench_app_lifecycle.py::test_bench_application_launch_and_wait",
    "bench_dispatch.py::test_bench_dispatch_round_trip",
    "bench_shell.py::test_bench_simple_command",
]


def run(trace_path: str) -> None:
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    command = [sys.executable, "-m", "pytest", "-q", "-p", "no:cacheprovider",
               "--trace-out", trace_path]
    command += [os.path.join(BENCH_DIR, item) for item in SELECTED]
    completed = subprocess.run(command, cwd=REPO_ROOT, env=env)
    if completed.returncode != 0:
        sys.exit(f"benchmark run failed with status {completed.returncode}")


def verify(trace_path: str) -> None:
    with open(trace_path, encoding="utf-8") as source:
        records = [json.loads(line) for line in source if line.strip()]
    if not records:
        sys.exit("trace is empty")
    names = {r["name"] for r in records}
    missing = [needed for needed in
               ("app.exec", "app.main", "app.lifecycle", "awt.dispatch",
                "security.check")
               if needed not in names]
    if missing:
        sys.exit(f"trace is missing record kinds: {missing}")
    checks = [r for r in records if r["name"] == "security.check"]
    print(f"ok: {len(records)} records, {len(names)} distinct names, "
          f"{len(checks)} security checks")


def main() -> None:
    if len(sys.argv) > 1:
        trace_path = sys.argv[1]
        run(trace_path)
        verify(trace_path)
        return
    with tempfile.TemporaryDirectory() as scratch:
        trace_path = os.path.join(scratch, "trace.jsonl")
        run(trace_path)
        verify(trace_path)


if __name__ == "__main__":
    main()
