"""Shared helpers for the benchmark suite."""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro.core.launcher import MultiProcVM
from repro.jvm.classloading import ClassMaterial
from repro.security.codesource import CodeSource

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: Runs kept per area file — enough history for trend gates, bounded size.
BENCH_HISTORY = 200


def record_bench(area: str, entry: dict) -> pathlib.Path:
    """Append one benchmark result to ``BENCH_<area>.json`` at repo root.

    The file holds ``{"area": ..., "runs": [...]}`` with the newest run
    last; each entry is stamped with the wall-clock time so regression
    gates (``tests/perf``) can compare against the recorded baseline.
    Failures to write (read-only checkout) are swallowed: persistence is
    an observability feature, never a reason to fail a bench.
    """
    path = REPO_ROOT / f"BENCH_{area}.json"
    try:
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            payload = {"area": area, "runs": []}
        stamped = dict(entry)
        stamped["unix_time"] = time.time()
        runs = payload.get("runs", [])
        runs.append(stamped)
        payload["runs"] = runs[-BENCH_HISTORY:]
        path.write_text(json.dumps(payload, indent=2) + "\n")
    except OSError:
        pass
    return path


def bench_baseline(area: str, metric: str, smoke_key: str = "smoke",
                   best: str = "min") -> float | None:
    """The best non-smoke value of ``metric`` on record.

    ``best`` picks the sense of "best": ``"min"`` for latency-style
    metrics (seconds, allocations), ``"max"`` for throughput-style ones
    (MB/s, lines/s, events/s) — regression gates compare new runs
    against the strongest recorded baseline in the metric's own
    direction.
    """
    path = REPO_ROOT / f"BENCH_{area}.json"
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    values = [run[metric] for run in payload.get("runs", [])
              if metric in run and not run.get(smoke_key)]
    if not values:
        return None
    return max(values) if best == "max" else min(values)


def register_main(vm, name: str, main_fn) -> str:
    class_name = f"bench.{name}"
    material = ClassMaterial(
        class_name,
        code_source=CodeSource(
            f"file:/usr/local/java/apps/{name.lower()}/{name}.class"))
    material.members["main"] = main_fn
    vm.registry.register(material, replace=True)
    return class_name


@pytest.fixture(scope="module")
def bench_mvm():
    mvm = MultiProcVM.boot()
    yield mvm
    mvm.shutdown()


def banner(title: str) -> str:
    line = "=" * max(8, len(title))
    return f"\n{line}\n{title}\n{line}"


def install_trace_exporter(path: str):
    """Install a process-global trace collector; returns an export closure.

    Backs the suite's ``--trace-out`` option: the collector sees spans from
    every VM booted during the run (the tracer's guarded fast path only
    pays when a collector is installed).  Calling the returned closure
    writes the JSONL file, uninstalls the collector, and returns the
    record count.
    """
    from repro.telemetry import TraceCollector, install_collector

    collector = TraceCollector()
    install_collector(collector)

    def export() -> int:
        install_collector(None)
        return collector.export_jsonl(path)

    return export
