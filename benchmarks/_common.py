"""Shared helpers for the benchmark suite."""

from __future__ import annotations

import pytest

from repro.core.launcher import MultiProcVM
from repro.jvm.classloading import ClassMaterial
from repro.security.codesource import CodeSource


def register_main(vm, name: str, main_fn) -> str:
    class_name = f"bench.{name}"
    material = ClassMaterial(
        class_name,
        code_source=CodeSource(
            f"file:/usr/local/java/apps/{name.lower()}/{name}.class"))
    material.members["main"] = main_fn
    vm.registry.register(material, replace=True)
    return class_name


@pytest.fixture(scope="module")
def bench_mvm():
    mvm = MultiProcVM.boot()
    yield mvm
    mvm.shutdown()


def banner(title: str) -> str:
    line = "=" * max(8, len(title))
    return f"\n{line}\n{title}\n{line}"


def install_trace_exporter(path: str):
    """Install a process-global trace collector; returns an export closure.

    Backs the suite's ``--trace-out`` option: the collector sees spans from
    every VM booted during the run (the tracer's guarded fast path only
    pays when a collector is installed).  Calling the returned closure
    writes the JSONL file, uninstalls the collector, and returns the
    record count.
    """
    from repro.telemetry import TraceCollector, install_collector

    collector = TraceCollector()
    install_collector(collector)

    def export() -> int:
        install_collector(None)
        return collector.export_jsonl(path)

    return export
