"""Supervision overhead: respawn latency and admission throughput.

Two costs the Unix-init layer adds on top of Section 5.1 exec/waitFor:

* **Respawn latency** — how long after a supervised service dies until
  its replacement is running (reap + restart-budget bookkeeping +
  backoff + relaunch).  Backoff is forced to ~0 so the number is the
  supervision machinery itself, not the configured delay.
* **Admission throughput** — admit/release cycles per second through
  the VM-wide run queue, and the cost of *shedding* when saturated
  (the overload path must stay cheap: a melting VM cannot afford an
  expensive "no").
"""

import os
import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from _common import banner, bench_mvm, register_main  # noqa: E402,F401

from repro.core.execspec import ExecSpec  # noqa: E402
from repro.jvm.threads import JThread  # noqa: E402
from repro.super import (  # noqa: E402
    AdmissionController,
    AdmissionPolicy,
    AdmissionRejected,
    BackoffPolicy,
    ServiceSpec,
    Supervisor,
)

#: REPRO_BENCH_N scales the admission series (smoke runs force it tiny).
BENCH_N = int(os.environ.get("REPRO_BENCH_N", "2000"))

INSTANT = BackoffPolicy(base=0.0001, factor=1.0, cap=0.0001, jitter=0.0)


def _wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.002)
    return predicate()


def test_bench_respawn_latency(benchmark, bench_mvm):
    class_name = register_main(
        bench_mvm.vm, "LongLived",
        lambda jclass, ctx, args: JThread.sleep(30) or 0)

    with bench_mvm.host_session():
        supervisor = Supervisor(bench_mvm, name="bench-respawn",
                                probe_interval=0.05)
        supervisor.add(ServiceSpec("victim", ExecSpec(class_name),
                                   backoff=INSTANT, max_restarts=10 ** 6,
                                   restart_window=10 ** 6))
        supervisor.start()
        service = supervisor.service("victim")
        assert _wait_until(lambda: service.app is not None)

        def kill_and_await_respawn():
            before = service.restarts
            service.app.destroy()
            assert _wait_until(
                lambda: service.restarts > before
                and service.app is not None)

        try:
            benchmark.pedantic(kill_and_await_respawn, rounds=15,
                               iterations=1, warmup_rounds=2)
        finally:
            supervisor.shutdown()
    print(banner("S1: supervised respawn latency (kill -> running again)"))
    print(f"measured: {benchmark.stats.stats.mean * 1000:8.2f} ms")


def test_bench_admission_throughput(benchmark, bench_mvm):
    controller = AdmissionController(
        bench_mvm.vm, AdmissionPolicy(max_running=8))
    users = ["alice", "bob", "carol", "dave"]

    def cycle():
        tickets = []
        for i in range(BENCH_N):
            tickets.append(controller.admit(users[i % len(users)]))
            if len(tickets) == 8:
                for ticket in tickets:
                    ticket.release()
                tickets.clear()
        for ticket in tickets:
            ticket.release()

    benchmark.pedantic(cycle, rounds=5, iterations=1, warmup_rounds=1)
    per_admit_us = benchmark.stats.stats.mean / max(BENCH_N, 1) * 1e6
    print(banner("S2: admission admit/release throughput"))
    print(f"amortized per admit+release: {per_admit_us:8.2f} us")


def test_bench_admission_shedding(benchmark, bench_mvm):
    """The overload path: rejections per second at full capacity."""
    controller = AdmissionController(
        bench_mvm.vm, AdmissionPolicy(max_running=1))
    holder = controller.admit("holder")

    def shed():
        for _ in range(BENCH_N):
            try:
                controller.admit("burst")
            except AdmissionRejected:
                pass

    try:
        benchmark.pedantic(shed, rounds=5, iterations=1, warmup_rounds=1)
    finally:
        holder.release()
    per_shed_us = benchmark.stats.stats.mean / max(BENCH_N, 1) * 1e6
    print(banner("S3: admission shedding cost when saturated"))
    print(f"amortized per rejection: {per_shed_us:8.2f} us")
    assert controller.rejected >= BENCH_N
