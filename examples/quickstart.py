#!/usr/bin/env python
"""Quickstart: boot the multi-processing JVM, log in, use the shell.

Reproduces the paper's basic workflow (Sections 5.2 and 6): a terminal is
attached to the VM, the login program authenticates Alice, a shell is
spawned with her identity, and commands run as applications — with
Section 5.3's user-based access control visibly enforced.

Run with::

    python examples/quickstart.py
"""

from repro import MultiProcVM, TerminalDevice


def main() -> None:
    mvm = MultiProcVM.boot()
    console = TerminalDevice("console")
    mvm.vm.consoles["console"] = console

    with mvm.host_session():
        terminal_app = mvm.exec("tools.Terminal", ["console"])

        # --- the user sits down and logs in -----------------------------
        console.wait_for_output("login: ")
        console.type_line("alice")
        console.wait_for_output("Password: ")
        console.type_line("wonderland")  # not echoed: the terminal's
        console.wait_for_output("$ ")    # echo is off during entry

        # --- a session: applications, pipes, redirection, policy --------
        for command in (
                "whoami",
                "ls /home/alice",
                "cat /home/alice/notes.txt",
                "echo hello multi-processing JVM > /tmp/greeting.txt",
                "cat /tmp/greeting.txt | wc",
                "cat /home/bob/todo.txt",   # denied: bob's home
                "ps",
                "exit",
        ):
            console.type_line(command)
        console.wait_for_output("logged out")
        console.hang_up()
        terminal_app.wait_for(5)

    print(console.transcript())
    mvm.shutdown()
    print("--- VM terminated cleanly ---")


if __name__ == "__main__":
    main()
