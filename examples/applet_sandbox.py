#!/usr/bin/env python
"""The Appletviewer sandbox of Section 6.3.

An applet is published on a simulated web host, downloaded by the ported
Appletviewer through its AppletClassLoader, and runs inside the viewer's
application — but under its own network code source:

* it may connect back to its origin host (the delegated permission);
* it may NOT connect anywhere else;
* it may NOT read the running user's files, even though Alice (who has
  those grants) is the one running the viewer — remote code never receives
  ``UserPermission`` under the Section 5.3 policy.

Run with::

    python examples/applet_sandbox.py
"""

from repro import ClassMaterial, CodeSource, MultiProcVM, SecurityException
from repro.io.file import read_text
from repro.net.sockets import Socket


def build_applet(web) -> ClassMaterial:
    applet = ClassMaterial(
        "applets.WeatherApplet",
        code_source=CodeSource(web.code_base() + "applets.WeatherApplet"),
        doc="A mobile-code applet probing the sandbox boundaries.")

    @applet.member
    def init(jclass, ctx, frame):
        ctx.stdout.println("[applet] init: hello from mobile code")

    @applet.member
    def start(jclass, ctx, frame):
        out = ctx.stdout
        # 1. Connect back to the origin host: allowed.
        try:
            socket = Socket(ctx, "web.example.com", 80)
            socket.send_text("GET /weather")
            out.println("[applet] connect-back to web.example.com: OK — "
                        + socket.receive_text(32))
            socket.close()
        except SecurityException as exc:
            out.println(f"[applet] connect-back DENIED?! {exc}")
        # 2. A third-party host: denied.
        try:
            Socket(ctx, "bank.example.com", 443)
            out.println("[applet] connected to bank.example.com?!")
        except SecurityException:
            out.println("[applet] connect to bank.example.com: DENIED "
                        "(as it must be)")
        # 3. The running user's files: denied despite Alice's grants.
        try:
            read_text(ctx, "/home/alice/notes.txt")
            out.println("[applet] read alice's notes?!")
        except SecurityException:
            out.println("[applet] read /home/alice/notes.txt: DENIED "
                        "(no UserPermission for remote code)")

    return applet


def main() -> None:
    mvm = MultiProcVM.boot()
    fabric = mvm.vm.network
    web = fabric.add_host("web.example.com")
    fabric.add_host("bank.example.com").listen(443)
    web.publish_class(build_applet(web))

    # A tiny "weather server" on the applet's origin host.
    listener = web.listen(80)
    from repro.jvm.threads import JThread
    def serve():
        endpoint = listener.accept(timeout=10)
        if endpoint is not None:
            endpoint.input.read(64)
            endpoint.output.write(b"sunny, 21C")
            endpoint.close()
    JThread(target=serve, name="weather-server",
            group=mvm.vm.root_group, daemon=True).start()

    with mvm.host_session():
        alice = mvm.vm.user_database.lookup("alice")
        print("Running the Appletviewer as alice ...\n")
        viewer = mvm.exec(
            "tools.AppletViewer",
            ["--no-wait",
             "http://web.example.com/classes/applets.WeatherApplet"],
            user=alice, stdout=mvm.vm.out, stderr=mvm.vm.err)
        viewer.wait_for(10)

    print(mvm.vm.out.target.to_text())
    print("Requests the web host saw:", web.request_log)
    mvm.shutdown()


if __name__ == "__main__":
    main()
