#!/usr/bin/env python
"""The Alice-and-Bob editor scenario of Section 5.4 / Feature 7.

Two users run *the same* text editor program inside one JVM.  Each editor
window gets its own per-application event dispatcher thread, so the
Save-File callback runs as the right user and each document lands in the
right home directory — the exact problem the paper's redesign solves.

Run with::

    python examples/multiuser_editor.py
"""

import time

from repro import ClassMaterial, CodeSource, MultiProcVM
from repro.awt.components import Frame, MenuBar, TextArea
from repro.core.context import current_application_or_none
from repro.io.file import read_text, write_text
from repro.jvm.threads import JThread

EDITOR = ClassMaterial(
    "apps.TextEditor",
    code_source=CodeSource(
        "file:/usr/local/java/apps/texteditor/TextEditor.class"),
    doc="A text editor whose Save File writes to $HOME/document.txt.")


@EDITOR.member
def main(jclass, ctx, args):
    title = args[0]
    frame = Frame(title, name=f"frame-{title}")
    area = TextArea(name=f"text-{title}")
    frame.add(area)
    menu_bar = MenuBar(name=f"menubar-{title}")
    file_menu = menu_bar.add_menu("File", name=f"file-{title}")

    def save_file(event):
        # Resolved from the *dispatching thread* — Section 5.4's point.
        application = current_application_or_none()
        home = application.user.home
        write_text(ctx, f"{home}/document.txt", area.text)
        ctx.stdout.println(
            f"[{title}] saved {len(area.text)} chars to "
            f"{home}/document.txt as {application.user.name}")

    file_menu.add_item("Save File", save_file, name=f"save-{title}")
    frame.set_menu_bar(menu_bar)
    frame.show(ctx.vm.toolkit)
    while True:  # a GUI application lives until destroyed (Section 5.4)
        JThread.sleep(0.5)


def wait_for_window(xserver, title, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        window_id = xserver.find_window(title)
        if window_id is not None:
            return window_id
        time.sleep(0.01)
    raise RuntimeError(f"window {title!r} never appeared")


def main_example() -> None:
    mvm = MultiProcVM.boot()
    mvm.vm.registry.register(EDITOR)
    xserver = mvm.toolkit.xserver

    with mvm.host_session():
        alice = mvm.vm.user_database.lookup("alice")
        bob = mvm.vm.user_database.lookup("bob")
        editor_alice = mvm.exec("apps.TextEditor", ["alice-editor"],
                                user=alice, stdout=mvm.vm.out)
        editor_bob = mvm.exec("apps.TextEditor", ["bob-editor"],
                              user=bob, stdout=mvm.vm.out)

        window_alice = wait_for_window(xserver, "alice-editor")
        window_bob = wait_for_window(xserver, "bob-editor")

        # The users type into their own windows (via the X server) ...
        xserver.type_text(window_alice, "text-alice-editor",
                          "Dear diary: the JVM is multi-user now.")
        xserver.type_text(window_bob, "text-bob-editor",
                          "TODO: review the new security model.")
        # ... and both pick File > Save File.
        xserver.select_menu_item(window_alice, "save-alice-editor")
        xserver.select_menu_item(window_bob, "save-bob-editor")
        time.sleep(0.3)

        ctx = mvm.initial.context()
        print("\n/home/alice/document.txt:",
              read_text(ctx, "/home/alice/document.txt"))
        print("/home/bob/document.txt:  ",
              read_text(ctx, "/home/bob/document.txt"))
        print("\nDispatcher threads in play:")
        for app in (editor_alice, editor_bob):
            edt = app.event_dispatch_thread
            print(f"  {app.name:<16s} user={app.user.name:<6s} "
                  f"EDT={edt.thread.name} (group {edt.thread.group.name})")

        editor_alice.destroy()
        editor_bob.destroy()
        editor_alice.wait_for(5)
        editor_bob.wait_for(5)

    print("\nShell output from the editors:")
    print(mvm.vm.out.target.to_text())
    mvm.shutdown()


if __name__ == "__main__":
    main_example()
