#!/usr/bin/env python
"""Figure 1, live: the lifetime of a JVM — and of an application.

Part 1 uses a *plain* (single-application) VM and shows the classic rule:
the JVM exits exactly when the last non-daemon thread finishes, stopping
daemon threads mid-work.

Part 2 shows the multi-processing re-reading of the same rule (Feature 1):
an application with the same thread structure ends — and the JVM keeps
running, ready for the next application.

Run with::

    python examples/lifecycle_figure1.py
"""

import time

from repro import ClassMaterial, JThread, MultiProcVM, VirtualMachine
from repro.jvm.errors import ThreadDeath
from repro.jvm.threads import checkpoint


def build_demo_material(tag: str) -> ClassMaterial:
    material = ClassMaterial(f"demo.Lifecycle{tag}")

    @material.member
    def main(jclass, ctx, args):
        out = ctx.stdout

        def daemon_body():
            try:
                while True:
                    checkpoint()
                    time.sleep(0.01)
            except ThreadDeath:
                out.println(f"[{tag}] daemon stopped in the middle of "
                            "whatever it was doing")
                raise

        def worker_body():
            out.println(f"[{tag}] non-daemon worker running ...")
            JThread.sleep(0.2)
            out.println(f"[{tag}] non-daemon worker done")

        JThread(target=daemon_body, name=f"{tag}-daemon",
                daemon=True).start()
        JThread(target=worker_body, name=f"{tag}-worker",
                daemon=False).start()
        out.println(f"[{tag}] main returns now — but the worker is "
                    "non-daemon, so we keep running")

    return material


def part1_plain_vm() -> None:
    print("=== Part 1: a plain JVM (Figure 1) ===")
    vm = VirtualMachine().boot()
    vm.registry.register(build_demo_material("jvm"))
    vm.run_main("demo.Lifecyclejvm")
    terminated = vm.await_termination(5.0)
    print(vm.out.target.to_text())
    print(f"VM terminated: {terminated} (exit code {vm.exit_code})\n")


def part2_multiproc_vm() -> None:
    print("=== Part 2: the same lifecycle, as an application "
          "(Feature 1) ===")
    mvm = MultiProcVM.boot()
    mvm.vm.registry.register(build_demo_material("app"))
    with mvm.host_session():
        app = mvm.exec("demo.Lifecycleapp", [], stdout=mvm.vm.out)
        code = app.wait_for(5)
        print(mvm.vm.out.target.to_text())
        print(f"application ended with code {code}; "
              f"VM still running: {not mvm.vm.terminated}")
        # The VM is alive and well: run another application.
        echo = mvm.exec("tools.Echo", ["the", "vm", "survived"],
                        stdout=mvm.vm.out)
        echo.wait_for(5)
    print(mvm.vm.out.target.to_text().splitlines()[-1])
    mvm.shutdown()
    print(f"VM shut down explicitly: {mvm.vm.terminated}")


if __name__ == "__main__":
    part1_plain_vm()
    part2_multiproc_vm()
