#!/usr/bin/env python
"""Applications spanning JVMs — the paper's Section 8 future work, built.

    "it is conceivable that the notion of an application as a set of
    threads can be extended to include threads of other JVM's, possibly on
    other hosts."

Two multi-processing JVMs boot on two simulated hosts sharing one network.
JVM B runs the rexec daemon; from JVM A we:

1. run remote commands with ``rsh`` from an ordinary shell;
2. build a :class:`DistributedApplication` whose threads live in *both*
   JVMs, and tear the whole thing down with one call.

Run with::

    python examples/distributed_application.py
"""

import time

from repro import MultiProcVM
from repro.dist.client import DistributedApplication, remote_exec
from repro.io.streams import ByteArrayOutputStream, PrintStream
from repro.net.fabric import NetworkFabric
from repro.unixfs.machine import standard_process

HOST_A, HOST_B = "vm-a.example.com", "vm-b.example.com"


def main() -> None:
    fabric = NetworkFabric()
    mvm_a = MultiProcVM.boot(
        os_context=standard_process(hostname=HOST_A), network=fabric)
    mvm_b = MultiProcVM.boot(
        os_context=standard_process(hostname=HOST_B), network=fabric)

    # JVM B: start the rexec daemon.
    with mvm_b.host_session():
        mvm_b.exec("dist.RexecDaemon", ["7100"])
    while fabric.resolve(HOST_B)._listener(7100) is None:
        time.sleep(0.01)

    with mvm_a.host_session():
        # --- 1. rsh from a shell on JVM A --------------------------------
        sink = ByteArrayOutputStream()
        alice = mvm_a.vm.user_database.lookup("alice")
        shell = mvm_a.exec(
            "tools.Shell",
            ["-c",
             "setprop rsh.password wonderland",
             "echo --- local identity:", "whoami", "hostname",
             f"echo --- remote identity via rsh {HOST_B}:",
             f"rsh {HOST_B} whoami",
             f"rsh {HOST_B} hostname",
             f"rsh {HOST_B} cat /etc/motd"],
            user=alice, stdout=PrintStream(sink), stderr=PrintStream(sink))
        shell.wait_for(30)
        print(sink.to_text())

        # --- 2. one application, threads in two JVMs ---------------------
        ctx = mvm_a.initial.context()
        distributed = DistributedApplication(
            local=mvm_a.exec("tools.Sleep", ["30"]))
        distributed.add_remote(remote_exec(
            ctx, HOST_B, "tools.Sleep", ["30"],
            user="alice", password="wonderland"))
        print("distributed application running:",
              f"local part {distributed.local.name} on {HOST_A},",
              f"remote part on {HOST_B}")
        print("terminated?", distributed.terminated)
        distributed.destroy_all()
        codes = distributed.wait_all(10)
        print("destroyed everywhere; exit codes:", codes)

    mvm_a.shutdown()
    mvm_b.shutdown()
    print("both JVMs terminated cleanly")


if __name__ == "__main__":
    main()
