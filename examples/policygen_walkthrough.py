#!/usr/bin/env python
"""Policy inference end to end: record → infer → diff → tighten.

A small "report builder" application runs once in learning mode under the
(broad) default policy.  Its audit slice is folded into the least
privilege it actually needs, the inferred policy is diffed against the
live one to show the over-privilege being carried, and the workload is
re-run under the inferred policy alone to prove sufficiency.  Finally a
phase-conditioned grant shows the execution-state MAC: a privilege used
during ``init`` and then dropped for good.

Run with::

    python examples/policygen_walkthrough.py
"""

from repro import ExecSpec, MultiProcVM, PHASE_STEADY, parse_policy
from repro.core.context import current_application
from repro.io.file import read_text, write_text
from repro.jvm.classloading import ClassMaterial
from repro.policytool import diff_policies, infer_policy, render_diff, \
    unsatisfied_records
from repro.policytool.recorder import recorder_for
from repro.security.codesource import CodeSource

CODE_BASE = "file:/usr/local/java/apps/reporter/Reporter.class"


def reporter_material() -> ClassMaterial:
    """The workload: read config during init, then build a report."""
    material = ClassMaterial("apps.Reporter",
                            code_source=CodeSource(CODE_BASE))

    def main(jclass, ctx, args):
        read_text(ctx, "/etc/motd")                    # "config" (init)
        current_application().advance_phase(PHASE_STEADY)
        write_text(ctx, "/tmp/report.txt", "totals: 42\n")
        read_text(ctx, "/tmp/report.txt")              # verify (steady)
        return 0

    material.members["main"] = main
    return material


def run_reporter(mvm, record: bool = False):
    app = mvm.launch(ExecSpec("apps.Reporter", (),
                              record_policy=record))
    assert app.wait_for(10) == 0
    return app


def main() -> None:
    mvm = MultiProcVM.boot()
    mvm.vm.registry.register(reporter_material(), replace=True)

    with mvm.host_session():
        # --- 1. record: one run in learning mode ------------------------
        app = run_reporter(mvm, record=True)
        records = recorder_for(mvm.vm).slice_for(app.app_id).snapshot()
        print(f"recorded {len(records)} decisions "
              f"for application {app.app_id}")

        # --- 2. infer: the least-privilege policy -----------------------
        inferred = infer_policy(records, phase_aware=True)
        print("\n--- inferred policy (phase-aware) ---")
        print(inferred.render())

        # --- 3. diff: what the live policy over-grants ------------------
        print("--- inferred vs live (+ missing / - unused) ---")
        print(render_diff(diff_policies(mvm.vm.policy, inferred)))

    # --- 4. tighten: re-run under the inferred policy alone -------------
    assert unsatisfied_records(inferred, records,
                               phase_aware=True) == []
    tightened = MultiProcVM.boot(policy=parse_policy(inferred.render()))
    tightened.vm.registry.register(reporter_material(), replace=True)
    with tightened.host_session():
        rerun = run_reporter(tightened)
        denials = tightened.vm.telemetry.audit.denials(
            app_id=rerun.app_id)
        assert denials == [], denials
        print("re-run under the inferred policy alone: zero denials")

        # The phase MAC in action: the init-only grant is gone once the
        # application has advanced, so the "config read" privilege was
        # dropped for good the moment steady state began.
        probe = run_reporter(tightened)
        print(f"application {probe.app_id} ended in phase "
              f"{probe.phase!r} — init-phase grants no longer apply")
    tightened.shutdown()
    mvm.shutdown()
    print("--- done ---")


if __name__ == "__main__":
    main()
