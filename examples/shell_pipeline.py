#!/usr/bin/env python
"""A scripted shell session: pipes, redirection, and background jobs.

Every stage of every pipeline is a separate *application* (its own thread
group, loader, and System copy) connected through in-VM pipes — the
Section 6.1 machinery, driven non-interactively via ``sh -c``.

Run with::

    python examples/shell_pipeline.py
"""

from repro import MultiProcVM
from repro.io.file import write_text
from repro.io.streams import ByteArrayOutputStream, PrintStream

SESSION = [
    "echo The multi-processing JVM shell",
    "mkdir /tmp/demo",
    "echo alpha > /tmp/demo/words.txt",
    "echo beta >> /tmp/demo/words.txt",
    "echo gamma >> /tmp/demo/words.txt",
    "cat /tmp/demo/words.txt",
    "cat /tmp/demo/words.txt | grep a | wc -l",
    "cat /tmp/demo/words.txt | wc > /tmp/demo/counts.txt",
    "cat /tmp/demo/counts.txt",
    "ls -l /tmp/demo",
    "sleep 0.2 &",
    "jobs",
    "whoami; pwd",
    "yes spam | head -n 3",
    "echo exit status of the last pipeline: $?",
]


def main() -> None:
    mvm = MultiProcVM.boot()
    with mvm.host_session():
        sink = ByteArrayOutputStream()
        stream = PrintStream(sink)
        alice = mvm.vm.user_database.lookup("alice")
        shell = mvm.exec("tools.Shell", ["-c", *SESSION],
                         user=alice, stdout=stream, stderr=stream)
        code = shell.wait_for(30)
        print(sink.to_text())
        print(f"(shell exited with status {code})")
    mvm.shutdown()


if __name__ == "__main__":
    main()
