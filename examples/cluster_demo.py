#!/usr/bin/env python
"""A 3-node cluster: load-balanced placement, playground offload, failover.

One controller VM and three worker VMs boot on one simulated network.
The controller runs the cluster registry; every worker runs the rexec
daemon plus a heartbeat agent.  The demo then:

1. launches a dozen applications across the pool (round-robin and
   least-loaded placement);
2. confines an "untrusted" launch to the designated playground node;
3. kills node-2 mid-run and watches the launches that lived there get
   re-placed onto surviving nodes;
4. shows the live membership through ``/proc/cluster/nodes`` and the
   ``cluster status`` coreutil.

Run with::

    python examples/cluster_demo.py
"""

import time

from repro import MultiProcVM
from repro.cluster import Cluster
from repro.io.streams import ByteArrayOutputStream, PrintStream
from repro.net.fabric import NetworkFabric
from repro.unixfs.machine import standard_process

CTRL = "ctrl.example.com"
NODES = ["node-1.example.com", "node-2.example.com", "node-3.example.com"]


def banner(title: str) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def run_tool(mvm, class_name, args):
    sink = ByteArrayOutputStream()
    with mvm.host_session():
        code = mvm.run(class_name, args, stdout=PrintStream(sink),
                       stderr=PrintStream(sink))
    return code, sink.to_text()


def main() -> None:
    fabric = NetworkFabric()
    ctrl = MultiProcVM.boot(
        os_context=standard_process(hostname=CTRL), network=fabric)
    workers = {name: MultiProcVM.boot(
        os_context=standard_process(hostname=name), network=fabric)
        for name in NODES}

    banner("membership: 3 workers join the pool")
    cluster = Cluster(ctrl, suspect_after=0.4, dead_after=0.8,
                      failover_grace=3.0)
    cluster.start(sweep_interval=0.1)
    for index, name in enumerate(NODES):
        # node-3 is the playground: untrusted work is confined to it.
        cluster.join(workers[name], rexec_port=7101 + index, interval=0.1,
                     playground=(name == NODES[2]))
    print(cluster.render_nodes())

    banner("placement: 12 launches across the pool")
    finished = []
    for i in range(8):
        app = cluster.exec("tools.Echo", [f"job-{i}"], user="alice",
                           password="wonderland")
        assert app.wait_for(10) == 0
        finished.append(app)
        print(f"job-{i:<2} round-robin   -> {app.node}")
    for i in range(8, 11):
        app = cluster.exec("tools.Echo", [f"job-{i}"], user="alice",
                           password="wonderland", policy="least-loaded")
        assert app.wait_for(10) == 0
        finished.append(app)
        print(f"job-{i:<2} least-loaded -> {app.node}")

    untrusted = cluster.exec("tools.Echo", ["sandboxed"], user="alice",
                             password="wonderland", untrusted=True)
    assert untrusted.wait_for(10) == 0
    finished.append(untrusted)
    print(f"job-11 untrusted    -> {untrusted.node}  (playground only)")
    assert untrusted.node == NODES[2]
    spread = {node: sum(1 for a in finished if a.node == node)
              for node in NODES}
    print("spread:", spread)
    assert len(finished) >= 10
    assert all(count > 0 for count in spread.values())

    banner("failover: kill node-2 while work runs there")
    sleepers = []
    while len([s for s in sleepers if s.node == NODES[1]]) < 2:
        sleepers.append(cluster.exec("tools.Sleep", ["60"], user="alice",
                                     password="wonderland"))
    print("sleepers placed on:", [s.node for s in sleepers])
    doomed = [s for s in sleepers if s.node == NODES[1]]
    cluster.shutdown_worker(workers.pop(NODES[1]))
    print(f"{NODES[1]} is gone; waiting for the detector + re-placement...")
    deadline = time.monotonic() + 15
    while time.monotonic() < deadline and \
            any(s.node == NODES[1] for s in doomed):
        time.sleep(0.1)
    for sleeper in doomed:
        print(f"  {' -> '.join(sleeper.placements)}")
        assert sleeper.node != NODES[1], "launch stuck on a dead node"
        assert len(sleeper.placements) >= 2
    for sleeper in sleepers:
        sleeper.destroy()
        sleeper.close()
    for app in finished:
        app.close()

    banner("introspection: /proc/cluster/nodes")
    code, text = run_tool(ctrl, "tools.Cat", ["/proc/cluster/nodes"])
    assert code == 0
    print(text, end="")
    assert "dead" in text  # node-2's tombstone is visible

    banner("introspection: cluster status")
    code, text = run_tool(ctrl, "tools.Cluster", ["status"])
    assert code == 0
    print(text, end="")
    assert "2 live" in text

    failovers = int(cluster.metrics.total("cluster.failovers"))
    placements = int(cluster.metrics.total("cluster.placements"))
    print(f"\n{placements} placements, {failovers} failovers, "
          f"{len(cluster.registry.live_nodes())} nodes still live")

    for worker in list(workers.values()):
        cluster.shutdown_worker(worker)
    ctrl.shutdown()
    print("all JVMs terminated cleanly")


if __name__ == "__main__":
    main()
