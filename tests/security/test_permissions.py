"""Permission implies-semantics (the JDK 1.2 rules, Section 3.3/5.3)."""

import pytest

from repro.jvm.errors import IllegalArgumentException
from repro.security.permissions import (
    AllPermission,
    AWTPermission,
    BasicPermission,
    FilePermission,
    Permission,
    PermissionCollection,
    Permissions,
    PropertyPermission,
    RuntimePermission,
    SocketPermission,
    UserPermission,
    make_permission,
)


def implies(a: Permission, b: Permission) -> bool:
    return a.implies(b)


class TestFilePermission:
    @pytest.mark.parametrize("holder,target,expected", [
        # exact paths
        ("/a/b", "/a/b", True),
        ("/a/b", "/a/c", False),
        ("/a/b", "/a/b/c", False),
        # directory wildcard /*
        ("/a/*", "/a/b", True),
        ("/a/*", "/a/b/c", False),   # not recursive
        ("/a/*", "/a", False),       # not the directory itself
        ("/a/*", "/a/*", True),
        ("/a/*", "/a/-", False),
        # recursive wildcard /-
        ("/a/-", "/a/b", True),
        ("/a/-", "/a/b/c/d", True),
        ("/a/-", "/a", False),       # not the directory itself
        ("/a/-", "/a/*", True),
        ("/a/-", "/a/b/-", True),
        ("/a/-", "/ab", False),      # sibling with same prefix
        # all files
        ("<<ALL FILES>>", "/anything/at/all", True),
        ("<<ALL FILES>>", "/x/-", True),
        ("/a/-", "<<ALL FILES>>", False),
        # root recursion
        ("/-", "/any/path", True),
    ])
    def test_path_matrix(self, holder, target, expected):
        a = FilePermission(holder, "read")
        b = FilePermission(target, "read")
        assert implies(a, b) is expected

    def test_actions_subset(self):
        rw = FilePermission("/f", "read,write")
        r = FilePermission("/f", "read")
        assert rw.implies(r)
        assert not r.implies(rw)
        assert not r.implies(FilePermission("/f", "delete"))

    def test_actions_normalized_order(self):
        assert FilePermission("/f", "write , read").actions() == "read,write"

    def test_invalid_action_rejected(self):
        with pytest.raises(IllegalArgumentException):
            FilePermission("/f", "fly")
        with pytest.raises(IllegalArgumentException):
            FilePermission("/f", "")

    def test_path_normalization(self):
        assert FilePermission("/a/./b/../c", "read").implies(
            FilePermission("/a/c", "read"))

    def test_cross_type_never_implied(self):
        assert not FilePermission("/f", "read").implies(
            RuntimePermission("exitVM"))

    def test_equality_and_hash(self):
        a = FilePermission("/f", "read,write")
        b = FilePermission("/f", "write,read")
        assert a == b
        assert hash(a) == hash(b)
        assert a != FilePermission("/f", "read")


class TestSocketPermission:
    def test_exact_host_and_port(self):
        holder = SocketPermission("server.example.com:80", "connect")
        assert holder.implies(
            SocketPermission("server.example.com:80", "connect"))
        assert not holder.implies(
            SocketPermission("server.example.com:81", "connect"))
        assert not holder.implies(
            SocketPermission("other.example.com:80", "connect"))

    def test_port_ranges(self):
        holder = SocketPermission("h:1024-2048", "connect")
        assert holder.implies(SocketPermission("h:1500", "connect"))
        assert not holder.implies(SocketPermission("h:80", "connect"))
        assert holder.implies(SocketPermission("h:1024-1025", "connect"))
        assert not holder.implies(SocketPermission("h:2000-3000", "connect"))

    def test_open_ended_ranges(self):
        assert SocketPermission("h:1024-", "connect").implies(
            SocketPermission("h:60000", "connect"))
        assert SocketPermission("h:-1023", "connect").implies(
            SocketPermission("h:80", "connect"))
        assert SocketPermission("h", "connect").implies(
            SocketPermission("h:9999", "connect"))

    def test_wildcard_hosts(self):
        assert SocketPermission("*.example.com", "connect").implies(
            SocketPermission("a.example.com:80", "connect"))
        assert not SocketPermission("*.example.com", "connect").implies(
            SocketPermission("example.org:80", "connect"))
        assert SocketPermission("*", "connect").implies(
            SocketPermission("anything:1", "connect"))

    def test_connect_implies_resolve(self):
        holder = SocketPermission("h", "connect")
        assert holder.implies(SocketPermission("h", "resolve"))
        assert not SocketPermission("h", "resolve").implies(
            SocketPermission("h", "connect"))

    def test_action_subset(self):
        holder = SocketPermission("h", "connect,accept")
        assert holder.implies(SocketPermission("h", "accept"))
        assert not holder.implies(SocketPermission("h", "listen"))

    def test_invalid_range(self):
        with pytest.raises(IllegalArgumentException):
            SocketPermission("h:90-10", "connect")


class TestBasicPermissions:
    def test_exact_name(self):
        assert RuntimePermission("exitVM").implies(
            RuntimePermission("exitVM"))
        assert not RuntimePermission("exitVM").implies(
            RuntimePermission("setUser"))

    def test_star_wildcard(self):
        assert RuntimePermission("*").implies(
            RuntimePermission("anything.at.all"))

    def test_hierarchical_wildcard(self):
        holder = BasicPermission("a.b.*")
        assert holder.implies(BasicPermission("a.b.c"))
        assert holder.implies(BasicPermission("a.b.c.d"))
        assert not holder.implies(BasicPermission("a.bc"))
        assert not holder.implies(BasicPermission("a.b"))

    def test_subclasses_do_not_cross(self):
        assert not RuntimePermission("*").implies(AWTPermission("showWindow"))
        assert not AWTPermission("*").implies(RuntimePermission("exitVM"))

    def test_user_permission_default_name(self):
        assert UserPermission().name == "exerciseUserPermissions"
        assert UserPermission().implies(UserPermission())

    def test_empty_name_rejected(self):
        with pytest.raises(IllegalArgumentException):
            RuntimePermission("")


class TestPropertyPermission:
    def test_name_wildcard_and_actions(self):
        holder = PropertyPermission("java.*", "read,write")
        assert holder.implies(PropertyPermission("java.version", "read"))
        assert holder.implies(PropertyPermission("java.vendor",
                                                 "read,write"))
        assert not holder.implies(PropertyPermission("os.name", "read"))

    def test_write_not_implied_by_read(self):
        assert not PropertyPermission("k", "read").implies(
            PropertyPermission("k", "write"))

    def test_invalid_action(self):
        with pytest.raises(IllegalArgumentException):
            PropertyPermission("k", "execute")


class TestAllPermission:
    def test_implies_everything(self):
        everything = [
            FilePermission("/x", "read,write,delete,execute"),
            SocketPermission("*", "connect,accept,listen"),
            RuntimePermission("*"),
            PropertyPermission("*", "read,write"),
            UserPermission(),
            AllPermission(),
        ]
        for permission in everything:
            assert AllPermission().implies(permission)


class TestCollections:
    def test_basic_collection(self):
        collection = PermissionCollection()
        collection.add(FilePermission("/a/-", "read"))
        collection.add(RuntimePermission("exitVM"))
        assert collection.implies(FilePermission("/a/b", "read"))
        assert collection.implies(RuntimePermission("exitVM"))
        assert not collection.implies(FilePermission("/b", "read"))
        assert len(collection) == 2

    def test_read_only(self):
        collection = PermissionCollection()
        collection.set_read_only()
        with pytest.raises(IllegalArgumentException):
            collection.add(RuntimePermission("x"))

    def test_permissions_heterogeneous(self):
        permissions = Permissions([
            FilePermission("/home/alice/-", "read,write"),
            SocketPermission("*.example.com", "connect"),
            RuntimePermission("setUser"),
        ])
        assert permissions.implies(
            FilePermission("/home/alice/f", "read"))
        assert permissions.implies(
            SocketPermission("www.example.com:80", "connect"))
        assert permissions.implies(RuntimePermission("setUser"))
        assert not permissions.implies(RuntimePermission("exitVM"))
        assert len(permissions) == 3

    def test_permissions_all_permission_short_circuit(self):
        permissions = Permissions([AllPermission()])
        assert permissions.implies(FilePermission("/any", "delete"))

    def test_permissions_dedupe(self):
        permissions = Permissions()
        permissions.add(RuntimePermission("x"))
        permissions.add(RuntimePermission("x"))
        assert len(permissions) == 1

    def test_copy_is_independent(self):
        original = Permissions([RuntimePermission("x")])
        clone = original.copy()
        clone.add(RuntimePermission("y"))
        assert not original.implies(RuntimePermission("y"))


class TestFactory:
    def test_known_types(self):
        assert isinstance(make_permission("FilePermission", "/f", "read"),
                          FilePermission)
        assert isinstance(make_permission("java.io.FilePermission", "/f",
                                          "read"), FilePermission)
        assert isinstance(make_permission("UserPermission"), UserPermission)
        assert isinstance(make_permission("AllPermission"), AllPermission)
        assert isinstance(make_permission("RuntimePermission", "exitVM"),
                          RuntimePermission)

    def test_unknown_type(self):
        with pytest.raises(IllegalArgumentException):
            make_permission("MagicPermission", "x")

    def test_missing_target(self):
        with pytest.raises(IllegalArgumentException):
            make_permission("FilePermission")


class TestHeterogeneousImpliesScan:
    """The bucket scan behind ``Permissions.implies``: only type-compatible
    buckets are consulted, and the per-query-type bucket memo never changes
    the answer a full scan would give."""

    def test_exact_type_bucket_hit(self):
        permissions = Permissions([
            FilePermission("/a/-", "read"),
            SocketPermission("*", "resolve"),
            RuntimePermission("exitVM"),
        ])
        assert permissions.implies(FilePermission("/a/x", "read"))
        assert permissions.implies(RuntimePermission("exitVM"))
        assert not permissions.implies(FilePermission("/b", "read"))

    def test_cross_type_never_leaks(self):
        permissions = Permissions([FilePermission("/a/-", "read,write")])
        assert not permissions.implies(SocketPermission("h:80", "connect"))
        assert not permissions.implies(RuntimePermission("exitVM"))

    def test_subclass_query_consults_base_bucket(self):
        class AuditedProperty(PropertyPermission):
            pass

        permissions = Permissions([PropertyPermission("*", "read")])
        assert permissions.implies(AuditedProperty("app.home", "read"))

    def test_subclass_holding_consulted_for_base_query(self):
        class AuditedProperty(PropertyPermission):
            pass

        permissions = Permissions([AuditedProperty("app.home", "read")])
        assert permissions.implies(PropertyPermission("app.home", "read"))

    def test_new_bucket_type_visible_after_memoized_miss(self):
        permissions = Permissions([FilePermission("/a", "read")])
        probe = RuntimePermission("probe")
        assert not permissions.implies(probe)   # memoizes an empty scan
        permissions.add(RuntimePermission("probe"))  # brand-new bucket
        assert permissions.implies(probe)

    def test_growing_existing_bucket_visible_after_memoized_miss(self):
        permissions = Permissions([FilePermission("/a", "read")])
        probe = FilePermission("/b", "read")
        assert not permissions.implies(probe)   # memoizes the bucket list
        permissions.add(FilePermission("/b", "read"))  # same bucket grows
        assert permissions.implies(probe)

    def test_version_counts_only_real_additions(self):
        permissions = Permissions([RuntimePermission("x")])
        before = permissions.version
        permissions.add(RuntimePermission("x"))  # dedupe: not appended
        assert permissions.version == before
        permissions.add(RuntimePermission("y"))
        assert permissions.version == before + 1
