"""Property-based tests of the AccessController's stack-walk algorithm.

The correctness condition of the JDK 1.2 walk is simple to state: with no
privileged frames, access is granted iff *every* domain on the stack (plus
the inherited context) satisfies the permission.  With a privileged frame,
only the frames above it (inclusive) matter.  We generate random stacks and
check the implementation against that specification.
"""

import contextlib

from hypothesis import given, settings, strategies as st

from repro.jvm.errors import AccessControlException
from repro.security import access
from repro.security.codesource import CodeSource, ProtectionDomain
from repro.security.permissions import Permissions, RuntimePermission

PERM = RuntimePermission("propertyUnderTest")


def make_domain(grants: bool) -> ProtectionDomain:
    permissions = Permissions([PERM] if grants else [])
    return ProtectionDomain(CodeSource("file:/d"), permissions,
                            name=f"{'grant' if grants else 'deny'}-domain")


def allowed() -> bool:
    try:
        access.check_permission(PERM)
        return True
    except AccessControlException:
        return False


# Each stack frame: (has_domain, domain_grants, is_privileged)
frame_specs = st.lists(
    st.tuples(st.booleans(), st.booleans(), st.booleans()), max_size=8)


@given(specs=frame_specs)
@settings(max_examples=150, deadline=None)
def test_walk_matches_specification(specs):
    frames = []
    for has_domain, grants, privileged in specs:
        domain = make_domain(grants) if has_domain else None
        frames.append((domain, privileged))

    # Specification: walk top -> bottom; every non-None domain must grant;
    # stop (granted) after checking the first privileged frame.
    def expected() -> bool:
        for domain, privileged in reversed(frames):
            if domain is not None and not domain.implies(PERM):
                return False
            if privileged:
                return True
        return True  # ran off the stack: host code, trusted

    with contextlib.ExitStack() as stack:
        for domain, privileged in frames:
            if privileged:
                frame = access._Frame(domain, privileged=True)
                stack.enter_context(access._FrameGuard(frame))
            else:
                stack.enter_context(access.stack_frame(domain))
        assert allowed() == expected()


@given(specs=frame_specs)
@settings(max_examples=100, deadline=None)
def test_get_context_check_agrees_with_live_stack(specs):
    """A snapshot taken on a stack must deny iff the live stack denies
    (for stacks without privileged frames, where the snapshot is total)."""
    frames = [(make_domain(grants) if has_domain else None)
              for has_domain, grants, _ in specs]
    with contextlib.ExitStack() as stack:
        for domain in frames:
            stack.enter_context(access.stack_frame(domain))
        live = allowed()
        snapshot = access.get_context()
    try:
        snapshot.check_permission(PERM)
        snap_allowed = True
    except AccessControlException:
        snap_allowed = False
    assert snap_allowed == live


@given(depth=st.integers(min_value=0, max_value=10))
@settings(max_examples=50, deadline=None)
def test_stack_always_clean_after_use(depth):
    with contextlib.ExitStack() as stack:
        for _ in range(depth):
            stack.enter_context(access.stack_frame(make_domain(False)))
    assert allowed(), "stack must be empty (trusted) after frames pop"
    assert access.current_domain() is None
