"""CodeSource URL/signers matching and ProtectionDomain evaluation."""

from repro.security.codesource import (
    CodeSource,
    ProtectionDomain,
    system_domain,
)
from repro.security.permissions import (
    FilePermission,
    Permissions,
    RuntimePermission,
)


class TestUrlMatching:
    def test_exact(self):
        assert CodeSource("file:/a/b.class").implies(
            CodeSource("file:/a/b.class"))
        assert not CodeSource("file:/a/b.class").implies(
            CodeSource("file:/a/c.class"))

    def test_directory_star(self):
        pattern = CodeSource("file:/apps/*")
        assert pattern.implies(CodeSource("file:/apps/App.class"))
        assert not pattern.implies(CodeSource("file:/apps/sub/App.class"))
        assert not pattern.implies(CodeSource("file:/apps/"))
        assert not pattern.implies(CodeSource("file:/other/App.class"))

    def test_recursive_dash(self):
        pattern = CodeSource("file:/apps/-")
        assert pattern.implies(CodeSource("file:/apps/App.class"))
        assert pattern.implies(CodeSource("file:/apps/a/b/C.class"))
        assert not pattern.implies(CodeSource("file:/appsX/C.class"))

    def test_none_url_matches_everything(self):
        assert CodeSource(None).implies(CodeSource("http://x/y"))
        assert not CodeSource("http://x/*").implies(CodeSource(None))

    def test_none_other_rejected(self):
        assert not CodeSource("file:/x").implies(None)


class TestSigners:
    def test_required_signers_must_be_present(self):
        pattern = CodeSource(None, signers=["alice"])
        assert pattern.implies(CodeSource("u", signers=["alice", "bob"]))
        assert not pattern.implies(CodeSource("u", signers=["bob"]))
        assert not pattern.implies(CodeSource("u"))

    def test_unsigned_pattern_matches_signed_code(self):
        assert CodeSource(None).implies(CodeSource("u", signers=["alice"]))

    def test_equality(self):
        a = CodeSource("u", signers=["x", "y"])
        b = CodeSource("u", signers=["y", "x"])
        assert a == b
        assert hash(a) == hash(b)
        assert a != CodeSource("u")


class TestProtectionDomain:
    def test_static_permissions(self):
        domain = ProtectionDomain(
            CodeSource("http://h/a"),
            Permissions([RuntimePermission("special")]))
        assert domain.implies(RuntimePermission("special"))
        assert not domain.implies(RuntimePermission("other"))

    def test_policy_consulted_dynamically(self):
        class FakePolicy:
            def __init__(self):
                self.granted = False

            def implies(self, domain, permission):
                return self.granted

        policy = FakePolicy()
        domain = ProtectionDomain(CodeSource("u"), policy=policy)
        assert not domain.implies(RuntimePermission("x"))
        policy.granted = True
        assert domain.implies(RuntimePermission("x"))

    def test_system_domain_is_all_powerful(self):
        domain = system_domain()
        assert domain.implies(FilePermission("/anything", "delete"))
        assert domain.implies(RuntimePermission("setUser"))
