"""Policy files: grammar, code-source grants, user grants (Section 5.3)."""

import pytest

from repro.jvm.errors import IllegalArgumentException
from repro.security.codesource import CodeSource, ProtectionDomain
from repro.security.permissions import (
    FilePermission,
    RuntimePermission,
    UserPermission,
)
from repro.security.policy import (
    Policy,
    paper_example_policy,
    parse_policy,
)


class TestParsing:
    def test_minimal_grant(self):
        policy = parse_policy("""
            grant {
                permission RuntimePermission "everywhere";
            };
        """)
        granted = policy.permissions_for_code_source(CodeSource("file:/x"))
        assert granted.implies(RuntimePermission("everywhere"))

    def test_code_base_grant(self):
        policy = parse_policy("""
            grant codeBase "file:/apps/*" {
                permission FilePermission "/data/-", "read,write";
                permission RuntimePermission "setIO";
            };
        """)
        inside = policy.permissions_for_code_source(
            CodeSource("file:/apps/App.class"))
        outside = policy.permissions_for_code_source(
            CodeSource("file:/other/App.class"))
        assert inside.implies(FilePermission("/data/f", "read"))
        assert inside.implies(RuntimePermission("setIO"))
        assert not outside.implies(RuntimePermission("setIO"))

    def test_signed_by_grant(self):
        policy = parse_policy("""
            grant signedBy "alice" {
                permission RuntimePermission "signedOnly";
            };
        """)
        signed = policy.permissions_for_code_source(
            CodeSource("http://h/x", signers=["alice"]))
        unsigned = policy.permissions_for_code_source(
            CodeSource("http://h/x"))
        assert signed.implies(RuntimePermission("signedOnly"))
        assert not unsigned.implies(RuntimePermission("signedOnly"))

    def test_user_grant_separate_from_code(self):
        policy = parse_policy("""
            grant user "alice" {
                permission FilePermission "/home/alice/-", "read";
            };
        """)
        assert policy.permissions_for_user("alice").implies(
            FilePermission("/home/alice/x", "read"))
        assert not policy.permissions_for_user("bob").implies(
            FilePermission("/home/alice/x", "read"))
        # A user grant never applies to code sources directly.
        assert not policy.permissions_for_code_source(
            CodeSource("file:/x")).implies(
                FilePermission("/home/alice/x", "read"))

    def test_comments_and_keystore(self):
        policy = parse_policy("""
            // line comment
            keystore "ignored.jks";
            /* block
               comment */
            grant { permission UserPermission; };
        """)
        assert policy.permissions_for_code_source(
            CodeSource("u")).implies(UserPermission())

    def test_permission_without_actions(self):
        policy = parse_policy("""
            grant { permission RuntimePermission "exitVM"; };
        """)
        assert policy.permissions_for_code_source(None) is not None

    def test_syntax_errors(self):
        for bad in (
                'grant { permission RuntimePermission "x" }',  # missing ;
                'grant { permission } ;',
                'grant codeBase { };',
                'bogus;',
                'grant { permission RuntimePermission "x"; ',
                '"dangling string',
                '/* unterminated',
        ):
            with pytest.raises(IllegalArgumentException):
                parse_policy(bad)

    def test_unknown_selector(self):
        with pytest.raises(IllegalArgumentException):
            parse_policy('grant planet "mars" { };')


class TestEvaluation:
    def test_multiple_grants_accumulate(self):
        policy = parse_policy("""
            grant codeBase "file:/apps/-" {
                permission RuntimePermission "a";
            };
            grant codeBase "file:/apps/sub/*" {
                permission RuntimePermission "b";
            };
        """)
        deep = policy.permissions_for_code_source(
            CodeSource("file:/apps/sub/X.class"))
        shallow = policy.permissions_for_code_source(
            CodeSource("file:/apps/X.class"))
        assert deep.implies(RuntimePermission("a"))
        assert deep.implies(RuntimePermission("b"))
        assert shallow.implies(RuntimePermission("a"))
        assert not shallow.implies(RuntimePermission("b"))

    def test_domain_implies_via_policy(self):
        policy = parse_policy("""
            grant codeBase "file:/apps/*" {
                permission RuntimePermission "granted";
            };
        """)
        domain = ProtectionDomain(CodeSource("file:/apps/A.class"),
                                  policy=policy)
        assert domain.implies(RuntimePermission("granted"))
        assert not domain.implies(RuntimePermission("other"))

    def test_programmatic_add_grant(self):
        policy = Policy()
        policy.add_grant([RuntimePermission("x")], code_base="file:/a/*")
        policy.add_grant([FilePermission("/h/-", "read")], user="alice")
        assert policy.permissions_for_code_source(
            CodeSource("file:/a/B.class")).implies(RuntimePermission("x"))
        assert policy.permissions_for_user("alice").implies(
            FilePermission("/h/f", "read"))

    def test_refresh_replaces_entries(self):
        policy = parse_policy(
            'grant { permission RuntimePermission "old"; };')
        policy.refresh_from(
            'grant { permission RuntimePermission "new"; };')
        granted = policy.permissions_for_code_source(None)
        assert granted.implies(RuntimePermission("new"))
        assert not granted.implies(RuntimePermission("old"))


class TestPaperExample:
    """The Section 5.3 example policy parses into the four rules."""

    def test_rule_1_local_apps_exercise_user_permissions(self):
        policy = paper_example_policy()
        local = policy.permissions_for_code_source(
            CodeSource("file:/usr/local/java/tools/ls/Ls.class"))
        remote = policy.permissions_for_code_source(
            CodeSource("http://evil.example.com/Applet.class"))
        assert local.implies(UserPermission())
        assert not remote.implies(UserPermission())

    def test_rule_2_backup_reads_all_files(self):
        policy = paper_example_policy()
        backup = policy.permissions_for_code_source(
            CodeSource("file:/usr/local/java/apps/backup/Backup.class"))
        assert backup.implies(FilePermission("/home/alice/x", "read"))
        assert backup.implies(FilePermission("/etc/motd", "read"))
        assert not backup.implies(FilePermission("/home/alice/x", "write"))

    def test_rules_3_and_4_user_home_grants(self):
        policy = paper_example_policy()
        alice = policy.permissions_for_user("alice")
        bob = policy.permissions_for_user("bob")
        assert alice.implies(
            FilePermission("/home/alice/notes.txt", "read"))
        assert alice.implies(
            FilePermission("/home/alice/sub/deep.txt", "write"))
        assert not alice.implies(
            FilePermission("/home/bob/todo.txt", "read"))
        assert bob.implies(FilePermission("/home/bob/todo.txt", "delete"))
        assert not bob.implies(
            FilePermission("/home/alice/notes.txt", "read"))


class TestRendering:
    def test_render_parse_roundtrip_of_paper_policy(self):
        original = paper_example_policy()
        rendered = original.render()
        reparsed = parse_policy(rendered)
        probes = [
            (CodeSource("file:/usr/local/java/tools/ls/Ls.class"),
             UserPermission()),
            (CodeSource("file:/usr/local/java/apps/backup/Backup.class"),
             FilePermission("/anything", "read")),
        ]
        for code_source, permission in probes:
            assert original.permissions_for_code_source(
                code_source).implies(permission) == \
                reparsed.permissions_for_code_source(
                    code_source).implies(permission)
        for user in ("alice", "bob"):
            target = FilePermission(f"/home/{user}/f", "read")
            assert original.permissions_for_user(user).implies(target) == \
                reparsed.permissions_for_user(user).implies(target)

    def test_render_all_permission(self):
        policy = Policy()
        from repro.security.permissions import AllPermission
        policy.add_grant([AllPermission()], code_base="file:/trusted/*")
        rendered = policy.render()
        assert "permission AllPermission;" in rendered
        reparsed = parse_policy(rendered)
        assert reparsed.permissions_for_code_source(
            CodeSource("file:/trusted/X.class")).implies(
                RuntimePermission("anything"))

    def test_render_empty_policy(self):
        assert Policy().render() == ""
        assert parse_policy(Policy().render()).entries() == []


from hypothesis import given, settings, strategies as st  # noqa: E402

_paths = st.lists(st.text(alphabet=st.sampled_from("abcd"), min_size=1,
                          max_size=4), min_size=1, max_size=3).map(
                              lambda parts: "/" + "/".join(parts))
_actions = st.lists(st.sampled_from(["read", "write", "delete"]),
                    min_size=1, max_size=3, unique=True).map(",".join)
_users = st.sampled_from(["alice", "bob", "carol"])


@given(grants=st.lists(st.tuples(_users, _paths, _actions),
                       min_size=1, max_size=6))
@settings(max_examples=50, deadline=None)
def test_user_grant_render_roundtrip_property(grants):
    policy = Policy()
    for user, path, actions in grants:
        policy.add_grant([FilePermission(path, actions)], user=user)
    reparsed = parse_policy(policy.render())
    for user, path, actions in grants:
        probe = FilePermission(path, actions.split(",")[0])
        assert reparsed.permissions_for_user(user).implies(probe)
