"""Coherence of the epoch-invalidated permission-decision cache.

The fast path memoizes at three layers (policy resolution, per-domain
decisions, the walk's identity dedupe); the invariant these tests pin
down is that *no stale grant is ever honored*: any check beginning after
``refresh_from``/``add_grant``/``setUser`` completes sees the new truth
on its very first walk — epoch validation, never TTLs.
"""

import threading

import pytest

from repro.io.file import read_text
from repro.jvm.errors import AccessControlException, IllegalArgumentException
from repro.security import access, cache
from repro.security.codesource import CodeSource, ProtectionDomain
from repro.security.permissions import (
    FilePermission,
    Permissions,
    RuntimePermission,
    SocketPermission,
)
from repro.security.policy import parse_policy

READ_ALICE = FilePermission("/home/alice/notes.txt", "read")

GRANTING = """
grant codeBase "file:/apps/editor/*" {
    permission FilePermission "/home/alice/-", "read,write";
};
"""

REVOKED = """
grant codeBase "file:/apps/editor/*" {
    permission FilePermission "/tmp/-", "read";
};
"""

EDITOR_SOURCE = CodeSource("file:/apps/editor/Editor.class")


def editor_domain(policy):
    return policy.domain_for_code_source(EDITOR_SOURCE)


class TestPolicyEpoch:
    def test_refresh_revokes_on_the_very_next_check(self):
        policy = parse_policy(GRANTING)
        domain = editor_domain(policy)
        with access.stack_frame(domain):
            access.check_permission(READ_ALICE)     # warm every memo
            access.check_permission(READ_ALICE)     # served from memo
            policy.refresh_from(REVOKED)
            with pytest.raises(AccessControlException):
                access.check_permission(READ_ALICE)

    def test_refresh_grants_on_the_very_next_check(self):
        policy = parse_policy(REVOKED)
        domain = editor_domain(policy)
        with access.stack_frame(domain):
            with pytest.raises(AccessControlException):
                access.check_permission(READ_ALICE)  # warm the deny memo
            policy.refresh_from(GRANTING)
            access.check_permission(READ_ALICE)      # no exception

    def test_add_grant_visible_immediately(self):
        policy = parse_policy(REVOKED)
        domain = editor_domain(policy)
        with access.stack_frame(domain):
            with pytest.raises(AccessControlException):
                access.check_permission(READ_ALICE)
            policy.add_grant([FilePermission("/home/alice/-", "read")],
                             code_base="file:/apps/editor/*")
            access.check_permission(READ_ALICE)

    def test_epoch_bumps_on_every_mutation(self):
        policy = parse_policy(GRANTING)
        before = policy.epoch
        policy.add_grant([RuntimePermission("x")], code_base="file:/y/*")
        assert policy.epoch == before + 1
        policy.refresh_from(GRANTING)
        assert policy.epoch == before + 2

    def test_cached_resolution_is_read_only(self):
        """Sharing the memoized Permissions must fail loudly on mutation,
        not silently corrupt every future check."""
        policy = parse_policy(GRANTING)
        granted = policy.permissions_for_code_source(EDITOR_SOURCE)
        assert granted is policy.permissions_for_code_source(EDITOR_SOURCE)
        with pytest.raises(IllegalArgumentException):
            granted.add(RuntimePermission("sneaky"))

    def test_disabled_cache_still_coherent(self):
        with cache.disabled():
            policy = parse_policy(GRANTING)
            domain = editor_domain(policy)
            with access.stack_frame(domain):
                access.check_permission(READ_ALICE)
                policy.refresh_from(REVOKED)
                with pytest.raises(AccessControlException):
                    access.check_permission(READ_ALICE)


class TestUserPathCoherence:
    """Section 5.3: the (user, epoch)-memoized user grants."""

    POLICY = """
    grant codeBase "file:/apps/-" {
        permission UserPermission;
    };
    grant user "alice" {
        permission FilePermission "/home/alice/-", "read,write";
    };
    grant user "bob" {
        permission FilePermission "/home/bob/-", "read,write";
    };
    """

    def test_user_switch_seen_by_next_check(self):
        policy = parse_policy(self.POLICY)
        running_user = ["alice"]
        previous = access.user_permission_resolver
        access.user_permission_resolver = \
            lambda: policy.permissions_for_user(running_user[0])
        try:
            domain = policy.domain_for_code_source(
                CodeSource("file:/apps/editor/Editor.class"))
            with access.stack_frame(domain):
                access.check_permission(READ_ALICE)   # alice: granted
                access.check_permission(READ_ALICE)   # memo hit
                running_user[0] = "bob"               # the setUser moment
                with pytest.raises(AccessControlException):
                    access.check_permission(READ_ALICE)
                access.check_permission(
                    FilePermission("/home/bob/x", "read"))
        finally:
            access.user_permission_resolver = previous

    def test_user_grant_refresh_seen_by_next_check(self):
        policy = parse_policy(self.POLICY)
        previous = access.user_permission_resolver
        access.user_permission_resolver = \
            lambda: policy.permissions_for_user("alice")
        try:
            domain = policy.domain_for_code_source(
                CodeSource("file:/apps/editor/Editor.class"))
            with access.stack_frame(domain):
                access.check_permission(READ_ALICE)
                policy.refresh_from(self.POLICY.replace(
                    "/home/alice/-", "/home/alice/public/-"))
                with pytest.raises(AccessControlException):
                    access.check_permission(READ_ALICE)
        finally:
            access.user_permission_resolver = previous

    def test_set_user_mid_application(self, host, register_app):
        """Full-stack Section 5.2: the running user of a live application
        is reset while it runs; its next check must see the new user's
        grants (no stale user Permissions honored)."""
        alice = host.vm.user_database.lookup("alice")
        bob = host.vm.user_database.lookup("bob")
        phase1_done = threading.Event()
        switched = threading.Event()
        outcome = {}

        def main(jclass, ctx, args):
            alice_perm = FilePermission("/home/alice/diary.txt", "read")
            bob_perm = FilePermission("/home/bob/diary.txt", "read")
            access.check_permission(alice_perm)      # alice: user grant
            access.check_permission(alice_perm)      # memo hit
            phase1_done.set()
            assert switched.wait(10)
            try:
                access.check_permission(alice_perm)
                outcome["stale_grant_honored"] = True
            except AccessControlException:
                outcome["stale_grant_honored"] = False
            access.check_permission(bob_perm)        # bob: user grant
            return 0

        app = host.exec(register_app("UserSwitch", main), [], user=alice)
        assert phase1_done.wait(10)
        app.set_user(bob)   # host thread: fully trusted, like login's
        switched.set()      # do_privileged'd setUser (Section 5.2)
        assert app.wait_for(10) == 0
        assert outcome["stale_grant_honored"] is False


class TestStaticPermissionDomains:
    """Section 6.3 appletviewer domains: static (delegated) grants are
    bound at class-definition time and must be unaffected by policy epoch
    churn."""

    def make_applet_domain(self, policy):
        delegated = Permissions(
            [SocketPermission("applet-host:1-65535", "connect,resolve")])
        return ProtectionDomain(
            CodeSource("http://applet-host/classes/Game.class"),
            permissions=delegated, policy=policy, name="applet:Game")

    def test_static_grants_survive_epoch_bumps(self):
        policy = parse_policy(GRANTING)
        domain = self.make_applet_domain(policy)
        connect_back = SocketPermission("applet-host:6000", "connect")
        with access.stack_frame(domain):
            access.check_permission(connect_back)    # static grant, warm
            for _ in range(3):
                policy.refresh_from(REVOKED)         # epoch churn
                access.check_permission(connect_back)
            with pytest.raises(AccessControlException):
                access.check_permission(READ_ALICE)  # never granted

    def test_policy_changes_still_reach_static_domains(self):
        """The memo must revalidate the *policy* half too: a grant added
        for the applet's code source shows up on the next check."""
        policy = parse_policy(GRANTING)
        domain = self.make_applet_domain(policy)
        with access.stack_frame(domain):
            with pytest.raises(AccessControlException):
                access.check_permission(READ_ALICE)
            policy.add_grant([FilePermission("/home/alice/-", "read")],
                             code_base="http://applet-host/classes/*")
            access.check_permission(READ_ALICE)

    def test_post_definition_static_add_is_seen(self):
        """The static collection's version is part of the memo stamp."""
        policy = parse_policy(REVOKED)
        domain = self.make_applet_domain(policy)
        with access.stack_frame(domain):
            with pytest.raises(AccessControlException):
                access.check_permission(READ_ALICE)
            domain.static_permissions.add(
                FilePermission("/home/alice/-", "read"))
            access.check_permission(READ_ALICE)


class TestWalkDedupe:
    def test_repeated_denying_domain_still_denies(self):
        policy = parse_policy(REVOKED)
        domain = editor_domain(policy)
        with access.stack_frame(domain):
            with access.stack_frame(domain):
                with access.stack_frame(domain):
                    with pytest.raises(AccessControlException):
                        access.check_permission(READ_ALICE)

    def test_distinct_denying_domain_below_granting_one(self):
        """Dedupe is by identity only — a *different* domain lower in the
        stack is still checked and still poisons the walk."""
        policy = parse_policy(GRANTING)
        granting = editor_domain(policy)
        denying = ProtectionDomain(CodeSource("file:/other/X.class"),
                                   Permissions(), name="denying")
        with access.stack_frame(denying):
            with access.stack_frame(granting):
                with pytest.raises(AccessControlException):
                    access.check_permission(READ_ALICE)

    def test_interned_domains_shared_across_app_loaders(self, host):
        """ClassLoader.define_class interns one domain per
        (code_source, policy): two applications defining classes from the
        same code source share one domain, so memo hit rates compound."""
        from repro.core.reload import ApplicationClassLoader
        from repro.jvm.classloading import ClassMaterial

        vm = host.vm
        source = CodeSource("file:/usr/local/java/apps/shared/S.class")
        material = ClassMaterial("apps.Shared", code_source=source)
        material.members["main"] = lambda jclass, ctx, args: 0
        vm.registry.register(material, replace=True)

        loader_a = ApplicationClassLoader(vm.boot_loader, "a")
        loader_b = ApplicationClassLoader(vm.boot_loader, "b")
        class_a = loader_a.define_class(material)
        class_b = loader_b.define_class(material)
        assert class_a is not class_b          # per-loader identity intact
        assert class_a.protection_domain is class_b.protection_domain
        assert vm.policy.interned_domain_count() >= 1


class TestConcurrencySmoke:
    def test_concurrent_checks_during_refresh(self):
        """Threads hammer a permission granted by *every* policy version
        while another thread refreshes in a loop: no check may ever fail,
        and nothing may crash."""
        policy = parse_policy(GRANTING)
        domain = editor_domain(policy)
        always_granted = FilePermission("/home/alice/a.txt", "read")
        stop = threading.Event()
        failures = []

        def checker():
            with access.stack_frame(domain):
                while not stop.is_set():
                    try:
                        access.check_permission(always_granted)
                    except Exception as exc:  # noqa: BLE001
                        failures.append(exc)
                        return

        def refresher():
            variant = GRANTING + REVOKED  # both keep the editor grant
            for index in range(200):
                policy.refresh_from(variant if index % 2 else GRANTING)

        threads = [threading.Thread(target=checker) for _ in range(4)]
        for thread in threads:
            thread.start()
        refresher()
        stop.set()
        for thread in threads:
            thread.join(10)
        assert not failures, failures[:3]

    def test_refresh_result_coherent_after_join(self):
        """Once the refresher is done and checkers restart, the final
        policy is what every walk sees."""
        policy = parse_policy(GRANTING)
        domain = editor_domain(policy)
        for _ in range(50):
            policy.refresh_from(REVOKED)
            policy.refresh_from(GRANTING)
        policy.refresh_from(REVOKED)
        with access.stack_frame(domain):
            with pytest.raises(AccessControlException):
                access.check_permission(READ_ALICE)


class TestCacheTelemetry:
    def test_counters_and_proc_surface(self, host):
        vm = host.vm
        policy = vm.policy
        domain = policy.domain_for_code_source(
            CodeSource("file:/usr/local/java/apps/probe/P.class"))
        probe = FilePermission("/tmp/probe.txt", "read")
        with access.stack_frame(domain):
            access.check_permission(probe)           # miss, then...
            for _ in range(5):
                access.check_permission(probe)       # ...hits
        metrics = vm.telemetry.metrics
        assert metrics.total("security.cache.hit", layer="domain") >= 5
        assert metrics.total("security.cache.miss", layer="domain") >= 1

        text = read_text(host.initial.context(), "/proc/security/cache")
        assert "hits.domain\t" in text
        assert "interned_domains\t" in text
        assert f"policy_epoch\t{policy.epoch}" in text

        vmstat = read_text(host.initial.context(), "/proc/vmstat")
        assert "security.cache.hits\t" in vmstat
        assert "security.cache.invalidations\t" in vmstat

    def test_invalidation_counter_counts_mutations(self, host):
        policy = host.vm.policy
        metrics = host.vm.telemetry.metrics
        before = metrics.total("security.cache.invalidation")
        policy.add_grant([RuntimePermission("probe")],
                         code_base="file:/probe/*")
        assert metrics.total("security.cache.invalidation") == before + 1
