"""Experiment S1: the four example policy rules of Section 5.3, enforced
end-to-end in the multi-processing VM with real files and real users.

    1. All local applications can exercise their respective running users'
       permissions.
    2. The backup application can read all files.
    3. User Alice can access all files in /home/alice.
    4. User Bob can access all files in /home/bob.
"""

import pytest

from repro.io.file import read_text, write_text
from repro.jvm.errors import SecurityException


def run_reader(mvm, register_app, capture, path, user_name,
               code_source="local"):
    """Launch an app that reads ``path``, running as ``user_name``."""
    out = capture()

    def main(jclass, ctx, args):
        try:
            ctx.stdout.print(read_text(ctx, args[0]))
        except SecurityException as exc:
            ctx.stdout.println(f"DENIED {type(exc).__name__}")
        return 0

    class_name = register_app(f"Reader{user_name.title()}", main,
                              code_source=code_source)
    user = mvm.vm.user_database.lookup(user_name)
    app = mvm.exec(class_name, [path], user=user, stdout=out.stream)
    assert app.wait_for(5) == 0
    return out.text


class TestRule1LocalAppsExerciseUserPermissions:
    def test_local_app_reads_running_users_files(self, host, register_app,
                                                 capture):
        text = run_reader(host, register_app, capture,
                          "/home/alice/notes.txt", "alice")
        assert "private notes" in text

    def test_remote_code_gets_no_user_permissions(self, host, register_app,
                                                  capture):
        """Same user, but the code's origin is remote: no UserPermission,
        so Alice's grants do not apply."""
        text = run_reader(host, register_app, capture,
                          "/home/alice/notes.txt", "alice",
                          code_source="http://remote.example.com/R.class")
        assert "DENIED" in text

    def test_user_permissions_follow_the_running_user(self, host,
                                                      register_app, capture):
        """The *same* local program run by Bob cannot read Alice's files
        (the Section 4 motivation: "When run by Alice, it should be
        allowed to read Alice's files, while when run by Bob it
        shouldn't")."""
        denied = run_reader(host, register_app, capture,
                            "/home/alice/notes.txt", "bob")
        assert "DENIED" in denied
        allowed = run_reader(host, register_app, capture,
                             "/home/bob/todo.txt", "bob")
        assert "todo" in allowed


class TestRule2BackupReadsAllFiles:
    def test_backup_reads_both_homes(self, host, capture):
        out = capture()
        app = host.exec("apps.Backup",
                        ["/home/alice/notes.txt", "/home/bob/todo.txt"],
                        stdout=out.stream, stderr=out.stream)
        assert app.wait_for(5) == 0
        assert "backed up 2 file(s)" in out.text

    def test_backup_content_lands_in_var_backup(self, host, capture):
        out = capture()
        app = host.exec("apps.Backup", ["/home/alice/notes.txt"],
                        stdout=out.stream, stderr=out.stream)
        app.wait_for(5)
        ctx = host.initial.context()
        assert "private notes" in read_text(
            ctx, "/var/backup/home_alice_notes.txt")

    def test_backup_cannot_write_elsewhere(self, host, register_app,
                                           capture):
        """Rule 2 grants *read* everywhere, not write."""
        out = capture()

        def main(jclass, ctx, args):
            try:
                write_text(ctx, "/etc/pwned", "data")
                ctx.stdout.println("WROTE")
            except SecurityException:
                ctx.stdout.println("DENIED")
            return 0

        class_name = register_app(
            "EvilBackup", main,
            code_source="file:/usr/local/java/apps/backup/Evil.class")
        app = host.exec(class_name, [], stdout=out.stream)
        app.wait_for(5)
        assert "DENIED" in out.text


class TestRules3And4UserHomes:
    def test_alice_full_access_to_own_home(self, host, register_app,
                                           capture):
        out = capture()

        def main(jclass, ctx, args):
            write_text(ctx, "/home/alice/scratch.txt", "scratch")
            ctx.stdout.println(read_text(ctx, "/home/alice/scratch.txt"))
            from repro.io.file import JFile
            JFile(ctx, "/home/alice/scratch.txt").delete()
            ctx.stdout.println("cycle-done")
            return 0

        class_name = register_app("AliceHome", main)
        alice = host.vm.user_database.lookup("alice")
        app = host.exec(class_name, [], user=alice, stdout=out.stream,
                        stderr=out.stream)
        assert app.wait_for(5) == 0
        assert "scratch" in out.text
        assert "cycle-done" in out.text

    def test_cross_home_denied_both_directions(self, host, register_app,
                                               capture):
        for user_name, victim in (("alice", "/home/bob/todo.txt"),
                                  ("bob", "/home/alice/notes.txt")):
            text = run_reader(host, register_app, capture, victim,
                              user_name)
            assert "DENIED" in text, (user_name, victim)

    def test_null_user_has_no_home_grants(self, host, register_app,
                                          capture):
        """The bootstrap null user has no policy grants at all."""
        out = capture()

        def main(jclass, ctx, args):
            try:
                read_text(ctx, "/home/alice/notes.txt")
                ctx.stdout.println("READ")
            except SecurityException:
                ctx.stdout.println("DENIED")
            return 0

        class_name = register_app("NobodyReader", main)
        app = host.exec(class_name, [], stdout=out.stream)
        app.wait_for(5)
        assert "DENIED" in out.text
