"""The system security manager's policy (Section 5.6): thread/thread-group
ancestry rules, with permission fallback."""

import pytest

from repro.jvm.classloading import ClassMaterial
from repro.jvm.errors import SecurityException
from repro.jvm.threads import JThread, ThreadGroup
from repro.security.codesource import CodeSource
from repro.security.sysmanager import SystemSecurityManager


@pytest.fixture
def sm(vm):
    manager = SystemSecurityManager()
    vm.set_security_manager(manager)
    return manager


def untrusted_runner(vm, fn, name="demo.Untrusted"):
    """Run ``fn`` under an untrusted protection domain on this thread."""
    material = ClassMaterial(
        name, code_source=CodeSource(f"file:/untrusted/{name}.class"))
    material.members["run"] = lambda jclass, *args: fn(*args)
    vm.registry.register(material, replace=True)
    return vm.boot_loader.load_class(name)


def parked_thread(group, duration=5.0):
    thread = JThread(target=lambda: JThread.sleep(duration), group=group)
    thread.start()
    return thread


class TestThreadAccess:
    def test_ancestor_may_access_descendant(self, vm, sm):
        """Section 5.6 rule: ancestor thread groups grant access."""
        parent_group = ThreadGroup(vm.main_group, "parent")
        child_group = ThreadGroup(parent_group, "child")
        outcome = []

        def parent_body():
            victim = parked_thread(child_group)
            jclass = untrusted_runner(vm, victim.interrupt)
            try:
                jclass.invoke("run")  # untrusted code, but ancestor group
                outcome.append("allowed")
            except SecurityException:
                outcome.append("denied")
            victim.stop()

        runner = JThread(target=parent_body, group=parent_group)
        runner.start()
        runner.join(5)
        assert outcome == ["allowed"]

    def test_sibling_denied_without_permission(self, vm, sm):
        group_a = ThreadGroup(vm.main_group, "app-a")
        group_b = ThreadGroup(vm.main_group, "app-b")
        outcome = []

        def attacker_body():
            victim = parked_thread(group_b)
            jclass = untrusted_runner(vm, victim.stop)
            try:
                jclass.invoke("run")
                outcome.append("allowed")
            except SecurityException:
                outcome.append("denied")
            # cleanup with trusted (host-library) credentials
            victim.stop()

        attacker = JThread(target=attacker_body, group=group_a)
        attacker.start()
        attacker.join(5)
        assert outcome == ["denied"]

    def test_self_interrupt_always_allowed(self, vm, sm):
        group = ThreadGroup(vm.main_group, "self")
        outcome = []

        def body():
            JThread.current().interrupt()
            outcome.append(JThread.current().is_interrupted(clear=True))

        thread = JThread(target=body, group=group)
        thread.start()
        thread.join(5)
        assert outcome == [True]

    def test_trusted_code_may_cross_groups(self, vm, sm):
        """Trusted (boot) code holds AllPermission, so the permission
        fallback applies."""
        group_a = ThreadGroup(vm.main_group, "a")
        group_b = ThreadGroup(vm.main_group, "b")
        outcome = []

        def body():
            victim = parked_thread(group_b)
            try:
                victim.interrupt()  # trusted library frame: no domain
                outcome.append("allowed")
            except SecurityException:
                outcome.append("denied")
            victim.stop()

        thread = JThread(target=body, group=group_a)
        thread.start()
        thread.join(5)
        assert outcome == ["allowed"]


class TestThreadGroupAccess:
    def test_thread_creation_confined_to_own_subtree(self, vm, sm):
        """Section 5.1: threads may only be created in one's own group."""
        group_a = ThreadGroup(vm.main_group, "a")
        group_b = ThreadGroup(vm.main_group, "b")
        outcome = []

        def body():
            def spawn_in_b():
                JThread(target=lambda: None, group=group_b)

            jclass = untrusted_runner(vm, spawn_in_b)
            try:
                jclass.invoke("run")
                outcome.append("allowed")
            except SecurityException:
                outcome.append("denied")

        thread = JThread(target=body, group=group_a)
        thread.start()
        thread.join(5)
        assert outcome == ["denied"]

    def test_creation_in_own_group_allowed(self, vm, sm):
        group = ThreadGroup(vm.main_group, "own")
        outcome = []

        def body():
            def spawn_here():
                JThread(target=lambda: None)

            jclass = untrusted_runner(vm, spawn_here)
            try:
                jclass.invoke("run")
                outcome.append("allowed")
            except SecurityException:
                outcome.append("denied")

        thread = JThread(target=body, group=group)
        thread.start()
        thread.join(5)
        assert outcome == ["allowed"]

    def test_host_threads_are_trusted(self, vm, sm):
        # Unattached host threads drive the VM like the native launcher.
        group = ThreadGroup(vm.main_group, "any")
        victim = parked_thread(group)
        victim.interrupt()
        victim.stop()
