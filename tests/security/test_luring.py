"""Experiment S2: the luring-attack analysis of Section 5.6.

The paper's example:

    "Consider, for example, an application that is not allowed to read
    files, but wishes to write text to the screen.  In order to do that,
    the Font class needs to read in font characteristics from the file
    system.  Since the Font class is trusted, it has enough privileges to
    read from the file system despite the fact that the application is not
    allowed to do so directly.  However, as soon as the Font class calls
    into application code, like the application security manager, those
    privileges are lost, and file access will be — wrongly — denied."

We reproduce all four steps:

1. the application cannot read the font file directly;
2. the trusted Font class *can* read it on the application's behalf
   (``do_privileged``);
3. privileged system code that calls back into application code loses its
   privileges (the luring-attack protection itself);
4. therefore an *application security manager* invoked from system code
   cannot perform privileged checks — the paper's conclusion that app
   security managers "cannot be used to override behaviors of the system
   security manager".
"""

import pytest

from repro.io.file import read_text
from repro.jvm.classloading import ClassMaterial
from repro.jvm.errors import SecurityException
from repro.lang.context import InvocationContext
from repro.security import access
from repro.security.codesource import CodeSource
from repro.security.sysmanager import SystemSecurityManager

FONT_FILE = "/usr/lib/fonts/default.fnt"


@pytest.fixture
def setup(vm):
    """A trusted Font class and an untrusted application class."""
    vm.set_security_manager(SystemSecurityManager())

    font = ClassMaterial("java.awt.Font")  # boot class path: trusted

    @font.member
    def load_metrics(jclass, ctx):
        """Trusted code reading the font file on the caller's behalf."""
        return access.do_privileged(lambda: read_text(ctx, FONT_FILE))

    @font.member
    def load_metrics_via_callback(jclass, ctx, callback_class):
        """Trusted code that consults application code *inside* its
        privileged section (the luring hazard)."""
        def action():
            # The application "security manager" callback joins the stack
            # here, inside the privileged region.
            callback_class.invoke("check", ctx)
            return read_text(ctx, FONT_FILE)
        return access.do_privileged(action)

    app = ClassMaterial(
        "apps.TextApp",
        code_source=CodeSource("file:/untrusted/TextApp.class"))

    @app.member
    def read_font_directly(jclass, ctx):
        return read_text(ctx, FONT_FILE)

    @app.member
    def draw_text(jclass, ctx, font_class):
        return font_class.invoke("load_metrics", ctx)

    @app.member
    def draw_text_with_app_sm(jclass, ctx, font_class, callback_class):
        return font_class.invoke("load_metrics_via_callback", ctx,
                                 callback_class)

    app_sm = ClassMaterial(
        "apps.AppSecurityManager",
        code_source=CodeSource("file:/untrusted/AppSM.class"))

    @app_sm.member
    def check(jclass, ctx):
        """An application security manager doing its *own* file check —
        unprivileged code on the stack."""
        read_text(ctx, FONT_FILE)

    for material in (font, app, app_sm):
        vm.registry.register(material)
    loader = vm.boot_loader
    return {
        "ctx": InvocationContext(vm, loader),
        "font": loader.load_class("java.awt.Font"),
        "app": loader.load_class("apps.TextApp"),
        "app_sm": loader.load_class("apps.AppSecurityManager"),
    }


def test_application_cannot_read_font_file_directly(setup):
    with pytest.raises(SecurityException):
        setup["app"].invoke("read_font_directly", setup["ctx"])


def test_trusted_font_class_reads_on_behalf_of_application(setup):
    """Step 2: do_privileged lets the trusted Font code act despite the
    unprivileged application on the stack."""
    metrics = setup["app"].invoke("draw_text", setup["ctx"], setup["font"])
    assert "FONT default" in metrics


def test_privileges_lost_when_calling_application_security_manager(setup):
    """Steps 3-4: the Font class calling into the application security
    manager loses its privileges; "file access will be — wrongly —
    denied"."""
    with pytest.raises(SecurityException):
        setup["app"].invoke("draw_text_with_app_sm", setup["ctx"],
                            setup["font"], setup["app_sm"])


def test_callback_alone_cannot_read_either(setup):
    """Sanity: the application security manager has no power of its own."""
    with pytest.raises(SecurityException):
        setup["app_sm"].invoke("check", setup["ctx"])
