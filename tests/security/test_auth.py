"""User accounts and authentication (Section 5.2)."""

import pytest

from repro.jvm.errors import (
    AuthenticationException,
    IllegalArgumentException,
)
from repro.security.auth import (
    NULL_USER,
    SYSTEM_USER,
    JavaUser,
    UserDatabase,
    standard_user_database,
)


@pytest.fixture
def db():
    database = UserDatabase()
    database.add_user("alice", "wonderland", full_name="Alice")
    return database


class TestAccounts:
    def test_add_and_lookup(self, db):
        user = db.lookup("alice")
        assert user.name == "alice"
        assert user.home == "/home/alice"
        assert user.full_name == "Alice"
        assert "alice" in db
        assert db.user_names() == ["alice"]

    def test_duplicate_rejected(self, db):
        with pytest.raises(IllegalArgumentException):
            db.add_user("alice", "again")

    def test_empty_name_rejected(self, db):
        with pytest.raises(IllegalArgumentException):
            db.add_user("", "pw")

    def test_remove(self, db):
        db.remove_user("alice")
        assert "alice" not in db

    def test_no_plaintext_stored(self, db):
        account = db._accounts["alice"]
        assert b"wonderland" != account.digest
        assert "wonderland" not in repr(account.__dict__)


class TestAuthentication:
    def test_success(self, db):
        user = db.authenticate("alice", "wonderland")
        assert user == db.lookup("alice")

    def test_wrong_password(self, db):
        with pytest.raises(AuthenticationException) as info:
            db.authenticate("alice", "guess")
        assert "incorrect" in str(info.value)

    def test_unknown_user_same_message(self, db):
        """Failure must not reveal whether the account exists."""
        try:
            db.authenticate("alice", "guess")
        except AuthenticationException as exc:
            wrong_pw = str(exc)
        try:
            db.authenticate("mallory", "guess")
        except AuthenticationException as exc:
            unknown = str(exc)
        assert wrong_pw == unknown

    def test_set_password(self, db):
        db.set_password("alice", "newpass")
        with pytest.raises(AuthenticationException):
            db.authenticate("alice", "wonderland")
        assert db.authenticate("alice", "newpass")

    def test_disabled_account(self, db):
        db.disable("alice")
        with pytest.raises(AuthenticationException):
            db.authenticate("alice", "wonderland")

    def test_lockout_after_failures(self):
        database = UserDatabase(max_failed_attempts=3)
        database.add_user("bob", "builder")
        for _ in range(3):
            with pytest.raises(AuthenticationException):
                database.authenticate("bob", "wrong")
        # Correct password no longer works: the account is locked.
        with pytest.raises(AuthenticationException):
            database.authenticate("bob", "builder")

    def test_success_resets_failure_count(self):
        database = UserDatabase(max_failed_attempts=3)
        database.add_user("bob", "builder")
        for _ in range(2):
            with pytest.raises(AuthenticationException):
                database.authenticate("bob", "wrong")
        database.authenticate("bob", "builder")
        for _ in range(2):
            with pytest.raises(AuthenticationException):
                database.authenticate("bob", "wrong")
        assert database.authenticate("bob", "builder")


class TestWellKnownUsers:
    def test_null_user_for_bootstrapping(self):
        assert NULL_USER.name == "nobody"
        assert SYSTEM_USER.name == "system"
        assert str(NULL_USER) == "nobody"

    def test_java_user_is_value_object(self):
        assert JavaUser("x", "/h") == JavaUser("x", "/h")
        assert hash(JavaUser("x", "/h")) == hash(JavaUser("x", "/h"))

    def test_standard_database(self):
        database = standard_user_database()
        assert database.authenticate("alice", "wonderland")
        assert database.authenticate("bob", "builder")
