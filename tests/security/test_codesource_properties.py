"""Property-based tests for code-source matching and authentication."""

from hypothesis import given, settings, strategies as st

from repro.security.auth import UserDatabase
from repro.security.codesource import CodeSource
from repro.jvm.errors import AuthenticationException

segment = st.text(alphabet=st.sampled_from("abcxyz"), min_size=1,
                  max_size=6)
url_path = st.lists(segment, min_size=1, max_size=4).map("/".join)


@given(path=url_path)
@settings(max_examples=80, deadline=None)
def test_exact_url_matches_itself(path):
    url = f"file:/{path}"
    assert CodeSource(url).implies(CodeSource(url))


@given(base=url_path, child=segment)
@settings(max_examples=80, deadline=None)
def test_star_matches_direct_children_only(base, child):
    pattern = CodeSource(f"file:/{base}/*")
    assert pattern.implies(CodeSource(f"file:/{base}/{child}"))
    assert not pattern.implies(
        CodeSource(f"file:/{base}/{child}/deeper"))
    assert not pattern.implies(CodeSource(f"file:/{base}"))


@given(base=url_path, tail=url_path)
@settings(max_examples=80, deadline=None)
def test_dash_matches_any_depth(base, tail):
    pattern = CodeSource(f"file:/{base}/-")
    assert pattern.implies(CodeSource(f"file:/{base}/{tail}"))


@given(base=url_path, sibling=segment)
@settings(max_examples=80, deadline=None)
def test_dash_never_matches_prefix_siblings(base, sibling):
    pattern = CodeSource(f"file:/{base}/-")
    # file:/<base>X... is a sibling whose name merely extends the prefix.
    assert not pattern.implies(CodeSource(f"file:/{base}{sibling}"))


@given(required=st.frozensets(segment, max_size=3),
       extra=st.frozensets(segment, max_size=3))
@settings(max_examples=80, deadline=None)
def test_signer_subset_rule(required, extra):
    pattern = CodeSource(None, signers=required)
    code = CodeSource("u", signers=required | extra)
    assert pattern.implies(code)
    if required - extra:
        weak = CodeSource("u", signers=extra)
        assert not pattern.implies(weak)


passwords = st.text(min_size=1, max_size=24)


@given(password=passwords, wrong=passwords)
@settings(max_examples=60, deadline=None)
def test_authentication_accepts_exactly_the_password(password, wrong):
    database = UserDatabase()
    database.add_user("probe", password)
    assert database.authenticate("probe", password).name == "probe"
    if wrong != password:
        try:
            database.authenticate("probe", wrong)
            raised = False
        except AuthenticationException:
            raised = True
        assert raised


@given(password=passwords)
@settings(max_examples=40, deadline=None)
def test_password_change_invalidates_old(password):
    database = UserDatabase()
    database.add_user("probe", password)
    database.set_password("probe", password + "-v2")
    try:
        database.authenticate("probe", password)
        raised = False
    except AuthenticationException:
        raised = True
    assert raised
    assert database.authenticate("probe", password + "-v2")
