"""Property-based tests on the permission lattice."""

from hypothesis import given, settings, strategies as st

from repro.security.permissions import (
    FilePermission,
    Permissions,
    RuntimePermission,
    SocketPermission,
)

segment = st.text(alphabet=st.sampled_from("abcd"), min_size=1, max_size=4)
path = st.lists(segment, min_size=1, max_size=4).map(
    lambda parts: "/" + "/".join(parts))
suffix = st.sampled_from(["", "/*", "/-"])
actions = st.lists(
    st.sampled_from(["read", "write", "delete", "execute"]),
    min_size=1, max_size=4, unique=True).map(",".join)


@given(path=path, suffix=suffix, acts=actions)
@settings(max_examples=100, deadline=None)
def test_file_permission_implies_is_reflexive(path, suffix, acts):
    permission = FilePermission(path + suffix, acts)
    assert permission.implies(permission)


@given(path=path, acts_small=actions, acts_big=actions)
@settings(max_examples=100, deadline=None)
def test_action_superset_monotonicity(path, acts_small, acts_big):
    small = set(acts_small.split(","))
    big = set(acts_big.split(",")) | small
    holder = FilePermission(path, ",".join(sorted(big)))
    target = FilePermission(path, ",".join(sorted(small)))
    assert holder.implies(target)


@given(base=path, child=segment, acts=actions)
@settings(max_examples=100, deadline=None)
def test_recursive_implies_children_and_star(base, child, acts):
    recursive = FilePermission(base + "/-", acts)
    assert recursive.implies(FilePermission(f"{base}/{child}", acts))
    assert recursive.implies(FilePermission(f"{base}/{child}/deep", acts))
    assert recursive.implies(FilePermission(base + "/*", acts))
    star = FilePermission(base + "/*", acts)
    assert star.implies(FilePermission(f"{base}/{child}", acts))
    assert not star.implies(FilePermission(f"{base}/{child}/deep", acts))


@given(permissions=st.lists(
    st.tuples(path, suffix, actions), min_size=1, max_size=8))
@settings(max_examples=60, deadline=None)
def test_collection_implies_each_member(permissions):
    collection = Permissions(
        FilePermission(p + s, a) for p, s, a in permissions)
    for p, s, a in permissions:
        assert collection.implies(FilePermission(p + s, a))


@given(name=st.text(alphabet=st.sampled_from("abc."), min_size=1,
                    max_size=8).filter(
                        lambda n: not n.endswith(".") and ".." not in n
                        and not n.startswith(".")))
@settings(max_examples=100, deadline=None)
def test_runtime_wildcard_dominates(name):
    assert RuntimePermission("*").implies(RuntimePermission(name))
    assert RuntimePermission(name).implies(RuntimePermission(name))


@given(host=st.text(alphabet=st.sampled_from("abcxyz."), min_size=1,
                    max_size=10).filter(
                        lambda h: "." not in (h[0], h[-1]) and ".." not in h),
       low=st.integers(0, 65535), high=st.integers(0, 65535))
@settings(max_examples=100, deadline=None)
def test_socket_range_containment(host, low, high):
    low, high = min(low, high), max(low, high)
    holder = SocketPermission(f"{host}:{low}-{high}", "connect")
    mid = (low + high) // 2
    assert holder.implies(SocketPermission(f"{host}:{mid}", "connect"))
    if low > 0:
        assert not holder.implies(
            SocketPermission(f"{host}:{low - 1}", "connect"))
    if high < 65535:
        assert not holder.implies(
            SocketPermission(f"{host}:{high + 1}", "connect"))
