"""The AccessController stack walk, do_privileged, inherited contexts,
and the paper's user-based combination (Section 5.3)."""

import pytest

from repro.jvm.errors import AccessControlException
from repro.jvm.threads import JThread, ThreadGroup
from repro.security import access
from repro.security.codesource import CodeSource, ProtectionDomain
from repro.security.permissions import (
    Permissions,
    RuntimePermission,
    UserPermission,
)

PERM = RuntimePermission("doSensitiveThing")


def domain(name: str, *permissions) -> ProtectionDomain:
    return ProtectionDomain(CodeSource(f"file:/{name}"),
                            Permissions(permissions), name=name)


TRUSTED = lambda: domain("trusted", PERM)  # noqa: E731
UNTRUSTED = lambda: domain("untrusted")    # noqa: E731


class TestStackWalk:
    def test_empty_stack_is_trusted(self):
        access.check_permission(PERM)  # host code: no exception

    def test_single_granting_domain(self):
        with access.stack_frame(TRUSTED()):
            access.check_permission(PERM)

    def test_single_denying_domain(self):
        with access.stack_frame(UNTRUSTED()):
            with pytest.raises(AccessControlException) as info:
                access.check_permission(PERM)
        assert info.value.permission == PERM

    def test_intersection_all_must_grant(self):
        """The defining property: one untrusted frame anywhere poisons
        the whole stack."""
        with access.stack_frame(TRUSTED()):
            with access.stack_frame(UNTRUSTED()):
                with access.stack_frame(TRUSTED()):
                    with pytest.raises(AccessControlException):
                        access.check_permission(PERM)

    def test_none_frames_are_transparent(self):
        with access.stack_frame(None):
            with access.stack_frame(TRUSTED()):
                access.check_permission(PERM)

    def test_frames_pop_cleanly_after_exception(self):
        try:
            with access.stack_frame(UNTRUSTED()):
                access.check_permission(PERM)
        except AccessControlException:
            pass
        access.check_permission(PERM)  # stack is clean again


class TestDoPrivileged:
    def test_privilege_stops_the_walk(self):
        """Trusted code may act on behalf of untrusted callers."""
        with access.stack_frame(UNTRUSTED()):
            with access.stack_frame(TRUSTED()):
                # without do_privileged: denied by the untrusted caller
                with pytest.raises(AccessControlException):
                    access.check_permission(PERM)
                # with do_privileged: the walk stops at the trusted frame
                access.do_privileged(lambda: access.check_permission(PERM))

    def test_do_privileged_asserts_callers_own_domain_only(self):
        """An untrusted caller cannot gain anything from do_privileged."""
        with access.stack_frame(UNTRUSTED()):
            with pytest.raises(AccessControlException):
                access.do_privileged(
                    lambda: access.check_permission(PERM))

    def test_privilege_lost_when_calling_into_untrusted_code(self):
        """The luring-attack protection: "even privileged system code
        cannot call into unprivileged code without losing its
        privileges" (Section 5.6)."""
        def untrusted_callback():
            with access.stack_frame(UNTRUSTED()):
                access.check_permission(PERM)

        with access.stack_frame(TRUSTED()):
            with pytest.raises(AccessControlException):
                access.do_privileged(untrusted_callback)

    def test_do_privileged_with_bounding_context(self):
        context = access.AccessControlContext((UNTRUSTED(),))
        with access.stack_frame(TRUSTED()):
            with pytest.raises(AccessControlException):
                access.do_privileged(
                    lambda: access.check_permission(PERM), context=context)

    def test_do_privileged_returns_action_result(self):
        assert access.do_privileged(lambda: 42) == 42


class TestGetContext:
    def test_snapshot_contains_stack_domains(self):
        trusted = TRUSTED()
        untrusted = UNTRUSTED()
        with access.stack_frame(trusted):
            with access.stack_frame(untrusted):
                context = access.get_context()
        assert set(context.domains) == {trusted, untrusted}

    def test_snapshot_checks_like_the_stack(self):
        with access.stack_frame(UNTRUSTED()):
            context = access.get_context()
        with pytest.raises(AccessControlException):
            context.check_permission(PERM)

    def test_current_domain(self):
        trusted = TRUSTED()
        assert access.current_domain() is None
        with access.stack_frame(trusted):
            assert access.current_domain() is trusted


class TestInheritedContext:
    def test_child_thread_inherits_creator_context(self):
        """JDK 1.2 semantics: a thread created by untrusted code cannot
        shed its creator's restrictions."""
        root = ThreadGroup(None, "system")
        outcome = []

        def child_body():
            try:
                access.check_permission(PERM)
                outcome.append("allowed")
            except AccessControlException:
                outcome.append("denied")

        def creator_body():
            with access.stack_frame(UNTRUSTED()):
                child = JThread(target=child_body, group=root)
            child.start()
            child.join(5)

        creator = JThread(target=creator_body, group=root)
        creator.start()
        creator.join(5)
        assert outcome == ["denied"]

    def test_trusted_creator_gives_clean_context(self):
        root = ThreadGroup(None, "system")
        outcome = []

        def child_body():
            try:
                access.check_permission(PERM)
                outcome.append("allowed")
            except AccessControlException:
                outcome.append("denied")

        def creator_body():
            child = JThread(target=child_body, group=root)
            child.start()
            child.join(5)

        creator = JThread(target=creator_body, group=root)
        creator.start()
        creator.join(5)
        assert outcome == ["allowed"]


class TestUserBasedCombination:
    """Section 5.3: a domain holding UserPermission exercises the running
    user's permissions in addition to its own."""

    @pytest.fixture(autouse=True)
    def user_permissions(self):
        granted = Permissions([PERM])
        state = {"active": True}

        def resolver():
            return granted if state["active"] else None

        previous = access.user_permission_resolver
        access.user_permission_resolver = resolver
        yield state
        access.user_permission_resolver = previous

    def test_user_permission_domain_gains_user_grants(self):
        local = domain("local-app", UserPermission())
        with access.stack_frame(local):
            access.check_permission(PERM)  # granted via the user

    def test_domain_without_user_permission_gains_nothing(self):
        remote = domain("applet")
        with access.stack_frame(remote):
            with pytest.raises(AccessControlException):
                access.check_permission(PERM)

    def test_no_user_active_means_no_combination(self, user_permissions):
        user_permissions["active"] = False
        local = domain("local-app", UserPermission())
        with access.stack_frame(local):
            with pytest.raises(AccessControlException):
                access.check_permission(PERM)

    def test_combination_applies_per_frame(self):
        """Every frame combines independently: a remote frame below a
        local frame still poisons the stack."""
        local = domain("local-app", UserPermission())
        remote = domain("applet")
        with access.stack_frame(remote):
            with access.stack_frame(local):
                with pytest.raises(AccessControlException):
                    access.check_permission(PERM)
