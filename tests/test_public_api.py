"""The public API surface: everything advertised is importable and sane."""

import importlib

import pytest

import repro


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"missing export: {name}"


def test_version_present():
    assert repro.__version__


@pytest.mark.parametrize("module_name", [
    "repro.jvm.errors", "repro.jvm.threads", "repro.jvm.classloading",
    "repro.jvm.vm",
    "repro.lang.properties", "repro.lang.system", "repro.lang.sysprops",
    "repro.lang.context", "repro.lang.reflect", "repro.lang.bootstrap",
    "repro.io.streams", "repro.io.file",
    "repro.unixfs.vfs", "repro.unixfs.users", "repro.unixfs.machine",
    "repro.security.permissions", "repro.security.codesource",
    "repro.security.policy", "repro.security.access",
    "repro.security.manager", "repro.security.sysmanager",
    "repro.security.auth",
    "repro.awt.events", "repro.awt.components", "repro.awt.xserver",
    "repro.awt.toolkit", "repro.awt.dispatch",
    "repro.core.application", "repro.core.context", "repro.core.reload",
    "repro.core.usermodel", "repro.core.launcher", "repro.core.sharing",
    "repro.core.execspec",
    "repro.super", "repro.super.faults", "repro.super.admission",
    "repro.super.spec", "repro.super.supervisor",
    "repro.net.fabric", "repro.net.sockets",
    "repro.tools.shell", "repro.tools.terminal", "repro.tools.login",
    "repro.tools.coreutils", "repro.tools.appletviewer",
    "repro.tools.registry",
    "repro.dist.protocol", "repro.dist.daemon", "repro.dist.client",
    "repro.dist.rsh",
    "repro.procsim.model",
])
def test_every_module_imports_and_has_a_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


def test_public_classes_documented():
    for name in repro.__all__:
        item = getattr(repro, name)
        if isinstance(item, type):
            assert item.__doc__, f"{name} lacks a docstring"


def test_paper_policy_exported_and_parses():
    policy = repro.paper_example_policy()
    assert policy.entries()
    assert "UserPermission" in repro.DEFAULT_POLICY
