"""The public API surface: everything advertised is importable and sane."""

import importlib

import pytest

import repro


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"missing export: {name}"


def test_version_present():
    assert repro.__version__


@pytest.mark.parametrize("module_name", [
    "repro.jvm.errors", "repro.jvm.threads", "repro.jvm.classloading",
    "repro.jvm.vm",
    "repro.lang.properties", "repro.lang.system", "repro.lang.sysprops",
    "repro.lang.context", "repro.lang.reflect", "repro.lang.bootstrap",
    "repro.io.streams", "repro.io.file",
    "repro.unixfs.vfs", "repro.unixfs.users", "repro.unixfs.machine",
    "repro.security.permissions", "repro.security.codesource",
    "repro.security.policy", "repro.security.access",
    "repro.security.manager", "repro.security.sysmanager",
    "repro.security.auth",
    "repro.awt.events", "repro.awt.components", "repro.awt.xserver",
    "repro.awt.toolkit", "repro.awt.dispatch",
    "repro.core.application", "repro.core.context", "repro.core.reload",
    "repro.core.usermodel", "repro.core.launcher", "repro.core.sharing",
    "repro.core.execspec",
    "repro.super", "repro.super.faults", "repro.super.admission",
    "repro.super.spec", "repro.super.supervisor",
    "repro.net.fabric", "repro.net.sockets",
    "repro.tools.shell", "repro.tools.terminal", "repro.tools.login",
    "repro.tools.coreutils", "repro.tools.appletviewer",
    "repro.tools.registry",
    "repro.dist.protocol", "repro.dist.daemon", "repro.dist.client",
    "repro.dist.rsh",
    "repro.procsim.model",
    "repro.sched", "repro.sched.core", "repro.sched.waitobj",
    "repro.sched.ops", "repro.sched.timers",
])
def test_every_module_imports_and_has_a_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


def test_public_classes_documented():
    for name in repro.__all__:
        item = getattr(repro, name)
        if isinstance(item, type):
            assert item.__doc__, f"{name} lacks a docstring"


def test_paper_policy_exported_and_parses():
    policy = repro.paper_example_policy()
    assert policy.entries()
    assert "UserPermission" in repro.DEFAULT_POLICY


class TestSchedulerExports:
    """The event-loop scheduler core is part of the public surface."""

    def test_scheduler_types_exported(self):
        for name in ("sched", "Scheduler", "Task", "spawn", "sched_yield",
                     "WaitPoint", "SchedEvent", "TaskWaiter"):
            assert name in repro.__all__, name
            assert hasattr(repro, name), name

    def test_spawn_is_default_scheduler_entrypoint(self):
        task = repro.spawn(lambda: 40 + 2)
        assert task.join(5)
        assert task.result == 42

    def test_jthread_facade_signature_stable(self):
        """The facade's constructor surface is pinned: old call sites
        must keep working byte-for-byte, new ``backing`` is keyword-only
        in practice (trailing, defaulted)."""
        import inspect
        from repro.jvm.threads import JThread
        params = list(inspect.signature(JThread.__init__).parameters)
        assert params == ["self", "target", "name", "group", "daemon",
                          "args", "backing"]
        sig = inspect.signature(JThread.__init__)
        assert sig.parameters["backing"].default is None

    def test_execspec_threads_field(self):
        from repro.core.execspec import ExecSpec
        spec = ExecSpec("apps.Demo")
        assert spec.threads == "sched"
        forced = ExecSpec("apps.Demo", threads="os")
        assert forced.threads == "os"
        with pytest.raises(Exception):
            ExecSpec("apps.Demo", threads="green")

    def test_wait_objects_are_condition_compatible(self):
        wp = repro.WaitPoint()
        with wp:
            pass  # acquire/release like a Condition
        event = repro.SchedEvent()
        event.set()
        assert event.wait(0) is True
