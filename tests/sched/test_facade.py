"""JThread as a facade over scheduler tasks — byte-compatible surface."""

import threading
import time

import pytest

from repro.jvm.errors import (
    IllegalThreadStateException,
    InterruptedException,
)
from repro.jvm.threads import JThread, ThreadGroup
from repro.sched import sched_yield, sleep

pytestmark = pytest.mark.sched


@pytest.fixture
def root():
    return ThreadGroup(None, "system")


def _settle():
    """Let daemon worker threads from prior tests wind down."""
    time.sleep(0.05)


class TestSchedBacking:
    def test_generator_target_needs_no_os_thread(self, root):
        _settle()
        before = threading.active_count()
        done = []

        def body():
            yield sched_yield()
            done.append("ran")

        threads = [JThread(target=body, group=root) for _ in range(50)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(5)
            assert not thread.is_alive()
        # 50 JThreads, at most the one shared loop thread added.
        assert threading.active_count() <= before + 1
        assert done == ["ran"] * 50

    def test_args_forwarded(self, root):
        seen = []

        def body(a, b):
            yield
            seen.append((a, b))

        thread = JThread(target=body, group=root, args=(1, "x"))
        thread.start()
        thread.join(5)
        assert not thread.is_alive()
        assert seen == [(1, "x")]

    def test_interrupt_delivered_into_body(self, root):
        caught = []

        def body():
            try:
                while True:
                    yield
            except InterruptedException:
                caught.append(True)

        thread = JThread(target=body, group=root)
        thread.start()
        time.sleep(0.05)
        thread.interrupt()
        thread.join(5)
        assert not thread.is_alive()
        assert caught == [True]

    def test_interrupt_wakes_sleeping_body(self, root):
        def body():
            yield sleep(30.0)

        thread = JThread(target=body, group=root)
        thread.start()
        time.sleep(0.05)
        start = time.monotonic()
        thread.interrupt()
        thread.join(5)
        assert not thread.is_alive()
        assert time.monotonic() - start < 5

    def test_is_interrupted_flag(self, root):
        def body():
            yield sleep(0.2)

        thread = JThread(target=body, group=root)
        thread.start()
        thread.interrupt()
        # The flag is observable from outside before delivery consumes it
        # (same contract as the OS backing).
        assert thread.is_interrupted() is True
        thread.join(5)

    def test_stop_is_silent(self, root):
        def body():
            while True:
                yield

        thread = JThread(target=body, group=root)
        thread.start()
        time.sleep(0.05)
        thread.stop()
        thread.join(5)
        assert not thread.is_alive()

    def test_group_membership_lifecycle(self, root):
        def body():
            yield sleep(0.2)

        thread = JThread(target=body, group=root)
        assert thread.group is root
        thread.start()
        assert thread in root.enumerate_threads()
        thread.join(5)
        assert not thread.is_alive()
        assert thread not in root.enumerate_threads()

    def test_double_start_raises(self, root):
        def body():
            yield

        thread = JThread(target=body, group=root)
        thread.start()
        with pytest.raises(IllegalThreadStateException):
            thread.start()
        thread.join(5)

    def test_join_timeout_then_completion(self, root):
        def body():
            yield sleep(0.2)

        thread = JThread(target=body, group=root)
        thread.start()
        thread.join(0.02)
        assert thread.is_alive()
        thread.join(5)
        assert not thread.is_alive()

    def test_run_override_generator(self, root):
        ran = []

        class Worker(JThread):
            def run(self):
                yield sched_yield()
                ran.append("override")

        worker = Worker(group=root)
        worker.start()
        worker.join(5)
        assert not worker.is_alive()
        assert ran == ["override"]


class TestBackingSelection:
    def test_sched_backing_rejects_plain_callable(self, root):
        thread = JThread(target=lambda: None, group=root, backing="sched")
        with pytest.raises(IllegalThreadStateException):
            thread.start()

    def test_bad_backing_value_rejected(self, root):
        from repro.jvm.errors import IllegalArgumentException
        with pytest.raises(IllegalArgumentException):
            JThread(target=lambda: None, group=root, backing="green")

    def test_os_backing_drives_generator_inline(self, root):
        _settle()
        before = threading.active_count()
        done = []

        def body():
            yield sleep(0.01)
            done.append("inline")

        thread = JThread(target=body, group=root, backing="os")
        thread.start()
        # The escape hatch costs a dedicated OS thread again.
        assert threading.active_count() >= before + 1
        thread.join(5)
        assert not thread.is_alive()
        assert done == ["inline"]

    def test_plain_callable_still_gets_os_thread(self, root):
        done = []
        thread = JThread(target=lambda: done.append(1), group=root)
        thread.start()
        thread.join(5)
        assert not thread.is_alive()
        assert done == [1]

    def test_same_body_same_result_both_backings(self, root):
        def make(results):
            def body():
                total = 0
                for i in range(5):
                    total += i
                    yield sched_yield()
                results.append(total)
            return body

        for backing in ("sched", "os"):
            results = []
            thread = JThread(target=make(results), group=root,
                             backing=backing)
            thread.start()
            thread.join(5)
            assert not thread.is_alive()
            assert results == [10], backing


class TestFinishHooks:
    def test_hooks_run_exactly_once_sched(self, root):
        hits = []

        def body():
            yield

        thread = JThread(target=body, group=root)
        thread.finish_hooks.append(lambda t: hits.append(t.name))
        thread.start()
        thread.join(5)
        assert not thread.is_alive()
        time.sleep(0.05)
        assert hits == [thread.name]

    def test_hooks_run_exactly_once_under_stop_race(self, root):
        hits = []

        def body():
            while True:
                yield

        thread = JThread(target=body, group=root)
        thread.finish_hooks.append(lambda t: hits.append(1))
        thread.start()
        time.sleep(0.05)
        # Two racing stop requests from different threads.
        stoppers = [threading.Thread(target=thread.stop) for _ in range(2)]
        for s in stoppers:
            s.start()
        for s in stoppers:
            s.join(5)
        thread.join(5)
        assert not thread.is_alive()
        time.sleep(0.05)
        assert hits == [1]

    def test_hooks_run_exactly_once_on_detach(self, root):
        hits = []
        errors = []

        def host():
            try:
                thread = JThread.attach("guest", root)
                thread.finish_hooks.append(lambda t: hits.append(1))
                thread.detach()
                # A second finish attempt (e.g. reaper racing detach)
                # must be a no-op.
                thread._finish(None)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        worker = threading.Thread(target=host)
        worker.start()
        worker.join(5)
        assert errors == []
        assert hits == [1]

    def test_hooks_run_once_on_scheduler_teardown(self):
        from repro.sched import Scheduler
        sched = Scheduler(name="facade-teardown")
        sched.start()
        group = ThreadGroup(None, "system")
        hits = []

        def body():
            yield sleep(3600.0)

        thread = JThread(target=body, group=group)
        thread.finish_hooks.append(lambda t: hits.append(1))
        thread._continuation = thread._make_continuation()
        thread._started = True
        thread._task = sched.spawn_task(
            thread._continuation, name=thread.name, jthread=thread)
        time.sleep(0.05)
        sched.shutdown()
        thread.join(5)
        assert not thread.is_alive()
        assert hits == [1]
