"""Tier-1 scale smoke: thousands of tasks, a small app fleet, fast.

The full-scale numbers (10k apps, switch throughput) live in
``benchmarks/bench_context_switch.py``; this file keeps a cheap
always-on canary in the tier-1 suite so a regression that breaks
many-task scale is caught before the next bench run.
"""

import threading
import time

import pytest

from repro.core.execspec import ExecSpec
from repro.core.launcher import MultiProcVM
from repro.sched import Scheduler, ops, sched_yield

pytestmark = pytest.mark.sched

N_TASKS = 2000
N_APPS = 50


class TestManyTasks:
    def test_thousands_of_idle_tasks_one_thread(self):
        scheduler = Scheduler(name="scale-idle")
        scheduler.start()
        try:
            before = threading.active_count()

            def body():
                yield from ops.sleep(3600.0)

            tasks = [scheduler.spawn(body) for _ in range(N_TASKS)]
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if scheduler.stats()["live"] >= N_TASKS:
                    break
                time.sleep(0.01)
            assert scheduler.stats()["live"] >= N_TASKS
            # All parked on the timer heap; no OS threads were added.
            assert threading.active_count() == before
            for task in tasks:
                task.stop()
            assert all(task.join(10) for task in tasks)
        finally:
            scheduler.shutdown()

    def test_thousands_of_ready_tasks_complete(self):
        scheduler = Scheduler(name="scale-ready")
        scheduler.start()
        try:
            results = []

            def body(i):
                yield sched_yield()
                results.append(i)

            tasks = [scheduler.spawn(body, i) for i in range(N_TASKS)]
            assert all(task.join(30) for task in tasks)
            assert sorted(results) == list(range(N_TASKS))
        finally:
            scheduler.shutdown()


class TestAppFleet:
    def test_idle_app_fleet_launch_and_teardown(self):
        import sys
        sys.path.insert(0, "benchmarks")
        try:
            from _common import register_main
        finally:
            sys.path.pop(0)

        def idle_main(jclass, ctx, args):
            yield from ops.sleep(3600.0)
            return 0

        mvm = MultiProcVM.boot()
        try:
            with mvm.host_session():
                class_name = register_main(mvm.vm, "SmokeIdleApp", idle_main)
                before = threading.active_count()
                apps = [mvm.launch(ExecSpec(class_name, name=f"smoke-{i}"))
                        for i in range(N_APPS)]
                deadline = time.monotonic() + 30
                scheduler = mvm.vm.scheduler
                while time.monotonic() < deadline:
                    scheduler = mvm.vm.scheduler
                    if scheduler is not None \
                            and scheduler.stats()["live"] >= N_APPS:
                        break
                    time.sleep(0.01)
                assert scheduler is not None
                assert scheduler.stats()["live"] >= N_APPS
                # The fleet shares one loop thread, not N_APPS threads.
                assert threading.active_count() - before <= 2
                for app in apps:
                    app.destroy()
                for app in apps:
                    assert app.wait_for(10)
        finally:
            mvm.shutdown()
