"""The scheduler engine: tasks, requests, interruption, teardown."""

import time

import pytest

from repro.jvm.errors import (
    IllegalStateException,
    InterruptedException,
)
from repro.sched import (
    Scheduler,
    SleepRequest,
    Task,
    sched_yield,
    sleep,
)

pytestmark = pytest.mark.sched


@pytest.fixture
def scheduler():
    sched = Scheduler(name="test-core")
    sched.start()
    yield sched
    sched.shutdown()


class TestSpawn:
    def test_generator_function_becomes_continuation(self, scheduler):
        def body(n):
            total = 0
            for i in range(n):
                total += i
                yield sched_yield()
            return total

        task = scheduler.spawn(body, 10)
        assert task.join(5)
        assert task.result == 45
        assert task.exception is None

    def test_plain_callable_runs_in_one_step(self, scheduler):
        task = scheduler.spawn(lambda: 41 + 1)
        assert task.join(5)
        assert task.result == 42

    def test_generator_object_accepted(self, scheduler):
        def body():
            yield sched_yield()
            return "made"

        task = scheduler.spawn(body())
        assert task.join(5)
        assert task.result == "made"

    def test_task_exception_recorded_not_raised(self, scheduler):
        def body():
            yield sched_yield()
            raise ValueError("task boom")

        task = scheduler.spawn(body)
        assert task.join(5)
        assert isinstance(task.exception, ValueError)
        assert scheduler.running  # the loop survived

    def test_names_default_and_explicit(self, scheduler):
        anon = scheduler.spawn(lambda: None)
        named = scheduler.spawn(lambda: None, name="worker")
        assert anon.join(5) and named.join(5)
        assert named.name == "worker"
        assert anon.name.startswith("task-")


class TestRequests:
    def test_sleep_parks_on_timer_heap(self, scheduler):
        def body():
            yield sleep(0.05)
            return "woke"

        start = time.monotonic()
        task = scheduler.spawn(body)
        assert task.join(5)
        assert task.result == "woke"
        assert time.monotonic() - start >= 0.04

    def test_sleep_request_yield_form(self, scheduler):
        def body():
            yield SleepRequest(0.01)
            return 1

        task = scheduler.spawn(body)
        assert task.join(5) and task.result == 1

    def test_yield_none_round_robins(self, scheduler):
        order = []

        def body(tag):
            for _ in range(3):
                order.append(tag)
                yield

        task_a = scheduler.spawn(body, "a")
        task_b = scheduler.spawn(body, "b")
        assert task_a.join(5) and task_b.join(5)
        # Strict alternation once both are in the ready deque.
        assert order.count("a") == 3 and order.count("b") == 3
        assert order != ["a", "a", "a", "b", "b", "b"]

    def test_unknown_yield_delivered_as_error(self, scheduler):
        def body():
            yield object()

        task = scheduler.spawn(body)
        assert task.join(5)
        assert isinstance(task.exception, IllegalStateException)

    def test_task_join_task(self, scheduler):
        from repro.sched import ops

        def child():
            yield sleep(0.02)
            return "child-done"

        def parent():
            kid = scheduler.spawn(child)
            finished = yield from ops.join(kid)
            return (finished, kid.result)

        task = scheduler.spawn(parent)
        assert task.join(5)
        assert task.result == (True, "child-done")

    def test_task_join_timeout(self, scheduler):
        from repro.sched import ops

        def slow():
            yield sleep(5.0)

        def parent():
            kid = scheduler.spawn(slow)
            finished = yield from ops.join(kid, timeout=0.05)
            kid.stop()
            return finished

        task = scheduler.spawn(parent)
        assert task.join(5)
        assert task.result is False


class TestInterruption:
    def test_interrupt_delivered_at_next_yield(self, scheduler):
        def body():
            while True:
                yield

        task = scheduler.spawn(body)
        time.sleep(0.05)
        task.interrupt()
        assert task.join(5)
        assert isinstance(task.exception, InterruptedException)

    def test_interrupt_wakes_sleeping_task(self, scheduler):
        def body():
            yield sleep(30.0)

        task = scheduler.spawn(body)
        time.sleep(0.05)
        start = time.monotonic()
        task.interrupt()
        assert task.join(5)
        assert time.monotonic() - start < 5
        assert isinstance(task.exception, InterruptedException)

    def test_stop_is_silent_threaddeath(self, scheduler):
        def body():
            while True:
                yield

        task = scheduler.spawn(body)
        time.sleep(0.05)
        task.stop()
        assert task.join(5)
        assert task.exception is None  # ThreadDeath is not an error

    def test_task_catches_interrupt(self, scheduler):
        def body():
            try:
                while True:
                    yield
            except InterruptedException:
                return "caught"

        task = scheduler.spawn(body)
        time.sleep(0.05)
        task.interrupt()
        assert task.join(5)
        assert task.result == "caught"


class TestLifecycle:
    def test_stats_counters(self, scheduler):
        def body():
            yield
            yield

        tasks = [scheduler.spawn(body) for _ in range(4)]
        assert all(task.join(5) for task in tasks)
        stats = scheduler.stats()
        assert stats["spawned"] >= 4
        assert stats["completed"] >= 4
        assert stats["switches"] >= 8
        assert stats["live"] == 0

    def test_shutdown_cancels_parked_tasks(self):
        sched = Scheduler(name="teardown")
        sched.start()
        cleaned = []

        def body():
            try:
                yield sleep(3600.0)
            finally:
                cleaned.append(True)

        task = sched.spawn(body)
        time.sleep(0.05)
        sched.shutdown()
        assert task.finished
        assert cleaned == [True]

    def test_shutdown_idempotent_and_restartable(self):
        sched = Scheduler(name="restart")
        sched.start()
        sched.shutdown()
        sched.shutdown()
        assert not sched.running

    def test_add_done_callback_after_finish_runs_now(self, scheduler):
        task = scheduler.spawn(lambda: "x")
        assert task.join(5)
        seen = []
        task.add_done_callback(lambda t: seen.append(t.result))
        assert seen == ["x"]

    def test_current_task_none_off_loop(self, scheduler):
        assert scheduler.current_task() is None

    def test_task_repr_and_type(self, scheduler):
        task = scheduler.spawn(lambda: None)
        assert isinstance(task, Task)
        assert task.join(5)
        assert "Task(" in repr(task)
