"""Task-side blocking operations against the real blocking surface."""

import threading
import time

import pytest

from repro.awt.events import ActionEvent, EventQueue
from repro.io.streams import BufferedInputStream, make_pipe
from repro.net.fabric import NetworkFabric
from repro.sched import Scheduler, WaitPoint, ops

pytestmark = pytest.mark.sched


@pytest.fixture
def scheduler():
    sched = Scheduler(name="test-ops")
    sched.start()
    yield sched
    sched.shutdown()


class TestWaitOn:
    def test_predicate_already_true(self, scheduler):
        wp = WaitPoint()

        def body():
            ok = yield from ops.wait_on(wp, lambda: True)
            return ok

        task = scheduler.spawn(body)
        assert task.join(5) and task.result is True

    def test_timeout_returns_false(self, scheduler):
        wp = WaitPoint()

        def body():
            ok = yield from ops.wait_on(wp, lambda: False, timeout=0.05)
            return ok

        task = scheduler.spawn(body)
        assert task.join(5) and task.result is False

    def test_notify_then_timeout_delivers_once(self, scheduler):
        """The park-token race: a notify and a timeout for the same park
        must resume the task exactly once (no double-step corruption)."""
        wp = WaitPoint()
        flag = []

        def body():
            ok = yield from ops.wait_on(wp, lambda: bool(flag),
                                        timeout=0.06)
            yield  # a further resumption would blow up if double-queued
            return ok

        task = scheduler.spawn(body)
        time.sleep(0.05)  # land the notify right at the timeout edge
        with wp:
            flag.append(1)
            wp.notify_all()
        assert task.join(5)
        assert task.exception is None


class TestPipeRead:
    def test_read_waits_for_writer(self, scheduler):
        reader, writer = make_pipe()

        def body():
            data = yield from ops.read(reader, 1024)
            return data

        task = scheduler.spawn(body)
        time.sleep(0.05)
        writer.write(b"hello")
        assert task.join(5)
        assert task.result == b"hello"
        writer.close()

    def test_read_eof_is_empty_bytes(self, scheduler):
        reader, writer = make_pipe()
        writer.close()

        def body():
            data = yield from ops.read(reader, 1024)
            return data

        task = scheduler.spawn(body)
        assert task.join(5)
        assert task.result == b""

    def test_read_timeout_is_none(self, scheduler):
        reader, writer = make_pipe()

        def body():
            data = yield from ops.read(reader, 1024, timeout=0.05)
            return data

        task = scheduler.spawn(body)
        assert task.join(5)
        assert task.result is None
        writer.close()

    def test_buffered_stream_read(self, scheduler):
        reader, writer = make_pipe()
        buffered = BufferedInputStream(reader)

        def body():
            data = yield from ops.read(buffered, 5)
            return data

        task = scheduler.spawn(body)
        time.sleep(0.05)
        writer.write(b"0123456789")
        assert task.join(5)
        assert task.result == b"01234"
        # The rest is buffered and readable without blocking.
        assert buffered.try_read(5) == b"56789"
        writer.close()


class TestAccept:
    def test_accept_from_task(self, scheduler):
        fabric = NetworkFabric()
        server = fabric.add_host("server")
        fabric.add_host("client")
        listener = server.listen(7001)

        def body():
            endpoint = yield from ops.accept(listener)
            return endpoint

        task = scheduler.spawn(body)
        time.sleep(0.05)
        client_end = fabric.connect("client", "server", 7001)
        assert task.join(5)
        assert task.result is not None
        assert task.result.remote_host == "client"
        client_end.close()
        listener.close()

    def test_accept_timeout(self, scheduler):
        fabric = NetworkFabric()
        server = fabric.add_host("server")
        listener = server.listen(7002)

        def body():
            endpoint = yield from ops.accept(listener, timeout=0.05)
            return endpoint

        task = scheduler.spawn(body)
        assert task.join(5)
        assert task.result is None
        listener.close()


class TestEventQueue:
    def test_next_event_from_task(self, scheduler):
        queue = EventQueue("test-ops")

        def body():
            event = yield from ops.next_event(queue)
            return event

        task = scheduler.spawn(body)
        time.sleep(0.05)
        posted = ActionEvent(None, "go")
        queue.post_event(posted)
        assert task.join(5)
        assert task.result is posted
        queue.close()

    def test_drain_events_batches(self, scheduler):
        queue = EventQueue("test-ops-drain")
        for i in range(5):
            queue.post_event(ActionEvent(None, f"cmd-{i}"))

        def body():
            batch = yield from ops.drain_events(queue)
            return batch

        task = scheduler.spawn(body)
        assert task.join(5)
        assert [e.command for e in task.result] == [
            f"cmd-{i}" for i in range(5)]
        queue.close()

    def test_drain_after_close_is_empty(self, scheduler):
        queue = EventQueue("test-ops-closed")
        queue.close()

        def body():
            batch = yield from ops.drain_events(queue)
            return batch

        task = scheduler.spawn(body)
        assert task.join(5)
        assert task.result == []


class TestInlineDriver:
    """The same generators under drive_inline (the threads='os' hatch)."""

    def test_wait_on_inline(self):
        from repro.sched.core import drive_inline
        wp = WaitPoint()
        flag = []

        def body():
            ok = yield from ops.wait_on(wp, lambda: bool(flag))
            return ok

        def release():
            time.sleep(0.05)
            with wp:
                flag.append(1)
                wp.notify_all()

        threading.Thread(target=release, daemon=True).start()
        assert drive_inline(body()) is True

    def test_read_inline(self):
        from repro.sched.core import drive_inline
        reader, writer = make_pipe()

        def body():
            data = yield from ops.read(reader, 1024)
            return data

        def feed():
            time.sleep(0.05)
            writer.write(b"inline")

        threading.Thread(target=feed, daemon=True).start()
        assert drive_inline(body()) == b"inline"
        writer.close()
