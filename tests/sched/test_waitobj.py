"""WaitPoint / TaskWaiter / SchedEvent: one parking abstraction."""

import threading
import time

import pytest

from repro.sched import SchedEvent, Scheduler, TaskWaiter, WaitPoint, ops

pytestmark = pytest.mark.sched


class TestTaskWaiter:
    def test_single_shot(self):
        waiter = TaskWaiter()
        hits = []
        waiter.bind_callback(lambda: hits.append(1))
        waiter.fire()
        waiter.fire()
        assert hits == [1]
        assert waiter.fired

    def test_bind_after_fire_delivers_immediately(self):
        waiter = TaskWaiter()
        waiter.fire()
        hits = []
        waiter.bind_callback(lambda: hits.append(1))
        assert hits == [1]

    def test_bind_event_side(self):
        waiter = TaskWaiter()
        event = waiter.bind_event()
        assert not event.is_set()
        waiter.fire()
        assert event.is_set()

    def test_bind_event_after_fire_already_set(self):
        waiter = TaskWaiter()
        waiter.fire()
        assert waiter.bind_event().is_set()


class TestWaitPoint:
    def test_condition_compatibility(self):
        wp = WaitPoint()
        results = []

        def os_waiter():
            with wp:
                while not results:
                    wp.wait(1.0)
                results.append("woke")

        thread = threading.Thread(target=os_waiter, daemon=True)
        thread.start()
        time.sleep(0.05)
        with wp:
            results.append("go")
            wp.notify_all()
        thread.join(5)
        assert results == ["go", "woke"]

    def test_shared_plain_lock(self):
        lock = threading.Lock()
        wp = WaitPoint(lock)
        with wp:
            assert lock.locked()
        assert not lock.locked()

    def test_notify_all_fires_task_waiters(self):
        wp = WaitPoint()
        waiter = TaskWaiter()
        with wp:
            wp.add_task_waiter(waiter)
            assert wp.task_waiter_count() == 1
        with wp:
            wp.notify_all()
        assert waiter.fired
        with wp:
            assert wp.task_waiter_count() == 0

    def test_notify_n_broadcasts_to_tasks(self):
        wp = WaitPoint()
        waiters = [TaskWaiter() for _ in range(3)]
        with wp:
            for waiter in waiters:
                wp.add_task_waiter(waiter)
        with wp:
            wp.notify(1)
        # Task waiters re-check predicates, so broadcasting is correct.
        assert all(waiter.fired for waiter in waiters)


class TestSchedEvent:
    @pytest.fixture
    def scheduler(self):
        sched = Scheduler(name="test-waitobj")
        sched.start()
        yield sched
        sched.shutdown()

    def test_os_thread_wait(self):
        event = SchedEvent()
        assert not event.is_set
        threading.Timer(0.05, event.set).start()
        assert event.wait(5)
        assert event.is_set

    def test_wait_timeout(self):
        event = SchedEvent()
        start = time.monotonic()
        assert not event.wait(0.05)
        assert time.monotonic() - start < 2

    def test_task_wait(self, scheduler):
        event = SchedEvent()

        def body():
            ok = yield from event.wait_task()
            return ok

        task = scheduler.spawn(body)
        time.sleep(0.05)
        event.set()
        assert task.join(5)
        assert task.result is True

    def test_task_wait_timeout(self, scheduler):
        event = SchedEvent()

        def body():
            ok = yield from event.wait_task(timeout=0.05)
            return ok

        task = scheduler.spawn(body)
        assert task.join(5)
        assert task.result is False

    def test_set_before_wait_returns_immediately(self, scheduler):
        event = SchedEvent()
        event.set()

        def body():
            ok = yield from event.wait_task()
            return ok

        task = scheduler.spawn(body)
        assert task.join(5)
        assert task.result is True

    def test_clear(self):
        event = SchedEvent()
        event.set()
        event.clear()
        assert not event.is_set


class TestMixedWaiters:
    def test_one_notify_wakes_thread_and_task(self):
        scheduler = Scheduler(name="mixed")
        scheduler.start()
        try:
            wp = WaitPoint()
            ready = []
            woken = []

            def os_side():
                from repro.sched.timers import wait_until
                with wp:
                    wait_until(wp, lambda: bool(ready), timeout=5)
                woken.append("thread")

            def task_side():
                yield from ops.wait_on(wp, lambda: bool(ready))
                woken.append("task")

            thread = threading.Thread(target=os_side, daemon=True)
            thread.start()
            task = scheduler.spawn(task_side)
            time.sleep(0.1)
            with wp:
                ready.append(1)
                wp.notify_all()
            thread.join(5)
            assert task.join(5)
            assert sorted(woken) == ["task", "thread"]
        finally:
            scheduler.shutdown()
