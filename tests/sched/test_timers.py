"""The unified timing API (timers) and its deprecation shims."""

import threading
import time

import pytest

from repro.jvm.errors import IllegalStateException, InterruptedException
from repro.jvm.threads import JThread, ThreadGroup, interruptible_wait
from repro.sched import Scheduler, WaitPoint, timers

pytestmark = pytest.mark.sched


@pytest.fixture
def root():
    return ThreadGroup(None, "system")


class TestWaitUntil:
    def test_on_plain_condition(self):
        cond = threading.Condition()
        flag = []

        def release():
            time.sleep(0.05)
            with cond:
                flag.append(1)
                cond.notify_all()

        threading.Thread(target=release, daemon=True).start()
        with cond:
            assert timers.wait_until(cond, lambda: bool(flag), timeout=5)

    def test_on_waitpoint(self):
        wp = WaitPoint()
        flag = []

        def release():
            time.sleep(0.05)
            with wp:
                flag.append(1)
                wp.notify_all()

        threading.Thread(target=release, daemon=True).start()
        with wp:
            assert timers.wait_until(wp, lambda: bool(flag), timeout=5)

    def test_timeout_false(self):
        cond = threading.Condition()
        with cond:
            assert not timers.wait_until(cond, lambda: False, timeout=0.05)

    def test_interruptible(self, root):
        cond = threading.Condition()
        outcome = []

        def body():
            try:
                with cond:
                    timers.wait_until(cond, lambda: False, timeout=30)
            except InterruptedException:
                outcome.append("interrupted")

        thread = JThread(target=body, group=root)
        thread.start()
        time.sleep(0.1)
        thread.interrupt()
        thread.join(5)
        assert outcome == ["interrupted"]


class TestPollUntil:
    def test_polls_to_true(self):
        flag = []
        threading.Timer(0.05, lambda: flag.append(1)).start()
        assert timers.poll_until(lambda: bool(flag), timeout=5)

    def test_timeout(self):
        start = time.monotonic()
        assert not timers.poll_until(lambda: False, timeout=0.05)
        assert time.monotonic() - start < 2


class TestSleep:
    def test_sleeps(self):
        start = time.monotonic()
        timers.sleep(0.05)
        assert time.monotonic() - start >= 0.04


class TestLoopThreadGuard:
    """Blocking an event-loop thread would deadlock every task on it."""

    def test_sleep_refused_on_loop_thread(self):
        sched = Scheduler(name="guard")
        sched.start()
        try:
            def body():
                try:
                    timers.sleep(0.01)
                except IllegalStateException:
                    return "refused"
                yield

            task = sched.spawn(body)
            assert task.join(5)
            assert task.result == "refused"
        finally:
            sched.shutdown()

    def test_jthread_join_refused_on_loop_thread(self, root):
        sched = Scheduler(name="guard-join")
        sched.start()
        try:
            victim = JThread(target=lambda: time.sleep(0.2), group=root)
            victim.start()

            def body():
                try:
                    victim.join(1.0)
                except IllegalStateException:
                    return "refused"
                yield

            task = sched.spawn(body)
            assert task.join(5)
            assert task.result == "refused"
            victim.join(5)
        finally:
            sched.shutdown()


class TestDeprecationShim:
    def test_interruptible_wait_forwards_with_warning(self):
        cond = threading.Condition()
        with pytest.warns(DeprecationWarning, match="interruptible_wait"):
            with cond:
                assert interruptible_wait(cond, lambda: True, timeout=1)

    def test_poll_interval_consistency(self):
        from repro.jvm.threads import POLL_INTERVAL as thread_poll
        assert timers.POLL_INTERVAL == thread_poll
