"""The Section 2 process-cost model: arithmetic and monotonicity."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.procsim.model import (
    ComparisonRow,
    ProcessCostModel,
    format_table,
    section2_table,
)


@pytest.fixture
def model():
    return ProcessCostModel()


class TestMemory:
    def test_multi_jvm_memory_linear(self, model):
        assert model.multi_jvm_memory_kb(1) == model.jvm_base_memory_kb
        assert model.multi_jvm_memory_kb(4) == 4 * model.jvm_base_memory_kb

    def test_single_jvm_memory_base_plus_apps(self, model):
        assert model.single_jvm_memory_kb(0) == model.jvm_base_memory_kb
        assert model.single_jvm_memory_kb(3) == \
            model.jvm_base_memory_kb + 3 * model.per_app_memory_kb

    def test_saving_factor_grows_with_fleet(self, model):
        assert model.memory_saving_factor(8) > model.memory_saving_factor(2)

    @given(n=st.integers(min_value=1, max_value=1000))
    @settings(max_examples=50, deadline=None)
    def test_single_always_cheaper_for_realistic_params(self, n):
        model = ProcessCostModel()
        # Holds whenever per-app cost < one full JVM (the premise of §2).
        assert model.single_jvm_memory_kb(n) < \
            model.multi_jvm_memory_kb(n) + model.jvm_base_memory_kb


class TestStartup:
    def test_multi_jvm_startup_linear(self, model):
        assert model.multi_jvm_startup_s(5) == \
            pytest.approx(5 * model.jvm_startup_s)

    def test_single_jvm_startup_uses_measured_launch(self, model):
        modelled = model.single_jvm_startup_s(10)
        measured = model.single_jvm_startup_s(10,
                                              measured_launch_s=0.0001)
        assert measured < modelled

    def test_crossover_at_one_app(self, model):
        # With exactly one application there is no advantage (same JVM).
        assert model.single_jvm_startup_s(1) == pytest.approx(
            model.jvm_startup_s + model.in_vm_launch_s)


class TestSwitchAndIpc:
    def test_process_switch_includes_refill(self, model):
        assert model.process_context_switch_us() == \
            model.process_switch_us + model.cache_refill_penalty_us

    def test_switch_speedup_over_one(self, model):
        assert model.switch_speedup() > 1.0
        assert model.switch_speedup(measured_thread_switch_us=1.0) > \
            model.switch_speedup(measured_thread_switch_us=10.0)

    def test_ipc_speedup(self, model):
        assert model.ipc_speedup() == pytest.approx(
            model.in_vm_pipe_mb_s / model.process_pipe_mb_s)
        assert model.ipc_speedup(measured_in_vm_mb_s=1000.0) > \
            model.ipc_speedup()


class TestTable:
    def test_rows_and_units(self, model):
        rows = section2_table(4, model)
        metrics = [row.metric for row in rows]
        assert metrics == ["memory for 4 apps", "startup for 4 apps",
                           "context switch", "IPC cost per MB"]
        assert all(row.advantage > 1.0 for row in rows)

    def test_measured_values_override(self, model):
        fast = section2_table(4, model, measured_launch_s=1e-6,
                              measured_thread_switch_us=0.5,
                              measured_in_vm_pipe_mb_s=2000.0)
        slow = section2_table(4, model)
        assert fast[1].single_vm < slow[1].single_vm
        assert fast[2].single_vm < slow[2].single_vm
        assert fast[3].single_vm < slow[3].single_vm

    def test_format_table_renders_every_row(self, model):
        rows = section2_table(2, model)
        text = format_table(rows, "title")
        assert "title" in text
        for row in rows:
            assert row.metric in text

    def test_comparison_row_advantage(self):
        row = ComparisonRow("m", 10.0, 2.0, "u")
        assert row.advantage == pytest.approx(5.0)
        zero = ComparisonRow("m", 10.0, 0.0, "u")
        assert zero.advantage == float("inf")

    @given(n=st.integers(min_value=2, max_value=64))
    @settings(max_examples=30, deadline=None)
    def test_memory_advantage_monotone_in_n(self, n):
        model = ProcessCostModel()
        smaller = section2_table(n, model)[0].advantage
        larger = section2_table(n + 1, model)[0].advantage
        assert larger >= smaller


class TestModelIsFrozen:
    def test_parameters_immutable(self, model):
        with pytest.raises(Exception):
            model.jvm_startup_s = 99.0

    def test_custom_calibration(self):
        modern = ProcessCostModel(jvm_startup_s=0.05,
                                  jvm_base_memory_kb=65536)
        assert modern.multi_jvm_startup_s(4) == pytest.approx(0.2)
        assert modern.memory_saving_factor(4) > 1.0
