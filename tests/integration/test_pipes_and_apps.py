"""Section 6.3's closing sentence, as a test:

"We successfully run multiple instances of the terminal, together with
shells, the Appletviewer, and a number of applications connected through
pipes in our prototype."
"""

import pytest

from repro.io.file import write_text
from repro.jvm.classloading import ClassMaterial
from repro.security.codesource import CodeSource
from repro.tools.terminal import TerminalDevice


def test_the_whole_menagerie_at_once(mvm):
    """Two terminals with shells, an applet in the viewer, and a pipeline,
    all concurrently in one VM."""
    # -- terminal 1: alice runs a pipeline ---------------------------------
    tty1 = TerminalDevice("tty1")
    tty2 = TerminalDevice("tty2")
    mvm.vm.consoles.update({"tty1": tty1, "tty2": tty2})

    # -- an applet published on the network --------------------------------
    web = mvm.vm.network.add_host("web.example.com")
    applet = ClassMaterial(
        "applets.Spinner",
        code_source=CodeSource(web.code_base() + "applets.Spinner"))
    started = {}

    @applet.member
    def start(jclass, ctx, frame):
        started["yes"] = True

    web.publish_class(applet)

    with mvm.host_session():
        term1 = mvm.exec("tools.Terminal", ["tty1"])
        term2 = mvm.exec("tools.Terminal", ["tty2"])

        for tty, user, password in ((tty1, "alice", "wonderland"),
                                    (tty2, "bob", "builder")):
            assert tty.wait_for_output("login: ")
            tty.type_line(user)
            assert tty.wait_for_output("Password: ")
            tty.type_line(password)
            assert tty.wait_for_output("$ ")

        write_text(mvm.initial.context(), "/tmp/words.txt",
                   "alpha\nbeta\ngamma\n")
        tty1.type_line("cat /tmp/words.txt | grep a | wc -l")
        assert tty1.wait_for_output("3")

        tty2.type_line("appletviewer --no-wait "
                       "http://web.example.com/classes/applets.Spinner")
        assert tty2.wait_for_output("$ ")
        import time
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline and "yes" not in started:
            time.sleep(0.01)
        assert started.get("yes") is True

        # Both shells are still healthy afterwards.
        tty1.type_line("echo one-still-alive")
        tty2.type_line("echo two-still-alive")
        assert tty1.wait_for_output("one-still-alive")
        assert tty2.wait_for_output("two-still-alive")

        for tty, term in ((tty1, term1), (tty2, term2)):
            tty.type_line("exit")
            assert tty.wait_for_output("logged out")
            tty.hang_up()
            term.wait_for(5)


def test_background_job_with_kill_from_shell(host):
    """Launch a long-running app with &, find it with ps, kill it — all
    inside one interactive shell session."""
    from repro.tools.terminal import Terminal, TerminalDevice
    device = TerminalDevice("kill-tty")
    terminal = Terminal(device)
    shell = host.exec("tools.Shell", [], stdin=terminal.input,
                      stdout=terminal.output, stderr=terminal.output)
    assert device.wait_for_output("$ ")
    device.type_line("sleep 30 &")
    device.type_line("ps")
    assert device.wait_for_output("sleep#"), device.transcript()
    sleeper_row = [line for line in device.transcript().splitlines()
                   if "sleep#" in line][0]
    sleeper_id = sleeper_row.split()[0]
    sleeper = host.vm.application_registry.find(int(sleeper_id))
    assert sleeper is not None and sleeper.running
    device.type_line(f"kill {sleeper_id}")
    assert sleeper.wait_for(5) is not None
    assert sleeper.terminated
    device.type_line("exit")
    assert shell.wait_for(10) == 0
    device.hang_up()


def test_shell_exit_cascades_to_background_children(host, capture):
    """A shell's background jobs are its child applications: when the
    shell terminates, its teardown reaps them (the process-group
    analogue)."""
    out = capture()
    shell = host.exec("tools.Shell", ["-c", "sleep 30 &", "ps"],
                      stdout=out.stream, stderr=out.stream)
    assert shell.wait_for(10) == 0
    sleeper_rows = [line for line in out.text.splitlines()
                    if "sleep#" in line]
    assert sleeper_rows, out.text
    sleeper_id = int(sleeper_rows[0].split()[0])
    import time
    deadline = time.monotonic() + 5
    while time.monotonic() < deadline:
        if host.vm.application_registry.find(sleeper_id) is None:
            break
        time.sleep(0.01)
    assert host.vm.application_registry.find(sleeper_id) is None


def test_io_redirection_chains_across_applications(host, capture):
    """Write with one app, transform with a pipeline, verify with cat."""
    out = capture()
    shell = host.exec(
        "tools.Shell",
        ["-c",
         "echo 'alpha beta' > /tmp/chain.txt",
         "cat /tmp/chain.txt | wc > /tmp/counts.txt",
         "cat /tmp/counts.txt"],
        stdout=out.stream, stderr=out.stream)
    assert shell.wait_for(10) == 0
    assert out.text.strip() == "1 2 11"


def test_many_concurrent_applications(host, register_app):
    """Stress: a burst of concurrent applications all finish cleanly."""
    from repro.jvm.threads import JThread

    def main(jclass, ctx, args):
        JThread.sleep(0.05)
        return 0

    class_name = register_app("Burst", main)
    apps = [host.exec(class_name) for _ in range(25)]
    for app in apps:
        assert app.wait_for(10) == 0
    assert all(app.terminated for app in apps)


def test_deep_application_ancestry(host, register_app):
    """Applications launching applications, five levels deep."""
    depth_reached = []

    def main(jclass, ctx, args):
        depth = int(args[0])
        depth_reached.append(depth)
        if depth < 5:
            child = ctx.exec("apps.Deep", [str(depth + 1)])
            child.wait_for(10)
        return 0

    register_app("Deep", main)
    top = host.exec("apps.Deep", ["1"])
    assert top.wait_for(15) == 0
    assert sorted(depth_reached) == [1, 2, 3, 4, 5]
