"""Two users logged in simultaneously on two terminals of one JVM —
the multi-user system of Section 2, driven end-to-end."""

import pytest

from repro.tools.terminal import TerminalDevice


@pytest.fixture
def consoles(mvm):
    devices = {}
    for name in ("tty1", "tty2"):
        device = TerminalDevice(name)
        mvm.vm.consoles[name] = device
        devices[name] = device
    return devices


def login_on(mvm, device, user, password):
    app = mvm.exec("tools.Terminal", [device.name])
    assert device.wait_for_output("login: "), device.transcript()
    device.type_line(user)
    assert device.wait_for_output("Password: "), device.transcript()
    device.type_line(password)
    assert device.wait_for_output("$ "), device.transcript()
    return app


def test_concurrent_sessions_have_independent_identities(host, consoles):
    tty1, tty2 = consoles["tty1"], consoles["tty2"]
    term1 = login_on(host, tty1, "alice", "wonderland")
    term2 = login_on(host, tty2, "bob", "builder")

    tty1.type_line("whoami")
    tty2.type_line("whoami")
    assert tty1.wait_for_output("\nalice\n") or \
        tty1.wait_for_output("alice\n")
    assert tty2.wait_for_output("bob")
    assert "alice@javaos" in tty1.transcript()
    assert "bob@javaos" in tty2.transcript()

    # Cross-user isolation holds concurrently.
    tty1.type_line("cat /home/bob/todo.txt")
    tty2.type_line("cat /home/alice/notes.txt")
    assert tty1.wait_for_output("AccessControlException")
    assert tty2.wait_for_output("AccessControlException")

    # And each can still reach their own data.
    tty1.type_line("cat /home/alice/notes.txt")
    tty2.type_line("cat /home/bob/todo.txt")
    assert tty1.wait_for_output("private notes")
    assert tty2.wait_for_output("todo")

    for tty, app in ((tty1, term1), (tty2, term2)):
        tty.type_line("exit")
        assert tty.wait_for_output("logged out")
        tty.hang_up()
        app.wait_for(5)


def test_sessions_do_not_share_working_directories(host, consoles):
    tty1, tty2 = consoles["tty1"], consoles["tty2"]
    term1 = login_on(host, tty1, "alice", "wonderland")
    term2 = login_on(host, tty2, "bob", "builder")
    tty1.type_line("cd /tmp")
    tty2.type_line("cd /etc")
    tty1.type_line("pwd")
    tty2.type_line("pwd")
    assert tty1.wait_for_output("/tmp")
    assert tty2.wait_for_output("/etc")
    assert "/etc" not in tty1.transcript().replace(
        "alice@javaos:/etc", "")  # alice's prompt never mentions /etc
    for tty, app in ((tty1, term1), (tty2, term2)):
        tty.type_line("exit")
        assert tty.wait_for_output("logged out")
        tty.hang_up()
        app.wait_for(5)


def test_logout_returns_to_login_prompt(host, consoles):
    """The terminal respawns login after a session ends (getty-style)."""
    tty1 = consoles["tty1"]
    term = login_on(host, tty1, "alice", "wonderland")
    tty1.type_line("exit")
    assert tty1.wait_for_output("logged out")
    # A fresh login prompt appears; Bob can take over the same terminal.
    assert tty1.wait_for_output("logged out")
    deadline_ok = tty1.wait_for_output("login: ")
    assert deadline_ok
    count_before = tty1.transcript().count("login: ")
    assert count_before >= 2
    tty1.type_line("bob")
    assert tty1.wait_for_output("Password: ")
    tty1.type_line("builder")
    assert tty1.wait_for_output("bob@javaos")
    tty1.type_line("exit")
    assert tty1.wait_for_output("logged out")
    tty1.hang_up()
    term.wait_for(5)


def test_ps_shows_both_sessions(host, consoles):
    tty1, tty2 = consoles["tty1"], consoles["tty2"]
    term1 = login_on(host, tty1, "alice", "wonderland")
    term2 = login_on(host, tty2, "bob", "builder")
    tty1.type_line("ps")
    assert tty1.wait_for_output("AID USER")
    transcript = tty1.transcript()
    assert "alice" in transcript
    assert "bob" in transcript  # bob's session is visible in the table
    assert transcript.count("shell#") >= 0  # table formatted
    for tty, app in ((tty1, term1), (tty2, term2)):
        tty.type_line("exit")
        assert tty.wait_for_output("logged out")
        tty.hang_up()
        app.wait_for(5)
