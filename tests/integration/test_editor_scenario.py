"""The paper's motivating scenario (Feature 7 / Section 5.4), end to end.

"Assume that two users, Alice and Bob, are running the same program, say a
text editor, within one JVM.  When Alice wants to save her file, she
selects the appropriate menu item. ...  we would like to avoid saving
Bob's file in Alice's directory and vice versa."

We build that text editor as an ordinary local application: a frame with a
text area and a File > Save File menu item whose callback writes the buffer
to ``$HOME/document.txt`` *of the running user resolved inside the
callback*.  With per-application dispatching, each save lands in the right
home; the centralized baseline cannot even attribute the callback.
"""

import time

import pytest

from repro.awt.components import Frame, MenuBar, TextArea
from repro.core.context import current_application_or_none
from repro.io.file import read_text, write_text
from repro.jvm.classloading import ClassMaterial
from repro.jvm.errors import SecurityException
from repro.security.codesource import CodeSource

EDITOR_CLASS = "apps.TextEditor"


def build_editor_material() -> ClassMaterial:
    material = ClassMaterial(
        EDITOR_CLASS,
        code_source=CodeSource(
            "file:/usr/local/java/apps/texteditor/TextEditor.class"),
        doc="The Alice-and-Bob text editor of Section 5.4.")

    @material.member
    def main(jclass, ctx, args):
        title = args[0] if args else "editor"
        frame = Frame(title, name=f"frame-{title}")
        area = TextArea(name=f"text-{title}")
        frame.add(area)
        bar = MenuBar(name=f"menubar-{title}")
        file_menu = bar.add_menu("File", name=f"file-menu-{title}")

        def save_file(event):
            # The running user is derived *from the dispatching thread* —
            # the whole point of Section 5.4.
            application = current_application_or_none()
            home = application.user.home
            write_text(ctx, f"{home}/document.txt", area.text)

        file_menu.add_item("Save File", save_file,
                           name=f"save-item-{title}")
        frame.set_menu_bar(bar)
        frame.show(ctx.vm.toolkit)
        # GUI application: lives until destroyed (Section 5.4 semantics).
        from repro.jvm.threads import JThread
        while True:
            JThread.sleep(0.5)

    return material


@pytest.fixture
def editor(mvm):
    mvm.vm.registry.register(build_editor_material())
    return EDITOR_CLASS


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


def test_alice_and_bob_save_into_their_own_homes(host, editor):
    """The headline: same program, two users, two correct save targets."""
    alice = host.vm.user_database.lookup("alice")
    bob = host.vm.user_database.lookup("bob")
    app_alice = host.exec(editor, ["alice-editor"], user=alice)
    app_bob = host.exec(editor, ["bob-editor"], user=bob)
    xserver = host.toolkit.xserver
    assert wait_for(lambda: xserver.find_window("alice-editor") is not None)
    assert wait_for(lambda: xserver.find_window("bob-editor") is not None)

    # Each user types their own text...
    win_alice = xserver.find_window("alice-editor")
    win_bob = xserver.find_window("bob-editor")
    xserver.type_text(win_alice, "text-alice-editor", "alice's diary")
    xserver.type_text(win_bob, "text-bob-editor", "bob's notes")
    # ... and selects File > Save File.
    xserver.select_menu_item(win_alice, "save-item-alice-editor")
    xserver.select_menu_item(win_bob, "save-item-bob-editor")

    ctx = host.initial.context()
    assert wait_for(lambda: _exists(ctx, "/home/alice/document.txt"))
    assert wait_for(lambda: _exists(ctx, "/home/bob/document.txt"))
    assert read_text(ctx, "/home/alice/document.txt") == "alice's diary"
    assert read_text(ctx, "/home/bob/document.txt") == "bob's notes"

    app_alice.destroy()
    app_bob.destroy()
    app_alice.wait_for(5)
    app_bob.wait_for(5)


def _exists(ctx, path):
    from repro.io.file import JFile
    try:
        return JFile(ctx, path).exists()
    except SecurityException:
        return False


def test_save_callback_is_policy_checked_per_user(host, editor):
    """The save goes through the user-based access control: a save by
    Alice's editor into Bob's home is denied."""
    evil_material = ClassMaterial(
        "apps.EvilEditor",
        code_source=CodeSource(
            "file:/usr/local/java/apps/evileditor/EvilEditor.class"))
    outcome = {}

    @evil_material.member
    def main(jclass, ctx, args):
        try:
            write_text(ctx, "/home/bob/document.txt", "alice was here")
            outcome["result"] = "wrote"
        except SecurityException:
            outcome["result"] = "denied"
        return 0

    host.vm.registry.register(evil_material)
    alice = host.vm.user_database.lookup("alice")
    app = host.exec("apps.EvilEditor", [], user=alice)
    assert app.wait_for(5) == 0
    assert outcome["result"] == "denied"


def test_editor_keystrokes_update_only_their_own_buffer(host, editor):
    alice = host.vm.user_database.lookup("alice")
    bob = host.vm.user_database.lookup("bob")
    app_alice = host.exec(editor, ["ed-a"], user=alice)
    app_bob = host.exec(editor, ["ed-b"], user=bob)
    xserver = host.toolkit.xserver
    assert wait_for(lambda: xserver.find_window("ed-a") is not None)
    assert wait_for(lambda: xserver.find_window("ed-b") is not None)
    xserver.type_text(xserver.find_window("ed-a"), "text-ed-a", "AAA")
    xserver.type_text(xserver.find_window("ed-b"), "text-ed-b", "B")

    windows_a = host.toolkit.windows_of(app_alice)
    windows_b = host.toolkit.windows_of(app_bob)
    assert wait_for(lambda: windows_a[0].find("text-ed-a").text == "AAA")
    assert wait_for(lambda: windows_b[0].find("text-ed-b").text == "B")
    app_alice.destroy()
    app_bob.destroy()
    app_alice.wait_for(5)
    app_bob.wait_for(5)
