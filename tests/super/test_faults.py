"""The fault injector: deterministic, scoped, and inert by default."""

import pytest

from repro.super import faults
from repro.super.faults import FaultInjector, InjectedFault

pytestmark = pytest.mark.supervision


class StubApp:
    def __init__(self):
        self.destroyed = 0

    def destroy(self):
        self.destroyed += 1


class TestInertPath:
    def test_hit_without_injector_is_a_no_op(self):
        assert faults.active() is None
        faults.hit("anything.at.all", class_name="x")  # must not raise

    def test_injected_scopes_the_install(self):
        assert faults.active() is None
        with faults.injected() as injector:
            assert faults.active() is injector
        assert faults.active() is None

    def test_injected_restores_a_previous_injector(self):
        outer = FaultInjector()
        faults.install(outer)
        try:
            with faults.injected():
                assert faults.active() is not outer
            assert faults.active() is outer
        finally:
            faults.install(None)


class TestRules:
    def test_fail_next_fires_exactly_n_times(self):
        injector = FaultInjector()
        injector.fail_next("p", n=2)
        for _ in range(2):
            with pytest.raises(InjectedFault):
                injector.hit("p")
        injector.hit("p")  # rule exhausted
        assert injector.fires("p") == 2

    def test_injected_fault_carries_the_point(self):
        injector = FaultInjector()
        injector.fail_next("dist.acquire")
        with pytest.raises(InjectedFault) as excinfo:
            injector.hit("dist.acquire", host="h")
        assert excinfo.value.point == "dist.acquire"

    def test_matchers_scope_the_rule(self):
        injector = FaultInjector()
        injector.fail_next("app.start", n=5, class_name="tools.Cat")
        injector.hit("app.start", class_name="tools.Ls")  # no match
        with pytest.raises(InjectedFault):
            injector.hit("app.start", class_name="tools.Cat")
        assert injector.fires("app.start") == 1

    def test_custom_exception_factory(self):
        injector = FaultInjector()
        injector.fail_next("p", exc=lambda: ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            injector.hit("p")

    def test_delay_next_uses_the_injectable_sleep(self):
        slept = []
        injector = FaultInjector(sleep=slept.append)
        injector.delay_next("p", 0.25, n=2)
        injector.hit("p")
        injector.hit("p")
        injector.hit("p")
        assert slept == [0.25, 0.25]

    def test_kill_next_destroys_the_context_app(self):
        injector = FaultInjector()
        injector.kill_next("super.heartbeat")
        app = StubApp()
        injector.hit("super.heartbeat", app=app)
        injector.hit("super.heartbeat", app=app)  # rule exhausted
        assert app.destroyed == 1

    def test_fail_rate_is_seed_deterministic(self):
        def pattern(seed):
            injector = FaultInjector(seed=seed)
            injector.fail_rate("p", 0.5)
            fired = []
            for _ in range(32):
                try:
                    injector.hit("p")
                    fired.append(False)
                except InjectedFault:
                    fired.append(True)
            return fired

        assert pattern(7) == pattern(7)
        assert any(pattern(7)) and not all(pattern(7))

    def test_reset_clears_rules_and_counts(self):
        injector = FaultInjector()
        injector.fail_next("p", n=5)
        with pytest.raises(InjectedFault):
            injector.hit("p")
        injector.reset()
        injector.hit("p")
        assert injector.fires() == {}
