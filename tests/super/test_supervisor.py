"""The supervisor: restart policies, backoff, escalation, health."""

import time

import pytest

from repro.core.execspec import ExecSpec
from repro.io.file import read_text
from repro.super import faults
from repro.super.spec import (
    ONE_SHOT,
    PERMANENT,
    TRANSIENT,
    BackoffPolicy,
    HealthProbe,
    ServiceSpec,
    backoff_rng,
    restart_delays,
)
from repro.super.supervisor import (
    SVC_DEGRADED,
    SVC_DONE,
    SVC_FAILED,
    SVC_STOPPED,
    Supervisor,
)

pytestmark = pytest.mark.supervision

#: A backoff that makes integration tests fast and jitter-free.
FAST = BackoffPolicy(base=0.001, factor=1.0, cap=0.001, jitter=0.0)


def wait_until(predicate, timeout=10.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture
def supervised(mvm, host):
    """A started supervisor with a fast probe tick; torn down after."""
    supervisor = Supervisor(mvm, probe_interval=0.01)
    yield supervisor
    supervisor.shutdown()


class TestBackoffSchedule:
    def test_schedule_is_deterministic_per_seed_and_name(self):
        policy = BackoffPolicy()
        assert restart_delays(policy, "svc", seed=1) == \
            restart_delays(policy, "svc", seed=1)
        assert restart_delays(policy, "svc", seed=1) != \
            restart_delays(policy, "svc", seed=2)
        assert restart_delays(policy, "a", seed=1) != \
            restart_delays(policy, "b", seed=1)

    def test_delays_grow_exponentially_to_the_cap(self):
        policy = BackoffPolicy(base=0.1, factor=2.0, cap=1.0, jitter=0.0)
        rng = backoff_rng("svc")
        delays = [policy.delay(k, rng) for k in range(6)]
        assert delays == [0.1, 0.2, 0.4, 0.8, 1.0, 1.0]

    def test_jitter_stays_within_its_band(self):
        policy = BackoffPolicy(base=1.0, factor=1.0, cap=1.0, jitter=0.2)
        for delay in restart_delays(policy, "svc", attempts=64):
            assert 0.8 <= delay <= 1.2


class TestServiceSpec:
    def test_unknown_restart_policy_rejected(self):
        with pytest.raises(ValueError):
            ServiceSpec("s", ExecSpec("tools.True"), restart="sometimes")

    @pytest.mark.parametrize("policy,code,expected", [
        (PERMANENT, 0, True), (PERMANENT, 1, True),
        (TRANSIENT, 0, False), (TRANSIENT, 1, True),
        (ONE_SHOT, 0, False), (ONE_SHOT, 1, False),
    ])
    def test_should_restart_matrix(self, policy, code, expected):
        spec = ServiceSpec("s", ExecSpec("tools.True"), restart=policy)
        assert spec.should_restart(code) is expected


class TestSupervision:
    def test_killed_permanent_service_respawns(self, mvm, supervised):
        supervised.add(ServiceSpec(
            "echoer", ExecSpec("tools.Sleep", ("30",)), backoff=FAST))
        with faults.injected() as injector:
            injector.kill_next(faults.POINT_HEARTBEAT, n=2,
                               service="echoer")
            supervised.start()
            service = supervised.service("echoer")
            assert wait_until(lambda: service.restarts >= 2)
            assert wait_until(lambda: service.app is not None)
        # Restart count is visible through /proc/super/services.
        text = read_text(mvm.initial.context(), "/proc/super/services")
        row = [line for line in text.splitlines()
               if line.startswith("echoer")][0]
        columns = row.split("\t")
        assert int(columns[3]) >= 2
        assert columns[2] == "permanent"
        # ...and the ExitStatus of the kill was recorded.
        assert service.last_exit.signal_like_cause == "killed"
        assert int(supervised.metrics.total("super.restarts")) >= 2

    def test_crash_loop_escalates_to_failed(self, mvm, supervised):
        supervised.add(ServiceSpec(
            "flappy", ExecSpec("tools.False"), backoff=FAST,
            max_restarts=3, restart_window=60.0))
        supervised.start()
        service = supervised.service("flappy")
        assert wait_until(lambda: service.state == SVC_FAILED)
        assert service.restarts == 3
        assert int(supervised.metrics.total("super.escalations")) == 1

    def test_one_shot_runs_once(self, supervised):
        supervised.add(ServiceSpec(
            "once", ExecSpec("tools.False"), restart=ONE_SHOT))
        supervised.start()
        service = supervised.service("once")
        assert wait_until(lambda: service.state == SVC_DONE)
        assert service.restarts == 0
        assert service.last_exit.code == 1

    def test_transient_stops_on_clean_exit(self, supervised):
        supervised.add(ServiceSpec(
            "job", ExecSpec("tools.True"), restart=TRANSIENT,
            backoff=FAST))
        supervised.start()
        service = supervised.service("job")
        assert wait_until(lambda: service.state == SVC_DONE)
        assert service.last_exit.code == 0

    def test_missed_heartbeat_marks_degraded(self, supervised):
        supervised.add(ServiceSpec(
            "watchdogged", ExecSpec("tools.Sleep", ("30",)),
            backoff=FAST,
            probe=HealthProbe(heartbeat_deadline=0.02)))
        supervised.start()
        service = supervised.service("watchdogged")
        # The only beat is the launch one; the deadline then lapses.
        assert wait_until(lambda: service.state == SVC_DEGRADED)
        assert int(supervised.metrics.total("super.degraded")) >= 1
        # Fresh beats restore the service to running.
        assert wait_until(
            lambda: (service.beat(), service.state != SVC_DEGRADED)[1])

    def test_liveness_probe_failure_marks_degraded(self, supervised):
        supervised.add(ServiceSpec(
            "probed", ExecSpec("tools.Sleep", ("30",)), backoff=FAST,
            probe=HealthProbe(liveness=lambda app: False)))
        supervised.start()
        service = supervised.service("probed")
        assert wait_until(lambda: service.state == SVC_DEGRADED)

    def test_injected_launch_failure_counts_as_restart(self, supervised):
        with faults.injected() as injector:
            injector.fail_next(faults.POINT_APP_START, n=2,
                               class_name="tools.Sleep")
            supervised.add(ServiceSpec(
                "fragile", ExecSpec("tools.Sleep", ("30",)),
                backoff=FAST))
            supervised.start()
            service = supervised.service("fragile")
            assert wait_until(lambda: service.restarts >= 2)
            assert wait_until(lambda: service.app is not None)
            assert injector.fires(faults.POINT_APP_START) == 2

    def test_stop_and_start_service(self, mvm, supervised):
        supervised.add(ServiceSpec(
            "svc1", ExecSpec("tools.Sleep", ("30",)), backoff=FAST))
        supervised.start()
        service = supervised.service("svc1")
        assert wait_until(lambda: service.app is not None)
        supervised.stop_service("svc1")
        assert wait_until(lambda: service.state == SVC_STOPPED)
        assert service.app is None
        supervised.start_service("svc1")
        assert wait_until(lambda: service.app is not None)

    def test_services_die_with_the_supervisor(self, mvm, supervised):
        supervised.add(ServiceSpec(
            "child", ExecSpec("tools.Sleep", ("30",)), backoff=FAST))
        supervised.start()
        service = supervised.service("child")
        assert wait_until(lambda: service.app is not None)
        app = service.app
        supervised.shutdown()
        assert wait_until(lambda: app.terminated)


class TestSvcTool:
    def test_svc_status_stop_start(self, mvm, host, capture):
        supervisor = Supervisor(mvm, probe_interval=0.01)
        try:
            supervisor.add(ServiceSpec(
                "webish", ExecSpec("tools.Sleep", ("30",)),
                backoff=FAST))
            supervisor.start()
            service = supervisor.service("webish")
            assert wait_until(lambda: service.app is not None)

            out = capture()
            status = mvm.launch(ExecSpec("tools.Svc", ("status",),
                                         stdout=out.stream))
            assert status.wait(5).code == 0
            assert "webish" in out.text and "running" in out.text

            stop = mvm.launch(ExecSpec("tools.Svc", ("stop", "webish")))
            assert stop.wait(5).code == 0
            assert wait_until(lambda: service.state == SVC_STOPPED)

            start = mvm.launch(ExecSpec("tools.Svc", ("start", "webish")))
            assert start.wait(5).code == 0
            assert wait_until(lambda: service.app is not None)

            bad = mvm.launch(ExecSpec("tools.Svc", ("stop", "nope")))
            assert bad.wait(5).code == 1
        finally:
            supervisor.shutdown()

    def test_svc_status_without_supervisor(self, mvm, host, capture):
        out = capture()
        status = mvm.launch(ExecSpec("tools.Svc", (),
                                     stdout=out.stream))
        assert status.wait(5).code == 0
        assert "no supervisor" in out.text
