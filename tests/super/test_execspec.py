"""The unified launch surface: ExecSpec routing, ExitStatus, shims."""

import warnings

import pytest

import repro
from repro.core.application import Application, ExitStatus
from repro.core.execspec import ExecSpec, Placement, launch, spec_fields
from repro.jvm.errors import (
    IllegalArgumentException,
    IllegalStateException,
)

pytestmark = pytest.mark.supervision


class TestSpec:
    def test_exported_from_the_package_root(self):
        for name in ("ExecSpec", "Placement", "launch", "ExitStatus",
                     "Supervisor", "ServiceSpec", "BackoffPolicy",
                     "AdmissionPolicy", "AdmissionRejected"):
            assert name in repro.__all__
            assert getattr(repro, name) is not None

    def test_args_normalise_to_a_tuple(self):
        spec = ExecSpec("tools.Echo", ["a", "b"])
        assert spec.args == ("a", "b")

    def test_class_name_required(self):
        with pytest.raises(IllegalArgumentException):
            ExecSpec("")

    def test_state_overrides_skip_unset_fields(self):
        spec = ExecSpec("tools.Echo", cwd="/tmp", name="echo")
        assert spec.state_overrides() == {"cwd": "/tmp", "name": "echo"}

    def test_user_name_accepts_string_or_user(self):
        assert ExecSpec("t.C").user_name() == ""
        assert ExecSpec("t.C", user="alice").user_name() == "alice"

        class U:
            name = "bob"
        assert ExecSpec("t.C", user=U()).user_name() == "bob"

    def test_with_placement_rebinds_routing_only(self):
        spec = ExecSpec("t.C", ("x",))
        remote = spec.with_placement(Placement.remote("hostB"))
        assert remote.placement.kind == "remote"
        assert remote.class_name == "t.C" and remote.args == ("x",)
        assert spec.placement.kind == "local"

    def test_spec_fields_cover_the_legacy_surfaces(self):
        names = spec_fields()
        for legacy in ("user", "stdin", "stdout", "stderr", "cwd",
                       "properties", "limits", "password"):
            assert legacy in names


class TestRouting:
    def test_local_launch_returns_exit_status(self, mvm, host, capture):
        out = capture()
        app = mvm.launch(ExecSpec("tools.Echo", ("hi",),
                                  stdout=out.stream))
        status = app.wait(5)
        assert isinstance(status, ExitStatus)
        assert status.code == 0 and status.ok
        assert status.signal_like_cause is None
        assert status.duration >= 0
        assert out.text == "hi\n"

    def test_destroyed_app_reports_killed_cause(self, mvm, host):
        app = mvm.launch(ExecSpec("tools.Sleep", ("30",)))
        app.destroy()
        status = app.wait(5)
        assert status.code == 143 and not status.ok
        assert status.signal_like_cause == "killed"

    def test_wait_for_still_returns_the_bare_int(self, mvm, host):
        app = mvm.launch(ExecSpec("tools.True", ()))
        assert app.wait_for(5) == 0

    def test_ctx_launch_from_inside_an_application(self, mvm, host,
                                                   register_app, capture):
        out = capture()

        def main(jclass, ctx, args):
            child = ctx.launch(ExecSpec("tools.Echo", ("nested",)))
            return child.wait(5).code

        class_name = register_app("Launcher", main)
        app = mvm.launch(ExecSpec(class_name, (), stdout=out.stream))
        assert app.wait(5).code == 0

    def test_cluster_placement_without_cluster_raises(self, mvm, host):
        with pytest.raises(IllegalStateException):
            mvm.launch(ExecSpec("tools.Echo", (),
                                placement=Placement.cluster()))

    def test_remote_placement_needs_a_host(self, mvm, host):
        with pytest.raises(IllegalArgumentException):
            launch(ExecSpec("tools.Echo", (),
                            placement=Placement(kind="remote")),
                   vm=mvm.vm)

    def test_unknown_placement_kind_raises(self, mvm, host):
        with pytest.raises(IllegalArgumentException):
            launch(ExecSpec("tools.Echo", (),
                            placement=Placement(kind="warp")),
                   vm=mvm.vm)


class TestDeprecatedShims:
    def test_application_exec_warns_and_still_works(self, mvm, host):
        with pytest.warns(DeprecationWarning,
                          match=r"Application\.exec\(\) is deprecated"):
            app = Application.exec("tools.True", [])
        assert app.wait_for(5) == 0

    def test_mvm_exec_warns_and_still_works(self, mvm, host, capture):
        out = capture()
        with pytest.warns(DeprecationWarning,
                          match=r"MultiProcVM\.exec\(\) is deprecated"):
            app = mvm.exec("tools.Echo", ["legacy"], stdout=out.stream)
        assert app.wait_for(5) == 0
        assert out.text == "legacy\n"

    def test_internal_paths_do_not_warn(self, mvm, host):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            app = mvm.launch(ExecSpec("tools.True", ()))
            assert app.wait(5).code == 0
