"""Supervision satellites over the wire: limits travel, typed shedding.

Two multi-processing JVMs on one fabric, exactly like the dist tests;
JVM B additionally runs an admission controller, so this file proves
(1) ResourceLimits given to a remote/cluster launch are enforced on the
*target* VM, and (2) an overloaded VM sheds remote launches with a typed
AdmissionRejected instead of a generic RemoteException.
"""

import time

import pytest

from repro.core.application import ResourceLimitExceeded, ResourceLimits
from repro.core.execspec import ExecSpec, Placement
from repro.core.launcher import MultiProcVM
from repro.dist.protocol import limits_from_wire, limits_to_wire
from repro.net.fabric import NetworkFabric
from repro.super.admission import AdmissionPolicy, AdmissionRejected
from repro.unixfs.machine import standard_process
from tests.conftest import make_app

pytestmark = pytest.mark.supervision

HOST_A = "vm-a.example.com"
HOST_B = "vm-b.example.com"
PORT = 7100


def _boot_pair(admission=None):
    fabric = NetworkFabric()
    mvm_a = MultiProcVM.boot(
        os_context=standard_process(hostname=HOST_A), network=fabric)
    mvm_b = MultiProcVM.boot(
        os_context=standard_process(hostname=HOST_B), network=fabric,
        admission=admission)
    with mvm_b.host_session():
        mvm_b.launch(ExecSpec("dist.RexecDaemon", (str(PORT),)))
    deadline = time.monotonic() + 5
    while time.monotonic() < deadline:
        if fabric.resolve(HOST_B)._listener(PORT) is not None:
            break
        time.sleep(0.01)
    assert fabric.resolve(HOST_B)._listener(PORT) is not None
    return fabric, mvm_a, mvm_b


@pytest.fixture
def pair():
    fabric, mvm_a, mvm_b = _boot_pair()
    yield mvm_a, mvm_b
    mvm_a.shutdown()
    mvm_b.shutdown()


@pytest.fixture
def throttled_pair():
    """B admits exactly one launch beyond its rexec daemon: none."""
    fabric, mvm_a, mvm_b = _boot_pair(
        admission=AdmissionPolicy(max_running=1))
    yield mvm_a, mvm_b
    mvm_a.shutdown()
    mvm_b.shutdown()


class TestLimitsOnTheWire:
    def test_wire_round_trip(self):
        limits = ResourceLimits(max_threads=3, max_children=1)
        wire = limits_to_wire(limits)
        assert wire == {"max_threads": 3, "max_children": 1}
        back = limits_from_wire(wire)
        assert back.max_threads == 3 and back.max_children == 1
        assert back.max_windows is None

    def test_wire_parse_tolerates_junk(self):
        assert limits_from_wire(None) is None
        assert limits_from_wire("nonsense") is None
        assert limits_from_wire({}) is None
        parsed = limits_from_wire(
            {"max_threads": 2, "max_windows": "many", "bogus": 9,
             "max_children": -1, "max_open_streams": True})
        assert parsed.max_threads == 2
        assert parsed.max_windows is None
        assert parsed.max_open_streams is None

    def test_remote_launch_enforces_limits_on_the_target(self, pair):
        mvm_a, mvm_b = pair

        def main(jclass, ctx, args):
            from repro.jvm.threads import JThread
            try:
                for _ in range(4):
                    thread = JThread(target=lambda: JThread.sleep(0.2))
                    thread.start()
            except ResourceLimitExceeded:
                ctx.stdout.println("limited")
                return 0
            ctx.stdout.println("unlimited")
            return 0

        class_name = make_app(mvm_b.vm, "ThreadHog", main)
        with mvm_a.host_session():
            remote = mvm_a.launch(ExecSpec(
                class_name, (), user="alice", password="wonderland",
                limits=ResourceLimits(max_threads=2),
                placement=Placement.remote(HOST_B, PORT)))
            assert remote.wait_for(10) == 0
        assert remote.output_text().strip() == "limited"

    def test_remote_launch_without_limits_is_unbounded(self, pair):
        mvm_a, mvm_b = pair

        def main(jclass, ctx, args):
            from repro.jvm.threads import JThread
            try:
                threads = [JThread(target=lambda: JThread.sleep(0.05))
                           for _ in range(4)]
                for thread in threads:
                    thread.start()
            except ResourceLimitExceeded:
                ctx.stdout.println("limited")
                return 0
            ctx.stdout.println("unlimited")
            return 0

        class_name = make_app(mvm_b.vm, "ThreadHog", main)
        with mvm_a.host_session():
            remote = mvm_a.launch(ExecSpec(
                class_name, (), user="alice", password="wonderland",
                placement=Placement.remote(HOST_B, PORT)))
            assert remote.wait_for(10) == 0
        assert remote.output_text().strip() == "unlimited"


class TestRemoteShedding:
    def test_overloaded_vm_sheds_with_typed_error(self, throttled_pair):
        mvm_a, mvm_b = throttled_pair
        with mvm_a.host_session():
            remote = mvm_a.launch(ExecSpec(
                "tools.Echo", ("hi",), user="alice",
                password="wonderland",
                placement=Placement.remote(HOST_B, PORT)))
            with pytest.raises(AdmissionRejected) as excinfo:
                remote.wait_for(10)
            assert excinfo.value.reason == "remote"
        # The rejection is recorded on the *target* VM.
        assert mvm_b.vm.admission.rejected >= 1
