"""Admission control: capacity, quotas, typed shedding, no deadlocks."""

import threading
import time

import pytest

from repro.core.execspec import ExecSpec
from repro.io.file import read_text
from repro.super.admission import (
    AdmissionController,
    AdmissionPolicy,
    AdmissionRejected,
)

pytestmark = pytest.mark.supervision


@pytest.fixture
def controller(mvm):
    def make(policy):
        return AdmissionController(mvm.vm, policy)
    return make


class TestBounds:
    def test_admit_and_release_track_occupancy(self, controller):
        ctrl = controller(AdmissionPolicy(max_running=2))
        a = ctrl.admit("alice")
        b = ctrl.admit("bob")
        assert ctrl.stats()["running"] == 2
        a.release()
        b.release()
        assert ctrl.stats()["running"] == 0
        assert ctrl.stats()["by_user"] == {}

    def test_release_is_idempotent(self, controller):
        ctrl = controller(AdmissionPolicy(max_running=1))
        ticket = ctrl.admit("alice")
        ticket.release()
        ticket.release()
        assert ctrl.stats()["running"] == 0

    def test_capacity_shed_without_timeout(self, controller):
        ctrl = controller(AdmissionPolicy(max_running=1))
        ctrl.admit("alice")
        with pytest.raises(AdmissionRejected) as excinfo:
            ctrl.admit("bob")
        assert excinfo.value.reason == "capacity"
        assert excinfo.value.user == "bob"

    def test_timeout_shed_names_its_reason(self, controller):
        ctrl = controller(AdmissionPolicy(max_running=1))
        ctrl.admit("alice")
        start = time.monotonic()
        with pytest.raises(AdmissionRejected) as excinfo:
            ctrl.admit("bob", timeout=0.05)
        assert excinfo.value.reason == "timeout"
        assert time.monotonic() - start < 5  # bounded, never forever

    def test_queue_full_sheds_before_queuing(self, controller):
        ctrl = controller(AdmissionPolicy(max_running=1, max_queued=0))
        ctrl.admit("alice")
        with pytest.raises(AdmissionRejected) as excinfo:
            ctrl.admit("bob", timeout=5)
        assert excinfo.value.reason == "queue-full"

    def test_user_concurrency_sheds_even_with_timeout(self, controller):
        ctrl = controller(AdmissionPolicy(per_user_running=1))
        ctrl.admit("alice")
        with pytest.raises(AdmissionRejected) as excinfo:
            ctrl.admit("alice", timeout=5)
        assert excinfo.value.reason == "user-concurrency"
        ctrl.admit("bob")  # other users are unaffected

    def test_per_user_quota_override(self, controller):
        ctrl = controller(AdmissionPolicy(per_user_running=1))
        ctrl.set_user_quota("alice", running=3)
        for _ in range(3):
            ctrl.admit("alice")
        with pytest.raises(AdmissionRejected):
            ctrl.admit("alice")


class TestQueue:
    def test_release_grants_a_waiter(self, controller):
        ctrl = controller(AdmissionPolicy(max_running=1))
        first = ctrl.admit("alice")
        admitted = threading.Event()

        def waiter():
            ctrl.admit("bob", timeout=10)
            admitted.set()

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        deadline = time.monotonic() + 5
        while ctrl.stats()["waiting"] == 0:
            assert time.monotonic() < deadline
            time.sleep(0.005)
        first.release()
        assert admitted.wait(5)
        thread.join(5)
        assert ctrl.stats()["running"] == 1

    def test_user_queue_quota_bounds_waiters(self, controller):
        ctrl = controller(AdmissionPolicy(max_running=1,
                                          per_user_queued=1))
        ctrl.admit("alice")
        started = threading.Event()

        def waiter():
            started.set()
            with pytest.raises(AdmissionRejected):
                ctrl.admit("bob", timeout=0.5)

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        started.wait(5)
        deadline = time.monotonic() + 5
        while ctrl.stats()["waiting"] == 0:
            assert time.monotonic() < deadline
            time.sleep(0.005)
        with pytest.raises(AdmissionRejected) as excinfo:
            ctrl.admit("bob", timeout=0.5)
        assert excinfo.value.reason == "user-queue"
        thread.join(5)

    def test_grant_scan_skips_a_quota_blocked_waiter(self, controller):
        """One saturated user must not head-of-line-block the queue."""
        ctrl = controller(AdmissionPolicy(max_running=2,
                                          per_user_running=1))
        first = ctrl.admit("alice")
        ctrl.set_user_quota("alice", running=2)
        second = ctrl.admit("alice")
        results = {}
        events = {name: threading.Event() for name in ("bob1", "bob2",
                                                       "carol")}

        def waiter(name, user):
            try:
                results[name] = ctrl.admit(user, timeout=10)
            except AdmissionRejected as exc:
                results[name] = exc
            events[name].set()

        threads = []
        for name, user in (("bob1", "bob"), ("bob2", "bob"),
                           ("carol", "carol")):
            thread = threading.Thread(target=waiter, args=(name, user),
                                      daemon=True)
            thread.start()
            threads.append(thread)
            deadline = time.monotonic() + 5
            while ctrl.stats()["waiting"] < len(threads):
                assert time.monotonic() < deadline
                time.sleep(0.005)

        first.release()
        second.release()
        assert events["bob1"].wait(5)
        assert events["carol"].wait(5)
        # bob2 is still waiting: bob's quota is taken by bob1, but carol
        # was granted past him.
        assert not events["bob2"].is_set()
        results["bob1"].release()
        assert events["bob2"].wait(5)
        results["bob2"].release()
        results["carol"].release()
        for thread in threads:
            thread.join(5)


class TestVMIntegration:
    def test_saturated_vm_sheds_launches(self):
        from repro.core.launcher import MultiProcVM
        mvm = MultiProcVM.boot(admission=AdmissionPolicy(max_running=1))
        try:
            with mvm.host_session():
                blocker = mvm.launch(ExecSpec("tools.Sleep", ("30",)))
                with pytest.raises(AdmissionRejected) as excinfo:
                    mvm.launch(ExecSpec("tools.Echo", ("hi",)))
                assert excinfo.value.reason == "capacity"
                blocker.destroy()
                assert blocker.wait(5) is not None
                # The exit hook released the slot: launches flow again.
                echo = mvm.launch(ExecSpec("tools.Echo", ("hi",)))
                assert echo.wait(5).code == 0
        finally:
            mvm.shutdown()

    def test_admission_timeout_queues_until_a_slot_frees(self):
        from repro.core.launcher import MultiProcVM
        mvm = MultiProcVM.boot(admission=AdmissionPolicy(max_running=1))
        try:
            with mvm.host_session():
                blocker = mvm.launch(ExecSpec("tools.Sleep", ("30",)))
                timer = threading.Timer(0.1, blocker.destroy)
                timer.start()
                try:
                    queued = mvm.launch(ExecSpec(
                        "tools.Echo", ("made", "it"),
                        admission_timeout=10))
                    assert queued.wait(5).code == 0
                finally:
                    timer.cancel()
        finally:
            mvm.shutdown()

    def test_procfs_and_vmstat_report_admission(self):
        from repro.core.launcher import MultiProcVM
        mvm = MultiProcVM.boot(admission=AdmissionPolicy(max_running=1))
        try:
            with mvm.host_session():
                blocker = mvm.launch(ExecSpec("tools.Sleep", ("30",)))
                with pytest.raises(AdmissionRejected):
                    mvm.launch(ExecSpec("tools.Echo", ()))
                ctx = mvm.initial.context()
                text = read_text(ctx, "/proc/super/admission")
                assert "rejected\t1" in text
                assert "max_running\t1" in text
                vmstat = read_text(ctx, "/proc/vmstat")
                assert "admission.rejected\t1" in vmstat
                blocker.destroy()
        finally:
            mvm.shutdown()
