"""Experiment F4/C3: per-application event dispatching (Section 5.4).

"When an event occurs in a GUI element, the enclosing window and its
application are found.  Then, the AWT event is put on the particular event
queue of that application, where it will be picked up and dispatched by a
thread that belongs to that application."
"""

import time

from repro.awt.components import Button, Frame
from repro.core.context import current_application_or_none
from repro.jvm.threads import JThread


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


def gui_app(name, on_click=None, exits_itself=True):
    """App material: a frame + button; records the callback's identity."""
    record = {"commands": [], "threads": [], "apps": []}

    def main(jclass, ctx, args):
        frame = Frame(f"win-{name}", name=f"frame-{name}")
        button = Button("Go", name=f"button-{name}")

        def handler(event):
            record["commands"].append(event.command)
            record["threads"].append(JThread.current())
            record["apps"].append(current_application_or_none())
            if on_click is not None:
                on_click(event)

        button.add_action_listener(handler)
        frame.add(button)
        frame.show(ctx.vm.toolkit)
        if exits_itself:
            while not record["commands"]:
                JThread.sleep(0.01)
            frame.dispose()
            # Section 5.4: "An application that does use the AWT has to
            # call Application.exit() in order to finish" — the per-app
            # EDT is non-daemon and would keep the application alive.
            from repro.core.application import Application
            Application.exit(0)
        return 0

    return record, main


def test_callback_runs_in_owning_application(host, register_app):
    record, main = gui_app("a")
    class_name = register_app("GuiA", main)
    app = host.exec(class_name)
    xserver = host.toolkit.xserver
    assert wait_for(lambda: xserver.find_window("win-a") is not None)
    xserver.click_component(xserver.find_window("win-a"), "button-a")
    assert app.wait_for(5) == 0
    assert record["apps"] == [app]
    thread = record["threads"][0]
    assert thread.group is app.thread_group
    assert thread.name == f"AWT-EventDispatch-{app.name}"


def test_each_application_has_its_own_dispatcher(host, register_app):
    record_a, main_a = gui_app("a")
    record_b, main_b = gui_app("b")
    app_a = host.exec(register_app("GuiA", main_a))
    app_b = host.exec(register_app("GuiB", main_b))
    xserver = host.toolkit.xserver
    assert wait_for(lambda: xserver.find_window("win-a") is not None)
    assert wait_for(lambda: xserver.find_window("win-b") is not None)
    xserver.click_component(xserver.find_window("win-a"), "button-a")
    xserver.click_component(xserver.find_window("win-b"), "button-b")
    assert app_a.wait_for(5) == 0
    assert app_b.wait_for(5) == 0
    assert record_a["threads"][0] is not record_b["threads"][0]
    assert record_a["apps"] == [app_a]
    assert record_b["apps"] == [app_b]


def test_responsiveness_isolation(host, register_app):
    """"This redesign also improves responsiveness, as each application's
    event dispatching is now independent from other applications" — a
    blocking callback in A must not delay B's events."""
    block = {"held": True}

    def slow_click(event):
        while block["held"]:
            JThread.sleep(0.01)

    record_a, main_a = gui_app("a", on_click=slow_click)
    record_b, main_b = gui_app("b")
    app_a = host.exec(register_app("SlowGui", main_a))
    app_b = host.exec(register_app("FastGui", main_b))
    xserver = host.toolkit.xserver
    assert wait_for(lambda: xserver.find_window("win-a") is not None)
    assert wait_for(lambda: xserver.find_window("win-b") is not None)
    # A's callback blocks...
    xserver.click_component(xserver.find_window("win-a"), "button-a")
    assert wait_for(lambda: record_a["commands"])
    # ... while B's event is still dispatched promptly.
    xserver.click_component(xserver.find_window("win-b"), "button-b")
    assert wait_for(lambda: record_b["commands"], timeout=2.0), \
        "B's dispatching must be independent of A's blocked callback"
    block["held"] = False
    assert app_a.wait_for(5) == 0
    assert app_b.wait_for(5) == 0


def test_edt_is_non_daemon_so_gui_app_needs_explicit_exit(host,
                                                          register_app):
    """Section 5.4: "An application that does use the AWT has to call
    Application.exit() in order to finish" — the per-app EDT is a
    non-daemon thread in the app's group."""
    def main(jclass, ctx, args):
        frame = Frame("win-gui", name="frame-gui")
        frame.show(ctx.vm.toolkit)
        return 0  # main returns, but the EDT keeps the app alive

    app = host.exec(register_app("StickyGui", main))
    xserver = host.toolkit.xserver
    assert wait_for(lambda: xserver.find_window("win-gui") is not None)
    # Posting any event creates the EDT; the window registration already
    # did.  The app must NOT terminate on its own...
    assert app.wait_for(0.4) is None
    assert app.state == "running"
    # ... until destroyed explicitly (the Application.exit analogue).
    app.destroy(0)
    assert app.wait_for(5) == 0


def test_window_closed_by_reaper_on_exit(host, register_app):
    """Section 5.1: the reaper closes "all windows that are associated
    with the application"."""
    def main(jclass, ctx, args):
        frame = Frame("win-reaped", name="frame-reaped")
        frame.show(ctx.vm.toolkit)
        JThread.sleep(30.0)
        return 0

    app = host.exec(register_app("Reaped", main))
    xserver = host.toolkit.xserver
    assert wait_for(lambda: xserver.find_window("win-reaped") is not None)
    app.destroy()
    app.wait_for(5)
    assert wait_for(lambda: xserver.find_window("win-reaped") is None)


def test_application_of_window_recorded_at_show(host, register_app):
    """Section 5.4: "When an application opens a window, the system makes
    note about which application the window belongs to"."""
    def main(jclass, ctx, args):
        frame = Frame("win-owner", name="frame-owner")
        frame.show(ctx.vm.toolkit)
        JThread.sleep(30.0)
        return 0

    app = host.exec(register_app("Owner", main))
    assert wait_for(
        lambda: host.toolkit.window_id_by_title("win-owner") is not None)
    windows = host.toolkit.windows_of(app)
    assert len(windows) == 1
    assert windows[0].application is app
    app.destroy()
    app.wait_for(5)
