"""Experiment F6: system-thread placement and toolkit plumbing (§5.4)."""

import time

import pytest

from repro.awt.components import Frame
from repro.awt.toolkit import CENTRALIZED, PER_APPLICATION
from repro.core.launcher import MultiProcVM
from repro.jvm.errors import IllegalArgumentException
from repro.jvm.threads import JThread
from tests.conftest import make_app


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


def window_opener(title):
    def main(jclass, ctx, args):
        frame = Frame(title, name=f"frame-{title}")
        frame.show(ctx.vm.toolkit)
        JThread.sleep(30.0)
        return 0

    return main


class TestXThreadPlacement:
    def test_fixed_mode_uses_system_group(self):
        """Section 5.4: "these threads are created in a special system
        thread group, which does not belong to any application"."""
        mvm = MultiProcVM.boot(legacy_thread_placement=False)
        try:
            with mvm.host_session():
                class_name = make_app(mvm.vm, "Opener",
                                      window_opener("w-fixed"))
                app = mvm.exec(class_name)
                assert wait_for(lambda: mvm.toolkit.x_thread_group
                                is not None)
                assert mvm.toolkit.x_thread_group is mvm.vm.root_group
                app.destroy()
                app.wait_for(5)
        finally:
            mvm.shutdown()

    def test_legacy_mode_uses_current_group(self):
        """Feature 6's bug, reproduced on demand: the X thread lands in
        whatever group is current — i.e. the first GUI application's."""
        mvm = MultiProcVM.boot(legacy_thread_placement=True)
        try:
            with mvm.host_session():
                class_name = make_app(mvm.vm, "Opener",
                                      window_opener("w-legacy"))
                app = mvm.exec(class_name)
                assert wait_for(lambda: mvm.toolkit.x_thread_group
                                is not None)
                assert mvm.toolkit.x_thread_group is app.thread_group, \
                    "legacy placement ties the X thread to the first app"
                app.destroy()
                app.wait_for(5)
        finally:
            mvm.shutdown()


class TestToolkitPlumbing:
    def test_invalid_dispatch_mode(self, mvm):
        from repro.awt.toolkit import Toolkit
        with pytest.raises(IllegalArgumentException):
            Toolkit(mvm.vm, dispatch_mode="bogus")

    def test_invoke_and_wait_runs_on_dispatcher(self, host, register_app):
        seen = []

        def main(jclass, ctx, args):
            frame = Frame("w-invoke", name="frame-invoke")
            frame.show(ctx.vm.toolkit)
            JThread.sleep(30.0)
            return 0

        app = host.exec(register_app("Invoker", main))
        assert wait_for(
            lambda: host.toolkit.window_id_by_title("w-invoke") is not None)
        host.toolkit.invoke_and_wait(
            lambda: seen.append(JThread.current().name), application=app)
        assert seen and seen[0].startswith("AWT-EventDispatch-")
        app.destroy()
        app.wait_for(5)

    def test_invoke_and_wait_propagates_exception(self, host, register_app):
        def main(jclass, ctx, args):
            frame = Frame("w-exc", name="frame-exc")
            frame.show(ctx.vm.toolkit)
            JThread.sleep(30.0)
            return 0

        app = host.exec(register_app("Thrower", main))
        assert wait_for(
            lambda: host.toolkit.window_id_by_title("w-exc") is not None)

        def boom():
            raise ValueError("from the dispatcher")

        with pytest.raises(ValueError):
            host.toolkit.invoke_and_wait(boom, application=app)
        app.destroy()
        app.wait_for(5)

    def test_events_for_disposed_window_dropped(self, host, register_app):
        def main(jclass, ctx, args):
            frame = Frame("w-gone", name="frame-gone")
            frame.show(ctx.vm.toolkit)
            JThread.sleep(30.0)
            return 0

        app = host.exec(register_app("Goner", main))
        xserver = host.toolkit.xserver
        assert wait_for(lambda: xserver.find_window("w-gone") is not None)
        window_id = xserver.find_window("w-gone")
        app.destroy()
        app.wait_for(5)
        # The X server no longer knows the window; injecting raises there,
        # but a stale id raced into the toolkit is simply dropped.
        with pytest.raises(IllegalArgumentException):
            xserver.click_component(window_id, "frame-gone")

    def test_multiple_windows_per_application(self, host, register_app):
        def main(jclass, ctx, args):
            for index in range(3):
                Frame(f"multi-{index}",
                      name=f"frame-multi-{index}").show(ctx.vm.toolkit)
            JThread.sleep(30.0)
            return 0

        app = host.exec(register_app("Multi", main))
        assert wait_for(lambda: len(host.toolkit.windows_of(app)) == 3)
        app.destroy()
        app.wait_for(5)
        assert host.toolkit.windows_of(app) == []
