"""The simulated X server: registry, draw notes, input routing (§3.2)."""

import pytest

from repro.awt.xserver import XConnection, XServer
from repro.jvm.errors import IllegalArgumentException


@pytest.fixture
def server():
    return XServer()


@pytest.fixture
def connection():
    return XConnection("jvm-1")


class TestWindowRegistry:
    def test_create_and_lookup(self, server, connection):
        wid = server.create_window(connection, "Editor")
        assert wid in server.window_ids()
        assert server.window_title(wid) == "Editor"
        assert server.find_window("Editor") == wid
        assert server.find_window("Nope") is None

    def test_destroy(self, server, connection):
        wid = server.create_window(connection, "T")
        server.destroy_window(wid)
        assert wid not in server.window_ids()
        with pytest.raises(IllegalArgumentException):
            server.window_title(wid)

    def test_ids_unique(self, server, connection):
        ids = {server.create_window(connection, f"w{i}") for i in range(5)}
        assert len(ids) == 5


class TestDrawNotes:
    def test_draws_recorded_per_window(self, server, connection):
        """"making note which GUI component it drew on behalf of which
        application" — the per-window draw log."""
        a = server.create_window(connection, "A")
        b = server.create_window(connection, "B")
        server.record_draw(a, {"component": "lbl", "op": "text"})
        server.record_draw(b, {"component": "btn", "op": "rect"})
        assert server.draw_ops(a) == [{"component": "lbl", "op": "text"}]
        assert server.draw_ops(b) == [{"component": "btn", "op": "rect"}]


class TestInputRouting:
    def test_events_delivered_to_owning_connection(self, server):
        """"the X server will figure out which GUI component was the target
        of that input and notify the appropriate process"."""
        conn_a, conn_b = XConnection("jvm-a"), XConnection("jvm-b")
        window_a = server.create_window(conn_a, "A")
        window_b = server.create_window(conn_b, "B")
        server.send_key(window_a, "field", "x")
        server.click_component(window_b, "button")
        message_a = conn_a.receive()
        message_b = conn_b.receive()
        assert message_a == {"type": "key", "component": "field",
                             "char": "x", "window": window_a}
        assert message_b["type"] == "mouse"
        assert message_b["window"] == window_b

    def test_type_text_is_per_char(self, server, connection):
        wid = server.create_window(connection, "T")
        server.type_text(wid, "f", "ab")
        chars = [connection.receive()["char"] for _ in range(2)]
        assert chars == ["a", "b"]

    def test_menu_selection_and_window_close(self, server, connection):
        wid = server.create_window(connection, "T")
        server.select_menu_item(wid, "Save File")
        server.request_close(wid)
        first = connection.receive()
        second = connection.receive()
        assert first["type"] == "action"
        assert first["command"] == "Save File"
        assert second["type"] == "window-closing"

    def test_input_to_unknown_window_rejected(self, server):
        with pytest.raises(IllegalArgumentException):
            server.send_key(999, "c", "x")

    def test_request_log(self, server, connection):
        wid = server.create_window(connection, "T")
        server.click(wid, 10, 20)
        message = connection.receive()
        assert (message["x"], message["y"]) == (10, 20)


class TestXConnection:
    def test_close_unblocks_receiver(self, connection):
        connection.close()
        assert connection.receive() is None
        assert connection.closed

    def test_deliver_after_close_dropped(self, connection):
        connection.close()
        connection.deliver({"type": "key"})
        assert connection.receive() is None
