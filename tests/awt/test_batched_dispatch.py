"""Batched event dispatch: drain-all retrieval and repaint coalescing.

One dispatcher wakeup now drains the queue's whole backlog, and within
a batch superseded repaints collapse last-writer-wins per component —
the data-plane treatment for the remote-playground paint storms the
Malkhi–Reiter line of work streams over dist frames.
"""

import threading
import time

from repro.awt.dispatch import EventDispatchThread, coalesce_repaints
from repro.awt.events import (
    ActionEvent,
    EventQueue,
    InvocationEvent,
    PaintEvent,
)
from repro.jvm.threads import JThread, ThreadGroup


class Probe:
    """Counts deliveries per event type and records the order."""

    def __init__(self, name="probe"):
        self.name = name
        self.order = []
        self.done = threading.Event()

    def process_event(self, event):
        self.order.append(event)
        if getattr(event, "command", None) == "sentinel":
            self.done.set()


class TestDrainEvents:
    def test_returns_whole_backlog(self):
        queue = EventQueue("drain")
        probe = Probe()
        events = [ActionEvent(probe, str(index)) for index in range(5)]
        for event in events:
            queue.post_event(event)
        assert queue.drain_events() == events
        assert queue.pending() == 0

    def test_none_after_close_and_drain(self):
        queue = EventQueue("drain")
        probe = Probe()
        queue.post_event(ActionEvent(probe, "last"))
        queue.close()
        batch = queue.drain_events()
        assert [event.command for event in batch] == ["last"]
        assert queue.drain_events() is None

    def test_blocks_until_first_post(self):
        root = ThreadGroup(None, "system")
        queue = EventQueue("drain")
        probe = Probe()
        got = []

        def drain():
            got.append(queue.drain_events())

        thread = JThread(target=drain, group=root)
        thread.start()
        thread.join(0.1)
        assert got == []  # parked on the empty queue
        queue.post_event(ActionEvent(probe, "wake"))
        thread.join(5)
        assert [event.command for event in got[0]] == ["wake"]


class TestCoalesceRepaints:
    def test_last_paint_per_component_wins(self):
        alpha, beta = Probe("alpha"), Probe("beta")
        batch = [PaintEvent(alpha), PaintEvent(beta), PaintEvent(alpha),
                 PaintEvent(beta), PaintEvent(alpha)]
        kept, dropped = coalesce_repaints(batch)
        assert dropped == 3
        assert kept == [batch[3], batch[4]]

    def test_non_paint_events_and_order_preserved(self):
        probe = Probe()
        action = ActionEvent(probe, "click")
        invocation = InvocationEvent(lambda: None)
        final_paint = PaintEvent(probe)
        batch = [PaintEvent(probe), action, invocation, final_paint]
        kept, dropped = coalesce_repaints(batch)
        assert kept == [action, invocation, final_paint]
        assert dropped == 1

    def test_paint_subclass_keyed_separately(self):
        class DamagePaintEvent(PaintEvent):
            pass

        probe = Probe()
        plain, damage = PaintEvent(probe), DamagePaintEvent(probe)
        kept, dropped = coalesce_repaints([plain, damage])
        assert kept == [plain, damage]  # different types never merge
        assert dropped == 0

    def test_unique_paints_untouched(self):
        probes = [Probe(str(index)) for index in range(3)]
        batch = [PaintEvent(probe) for probe in probes]
        kept, dropped = coalesce_repaints(batch)
        assert kept is batch  # fast path: nothing to drop, no copy
        assert dropped == 0


class TestBatchedEdt:
    def test_burst_coalesces_but_last_paint_lands(self):
        root = ThreadGroup(None, "system")
        queue = EventQueue("burst")
        probe = Probe()
        edt = EventDispatchThread(queue, root, "edt-batch", daemon=True)
        edt.start()
        for _ in range(500):
            queue.post_event(PaintEvent(probe))
        queue.post_event(ActionEvent(probe, "sentinel"))
        assert probe.done.wait(10)
        edt.shutdown()
        edt.join(5)
        paints = [e for e in probe.order if isinstance(e, PaintEvent)]
        assert paints, "at least one repaint must always be delivered"
        assert len(paints) < 500, "a single-component storm must coalesce"
        # The surviving repaint of each drained batch is the newest one,
        # so the last paint overall is delivered at or after every kept
        # paint — the component never renders stale-then-silent.
        assert probe.order[-1].command == "sentinel"

    def test_invocation_events_never_dropped(self):
        root = ThreadGroup(None, "system")
        queue = EventQueue("invoke")
        probe = Probe()
        edt = EventDispatchThread(queue, root, "edt-invoke", daemon=True)
        edt.start()
        ran = []
        invocations = []
        for index in range(50):
            queue.post_event(PaintEvent(probe))
            event = InvocationEvent(lambda i=index: ran.append(i))
            invocations.append(event)
            queue.post_event(event)
        for event in invocations:
            assert event.await_completion(10)
        edt.shutdown()
        edt.join(5)
        assert ran == list(range(50))

    def test_errors_do_not_kill_the_batch(self):
        root = ThreadGroup(None, "system")
        queue = EventQueue("errors")
        probe = Probe()
        errors = []
        edt = EventDispatchThread(
            queue, root, "edt-errors", daemon=True,
            error_sink=lambda event, exc: errors.append(exc))

        class Exploding:
            def process_event(self, event):
                raise RuntimeError("listener bug")

        edt.start()
        queue.post_event(ActionEvent(Exploding(), "boom"))
        queue.post_event(ActionEvent(probe, "sentinel"))
        assert probe.done.wait(10)
        edt.shutdown()
        edt.join(5)
        assert len(errors) == 1 and "listener bug" in str(errors[0])

    def test_post_after_close_still_raises(self):
        queue = EventQueue("closed")
        queue.close()
        try:
            queue.post_event(ActionEvent(Probe(), "late"))
        except Exception as exc:
            assert "closed" in str(exc)
        else:
            raise AssertionError("post_event on a closed queue must raise")

    def test_slow_handler_batches_the_backlog(self):
        """While one dispatch runs, later posts pile up and arrive as a
        single drained batch (observable through coalescing)."""
        root = ThreadGroup(None, "system")
        queue = EventQueue("backlog")
        gate = threading.Event()

        class Stalling(Probe):
            def process_event(self, event):
                if getattr(event, "command", None) == "stall":
                    gate.wait(5)
                super().process_event(event)

        probe = Stalling()
        edt = EventDispatchThread(queue, root, "edt-stall", daemon=True)
        edt.start()
        queue.post_event(ActionEvent(probe, "stall"))
        time.sleep(0.05)  # the EDT is now inside the stalling handler
        for _ in range(100):
            queue.post_event(PaintEvent(probe))
        queue.post_event(ActionEvent(probe, "sentinel"))
        gate.set()
        assert probe.done.wait(10)
        edt.shutdown()
        edt.join(5)
        paints = [e for e in probe.order if isinstance(e, PaintEvent)]
        assert len(paints) == 1, \
            "the piled-up storm must collapse to the final repaint"
