"""Experiment F2: the classic centralized event dispatching of Figure 2.

"Note that all callbacks are called from a single event dispatcher
thread." — including callbacks belonging to *different* applications,
which is exactly the Feature 7 problem.
"""

import pytest

from repro.awt.components import Button, Frame
from repro.awt.toolkit import CENTRALIZED
from repro.core.launcher import MultiProcVM
from repro.jvm.threads import JThread
from repro.tools.terminal import TerminalDevice  # noqa: F401


@pytest.fixture
def mvm_central():
    booted = MultiProcVM.boot(dispatch_mode=CENTRALIZED)
    yield booted
    booted.shutdown()


def gui_app(register, name):
    """An app that opens a window with a button and records callbacks."""
    record = {"events": [], "threads": [], "apps": []}

    def main(jclass, ctx, args):
        frame = Frame(f"win-{name}", name=f"frame-{name}")
        button = Button("Go", name=f"button-{name}")

        def on_action(event):
            from repro.core.context import current_application_or_none
            record["events"].append(event.command)
            record["threads"].append(JThread.current())
            record["apps"].append(current_application_or_none())

        button.add_action_listener(on_action)
        frame.add(button)
        frame.show(ctx.vm.toolkit)
        while not record["events"] or len(record["events"]) < 1:
            JThread.sleep(0.01)
        frame.dispose()
        return 0

    return record, main


def wait_for(predicate, timeout=5.0):
    import time
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


def test_single_thread_dispatches_all_applications(mvm_central):
    from tests.conftest import make_app
    with mvm_central.host_session():
        record_a, main_a = gui_app(None, "a")
        record_b, main_b = gui_app(None, "b")
        class_a = make_app(mvm_central.vm, "GuiA", main_a)
        class_b = make_app(mvm_central.vm, "GuiB", main_b)
        app_a = mvm_central.exec(class_a)
        app_b = mvm_central.exec(class_b)
        xserver = mvm_central.toolkit.xserver
        assert wait_for(lambda: xserver.find_window("win-a") is not None)
        assert wait_for(lambda: xserver.find_window("win-b") is not None)
        xserver.click_component(xserver.find_window("win-a"), "button-a")
        xserver.click_component(xserver.find_window("win-b"), "button-b")
        assert app_a.wait_for(5) == 0
        assert app_b.wait_for(5) == 0
        # Figure 2: the very same thread executed both callbacks.
        assert record_a["threads"][0] is record_b["threads"][0]
        assert record_a["threads"][0].name == "AWT-EventDispatch"


def test_feature7_dispatcher_thread_belongs_to_no_application(mvm_central):
    """Feature 7: with centralized dispatch, "code that is executed as the
    result of user input is executed by a thread that does not belong to
    any particular application" — so there is no way to attribute Alice's
    Save-File callback to Alice."""
    from tests.conftest import make_app
    with mvm_central.host_session():
        record_b, main_b = gui_app(None, "b")
        class_b = make_app(mvm_central.vm, "GuiB", main_b)
        app_b = mvm_central.exec(class_b)
        xserver = mvm_central.toolkit.xserver
        assert wait_for(lambda: xserver.find_window("win-b") is not None)
        xserver.click_component(xserver.find_window("win-b"), "button-b")
        assert app_b.wait_for(5) == 0
        callback_app = record_b["apps"][0]
        assert callback_app is not app_b, \
            "the bug: B's callback did not run as application B"
        assert callback_app is None, \
            "the dispatcher thread belongs to no application at all"


def test_centralized_edt_started_on_demand(mvm_central):
    from repro.awt.dispatch import CentralizedDispatcher
    dispatcher = mvm_central.toolkit.dispatcher
    assert isinstance(dispatcher, CentralizedDispatcher)
    assert not dispatcher.started
