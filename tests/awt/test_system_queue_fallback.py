"""Events without a resolvable application fall back to the system EDT."""

import threading
import time

from repro.awt.events import AWTEvent, InvocationEvent


def test_invoke_later_without_application_uses_system_queue(mvm):
    done = threading.Event()
    names = []

    def runnable():
        from repro.jvm.threads import JThread
        names.append(JThread.current().name)
        done.set()

    mvm.toolkit.invoke_later(runnable, application=None)
    assert done.wait(5)
    assert names == ["AWT-EventDispatch-system"]


def test_events_for_terminated_application_rerouted(host, register_app):
    """An event that races an application's death must not be lost in a
    closed queue — it lands on the system dispatcher instead."""
    from repro.jvm.threads import JThread

    def main(jclass, ctx, args):
        JThread.sleep(30.0)
        return 0

    app = host.exec(register_app("DyingApp", main))
    app.destroy()
    app.wait_for(5)
    event = InvocationEvent(lambda: None)
    event.application = app  # stale reference, already terminated
    host.toolkit.dispatcher.post(event)
    assert event.await_completion(5)


def test_invoke_and_wait_timeout_does_not_raise(mvm):
    import threading as _threading
    blocker = _threading.Event()
    mvm.toolkit.invoke_later(lambda: blocker.wait(0.3), application=None)
    # A second invocation queued behind it still completes.
    done = _threading.Event()
    mvm.toolkit.invoke_and_wait(done.set, application=None, timeout=5.0)
    assert done.is_set()
    blocker.set()
