"""Event objects and queues (Section 3.2)."""

import pytest

from repro.awt.events import (
    ActionEvent,
    AWTEvent,
    EventQueue,
    InvocationEvent,
    KeyEvent,
    MouseEvent,
    WindowEvent,
)
from repro.jvm.errors import IllegalStateException
from repro.jvm.threads import JThread, ThreadGroup


class TestEventObjects:
    def test_monotonic_when(self):
        first = AWTEvent(None)
        second = AWTEvent(None)
        assert second.when > first.when

    def test_specialized_payloads(self):
        assert ActionEvent(None, "save").command == "save"
        assert KeyEvent(None, "x").char == "x"
        mouse = MouseEvent(None, 3, 4)
        assert (mouse.x, mouse.y, mouse.clicks) == (3, 4, 1)
        assert WindowEvent(None, WindowEvent.CLOSING).kind == "closing"

    def test_dispatch_reaches_source(self):
        hits = []

        class FakeComponent:
            def process_event(self, event):
                hits.append(event)

        event = AWTEvent(FakeComponent())
        event.dispatch()
        assert hits == [event]


class TestEventQueue:
    def test_fifo_order(self):
        queue = EventQueue()
        events = [AWTEvent(None) for _ in range(3)]
        for event in events:
            queue.post_event(event)
        assert [queue.next_event() for _ in range(3)] == events

    def test_pending_and_peek(self):
        queue = EventQueue()
        assert queue.pending() == 0
        assert queue.peek_event() is None
        event = AWTEvent(None)
        queue.post_event(event)
        assert queue.pending() == 1
        assert queue.peek_event() is event
        assert queue.pending() == 1  # peek does not consume

    def test_close_unblocks_and_returns_none(self):
        queue = EventQueue()
        root = ThreadGroup(None, "system")
        results = []

        def body():
            results.append(queue.next_event())

        thread = JThread(target=body, group=root)
        thread.start()
        queue.close()
        thread.join(5)
        assert results == [None]
        assert queue.closed

    def test_post_after_close_rejected(self):
        queue = EventQueue()
        queue.close()
        with pytest.raises(IllegalStateException):
            queue.post_event(AWTEvent(None))

    def test_drains_remaining_events_after_close(self):
        queue = EventQueue()
        event = AWTEvent(None)
        queue.post_event(event)
        queue.close()
        assert queue.next_event() is event
        assert queue.next_event() is None


class TestInvocationEvent:
    def test_runs_and_signals(self):
        hits = []
        event = InvocationEvent(lambda: hits.append(1))
        event.dispatch()
        assert hits == [1]
        assert event.await_completion(0.1)
        assert event.exception is None

    def test_captures_exception(self):
        def boom():
            raise ValueError("from runnable")

        event = InvocationEvent(boom)
        event.dispatch()
        assert isinstance(event.exception, ValueError)
