"""The component tree: listeners, semantic events, painting."""

import pytest

from repro.awt.components import (
    Button,
    Container,
    Frame,
    Graphics,
    Label,
    Menu,
    MenuBar,
    TextArea,
    TextField,
    Window,
)
from repro.awt.events import (
    ActionEvent,
    FocusEvent,
    KeyEvent,
    MouseEvent,
)
from repro.jvm.errors import IllegalArgumentException


class TestTree:
    def test_add_remove_and_parent(self):
        parent = Container("parent")
        child = Label("text", "child")
        parent.add(child)
        assert child.parent is parent
        assert parent.children == [child]
        parent.remove(child)
        assert child.parent is None

    def test_double_parent_rejected(self):
        a, b = Container("a"), Container("b")
        child = Label("x", "c")
        a.add(child)
        with pytest.raises(IllegalArgumentException):
            b.add(child)

    def test_find_depth_first(self):
        window = Window("w", "window")
        inner = Container("inner")
        deep = Button("Go", "deep-button")
        window.add(inner)
        inner.add(deep)
        assert window.find("deep-button") is deep
        assert window.find("inner") is inner
        assert window.find("nope") is None

    def test_window_resolution_from_component(self):
        window = Window("w", "window")
        inner = Container("inner")
        button = Button("Go", "b")
        window.add(inner)
        inner.add(button)
        assert button.window() is window
        assert Label("orphan").window() is None

    def test_auto_naming_unique(self):
        assert Label("a").name != Label("b").name


class TestListeners:
    def test_action_listener_fired_by_click(self):
        button = Button("Save", action_command="save-file")
        received = []
        button.add_action_listener(received.append)
        button.process_event(MouseEvent(button, 1, 1))
        assert len(received) == 1
        assert received[0].command == "save-file"

    def test_disabled_component_ignores_events(self):
        button = Button("Save")
        received = []
        button.add_action_listener(received.append)
        button.enabled = False
        button.process_event(MouseEvent(button, 1, 1))
        assert received == []

    def test_listener_type_filtering(self):
        field = TextField(name="f")
        actions, keys = [], []
        field.add_action_listener(actions.append)
        field.add_key_listener(keys.append)
        field.process_event(KeyEvent(field, "a"))
        assert len(keys) == 1
        assert actions == []

    def test_remove_listener(self):
        button = Button("x")
        hits = []
        button.add_action_listener(hits.append)
        button.remove_listener(ActionEvent, hits.append)
        button.process_event(ActionEvent(button, "x"))
        assert hits == []

    def test_non_event_listener_type_rejected(self):
        with pytest.raises(IllegalArgumentException):
            Button("x").add_listener(str, lambda e: None)

    def test_focus_event_updates_state(self):
        field = TextField()
        field.process_event(FocusEvent(field, gained=True))
        assert field.focused
        field.process_event(FocusEvent(field, gained=False))
        assert not field.focused


class TestTextComponents:
    def test_text_field_accumulates_keys(self):
        field = TextField()
        for char in "hi":
            field.process_event(KeyEvent(field, char))
        assert field.text == "hi"

    def test_text_field_backspace(self):
        field = TextField("abc")
        field.process_event(KeyEvent(field, "\b"))
        assert field.text == "ab"

    def test_text_field_enter_fires_action_with_content(self):
        field = TextField()
        received = []
        field.add_action_listener(received.append)
        for char in "ok\n":
            field.process_event(KeyEvent(field, char))
        assert [e.command for e in received] == ["ok"]

    def test_text_area_append(self):
        area = TextArea("line1\n")
        area.append("line2\n")
        assert area.text == "line1\nline2\n"


class TestMenus:
    def test_menu_item_selection(self):
        bar = MenuBar("menubar")
        file_menu = bar.add_menu("File", "file-menu")
        received = []
        file_menu.add_item("Save File", received.append, name="save-item")
        item = bar.find("save-item")
        item.select()
        assert [e.command for e in received] == ["Save File"]

    def test_frame_menu_bar(self):
        frame = Frame("editor")
        bar = MenuBar("bar")
        frame.set_menu_bar(bar)
        assert frame.menu_bar is bar
        assert bar.parent is frame
        with pytest.raises(IllegalArgumentException):
            Frame("other").set_menu_bar(bar)


class TestPainting:
    def test_paint_log_records_component_draws(self):
        window = Window("w", "win")
        window.add(Label("hello", "lbl"))
        window.add(Button("Go", "btn"))
        window.repaint()
        ops = window.paint_log
        components = {op["component"] for op in ops}
        assert {"lbl", "btn"} <= components
        texts = [op["text"] for op in ops if op["op"] == "text"]
        assert "hello" in texts
        assert "[ Go ]" in texts

    def test_graphics_primitives(self):
        window = Window("w")
        graphics = Graphics(window, window)
        graphics.draw_line(0, 0, 5, 5)
        graphics.fill_rect(1, 1, 2, 2)
        ops = [op["op"] for op in window.paint_log]
        assert ops == ["line", "rect"]
