"""The metrics registry: counters, gauges, histograms, label filtering."""

import pytest

from repro.core.application import ResourceLimitExceeded, ResourceLimits
from repro.jvm.threads import JThread
from repro.telemetry.metrics import MetricsRegistry

pytestmark = pytest.mark.telemetry


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("requests", app="a").inc()
        registry.counter("requests", app="a").inc(2)
        assert registry.counter("requests", app="a").value == 3

    def test_label_sets_are_independent(self):
        registry = MetricsRegistry()
        registry.counter("requests", app="a").inc()
        registry.counter("requests", app="b").inc(5)
        assert registry.counter("requests", app="a").value == 1
        assert registry.counter("requests", app="b").value == 5
        assert registry.total("requests") == 6
        assert registry.total("requests", app="b") == 5

    def test_gauge_sets_and_moves(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(7)
        gauge.dec()
        assert gauge.value == 6

    def test_histogram_observes(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        for value in (0.001, 0.002, 0.004):
            histogram.observe(value)
        description = histogram.describe()
        assert description["count"] == 3
        assert description["min"] == pytest.approx(0.001)
        assert description["max"] == pytest.approx(0.004)

    def test_kind_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")


class TestReadSide:
    def test_snapshot_filters_by_label_superset(self):
        registry = MetricsRegistry()
        registry.counter("c", app="a", op="read").inc()
        registry.counter("c", app="b", op="read").inc()
        assert len(registry.snapshot(app="a")) == 1
        assert len(registry.snapshot(op="read")) == 2
        # A label *value* must match exactly, not merely share the key.
        assert registry.snapshot(app="nope") == []

    def test_render_text_format(self):
        registry = MetricsRegistry()
        registry.counter("hits", app="a").inc(2)
        text = registry.render_text()
        assert "hits{app=a} 2" in text


class TestLimitsRejectedCounter:
    def test_typed_error_and_counter(self, host, register_app):
        """Satellite: a limit rejection raises a *typed* error naming the
        limit, and bumps ``limits.rejected{app,limit}``."""
        outcome = {}

        def main(jclass, ctx, args):
            try:
                for _ in range(10):
                    JThread(target=lambda: JThread.sleep(2.0),
                            daemon=False).start()
            except ResourceLimitExceeded as exc:
                outcome["limit"] = exc.limit
                outcome["maximum"] = exc.maximum
            return 0

        class_name = register_app("LimitProbe", main)
        app = host.exec(class_name, [], name="limitprobe",
                        limits=ResourceLimits(max_threads=2))
        assert app.wait_for(10) == 0
        assert outcome["limit"] == "max_threads"
        assert outcome["maximum"] == 2
        metrics = host.vm.telemetry.metrics
        assert metrics.total("limits.rejected", app="limitprobe",
                             limit="max_threads") >= 1
        app.destroy()
        app.wait_for(5)
