"""The /proc introspection surface and its owning-user gate."""

import pytest

from repro.io.file import read_text
from repro.jvm.errors import (
    FileNotFoundException,
    IOException,
    SecurityException,
)
from repro.jvm.threads import JThread

pytestmark = pytest.mark.telemetry


def run_probe(host, register_app, probe_name, body, user=None, **kwargs):
    """Run ``body(ctx)`` inside a fresh application; returns its result."""
    outcome = {}

    def main(jclass, ctx, args):
        try:
            outcome["result"] = body(ctx)
        except Exception as exc:  # noqa: BLE001 - relayed to the test
            outcome["error"] = exc
        return 0

    app = host.exec(register_app(probe_name, main), [], user=user, **kwargs)
    assert app.wait_for(10) == 0
    return app, outcome


class TestProcSurface:
    def test_application_reads_its_own_status_and_metrics(self, host,
                                                          register_app):
        alice = host.vm.user_database.lookup("alice")

        def body(ctx):
            me = ctx.app.app_id
            return (read_text(ctx, f"/proc/{me}/status"),
                    read_text(ctx, f"/proc/{me}/metrics"))

        app, outcome = run_probe(host, register_app, "SelfProc", body,
                                 user=alice, name="selfproc")
        assert "error" not in outcome, outcome.get("error")
        status, metrics = outcome["result"]
        assert "Name:\tselfproc" in status
        assert "User:\talice" in status
        assert f"Id:\t{app.app_id}" in status
        assert "app.threads.started{app=selfproc}" in metrics

    def test_other_users_telemetry_looks_absent(self, host, register_app):
        """Feature 3 asymmetry: Bob reading Alice's /proc entry gets
        FileNotFoundException, exactly like her home directory."""
        alice = host.vm.user_database.lookup("alice")
        bob = host.vm.user_database.lookup("bob")

        def park(jclass, ctx, args):
            JThread.sleep(5.0)
            return 0

        target = host.exec(register_app("ParkedApp", park), [], user=alice,
                           name="parked")

        def body(ctx):
            return read_text(ctx, f"/proc/{target.app_id}/metrics")

        _, outcome = run_probe(host, register_app, "ProcSnoop", body,
                               user=bob)
        assert isinstance(outcome.get("error"), FileNotFoundException)
        target.destroy()
        target.wait_for(5)

    def test_init_may_read_everyone(self, host):
        """The initial application is an ancestor of every application —
        the same rule the system security manager applies to threads."""
        listing = read_text(host.initial.context(), "/proc/vmstat")
        assert "apps.live" in listing
        for application in host.applications():
            text = read_text(host.initial.context(),
                             f"/proc/{application.app_id}/status")
            assert f"Id:\t{application.app_id}" in text

    def test_proc_is_read_only(self, host, register_app):
        alice = host.vm.user_database.lookup("alice")

        def body(ctx):
            from repro.io.file import write_text
            write_text(ctx, f"/proc/{ctx.app.app_id}/metrics", "tamper")

        _, outcome = run_probe(host, register_app, "ProcTamper", body,
                               user=alice)
        assert isinstance(outcome.get("error"),
                          (IOException, SecurityException))

    def test_vmstat_rollup(self, host, register_app):
        def body(ctx):
            return read_text(ctx, "/proc/vmstat")

        _, outcome = run_probe(host, register_app, "VmstatProbe", body)
        text = outcome["result"]
        assert "apps.launched\t" in text
        assert "security.grants\t" in text

    def test_nonexistent_app_dir(self, host):
        with pytest.raises(FileNotFoundException):
            read_text(host.initial.context(), "/proc/999999/status")

    def test_ipc_ring_surface(self, host, register_app):
        """/proc/ipc/ring exposes the ring-pipe rollup, and vmstat carries
        the same counters under the ipc.ring.* prefix."""
        def body(ctx):
            from repro.io.streams import make_pipe
            reader, writer = make_pipe()
            writer.write(b"r" * 4096)
            reader.drain_into(lambda segments: None)
            writer.close()
            reader.close()  # close folds the pipe's counters into the rollup
            return (read_text(ctx, "/proc/ipc/ring"),
                    read_text(ctx, "/proc/vmstat"))

        _, outcome = run_probe(host, register_app, "RingProbe", body)
        ring, vmstat = outcome["result"]
        for key in ("wakeups\t", "suppressed_wakeups\t",
                    "zero_copy_bytes\t", "copies\t"):
            assert key in ring
        zero_copy = dict(line.split("\t") for line
                         in ring.strip().splitlines())["zero_copy_bytes"]
        assert int(zero_copy) >= 4096
        assert "ipc.ring.wakeups\t" in vmstat
        assert "ipc.ring.zero_copy_bytes\t" in vmstat

    def test_sched_surface(self, host, register_app):
        """/proc/sched renders the event-loop's counters, and vmstat
        rolls the same numbers up under the sched.* prefix."""
        def body(ctx):
            return (read_text(ctx, "/proc/sched"),
                    read_text(ctx, "/proc/vmstat"))

        _, outcome = run_probe(host, register_app, "SchedProbe", body)
        sched, vmstat = outcome["result"]
        for key in ("running\t", "tasks.live\t", "tasks.spawned\t",
                    "tasks.completed\t", "switches\t", "timer_fires\t"):
            assert key in sched
        fields = dict(line.split("\t") for line
                      in sched.strip().splitlines())
        # Counters render as integers whether or not the VM has booted
        # its loop yet (a plain-callable main stays on an OS thread).
        assert int(fields["tasks.spawned"]) >= 0
        assert int(fields["switches"]) >= 0
        assert "sched.tasks.live\t" in vmstat
        assert "sched.switches\t" in vmstat

    def test_sched_counts_generator_main(self, host, register_app):
        """A generator main runs as a scheduler task, and /proc/sched
        shows it spawned."""
        outcome = {}

        def main(jclass, ctx, args):
            outcome["sched"] = read_text(ctx, "/proc/sched")
            return 0
            yield  # pragma: no cover - marks this main as a continuation

        app = host.exec(register_app("SchedGenProbe", main), [])
        assert app.wait_for(10) == 0
        fields = dict(line.split("\t") for line
                      in outcome["sched"].strip().splitlines())
        assert fields["running"] == "1"
        assert int(fields["tasks.spawned"]) >= 1
        assert int(fields["tasks.live"]) >= 1

    def test_dist_transport_surface(self, host, register_app):
        """/proc/dist/transport renders frame and pool counters even on a
        VM that has never opened a pooled channel."""
        def body(ctx):
            return read_text(ctx, "/proc/dist/transport")

        _, outcome = run_probe(host, register_app, "DistProbe", body)
        text = outcome["result"]
        assert "frames.sent\t" in text
        assert "frames.coalesced\t" in text
        assert "pool.hits\t0" in text
        assert "pool.idle\t0" in text
