"""Span tracing: cross-application nesting and the JSONL lifecycle trace."""

import json
import time

import pytest

from repro.io.file import read_text

pytestmark = pytest.mark.telemetry


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


def spans(records, name, app=None):
    return [r for r in records
            if r["kind"] == "span" and r["name"] == name
            and (app is None or r["app"] == app)]


class TestSpanNesting:
    def test_exec_nests_across_applications(self, host, register_app):
        """A child's ``app.exec`` span is opened on the *parent's* main
        thread, so the trace shows exec nesting across applications."""
        tracer = host.vm.telemetry.tracer
        tracer.enable()
        try:
            def child_main(jclass, ctx, args):
                return 0

            child_class = register_app("TraceChild", child_main)

            def parent_main(jclass, ctx, args):
                child = ctx.exec(child_class, [], name="tchild")
                child.wait_for(5)
                return 0

            parent_class = register_app("TraceParent", parent_main)
            app = host.exec(parent_class, [], name="tparent")
            assert app.wait_for(10) == 0
            assert wait_until(
                lambda: spans(tracer.records(), "app.main", "tchild"))

            records = tracer.records()
            parent_exec = spans(records, "app.exec", "tparent")[0]
            parent_main_span = spans(records, "app.main", "tparent")[0]
            child_exec = spans(records, "app.exec", "tchild")[0]
            child_main_span = spans(records, "app.main", "tchild")[0]

            assert parent_main_span["parent"] == parent_exec["span"]
            assert child_exec["parent"] == parent_main_span["span"]
            assert child_main_span["parent"] == child_exec["span"]
        finally:
            tracer.disable()


class TestLifecycleTrace:
    def test_jsonl_round_trip_covers_the_kernel(self, host, register_app,
                                                tmp_path):
        """Acceptance: with tracing on, one exec/waitFor/exit lifecycle
        exports a JSONL trace containing lifecycle spans, an AWT dispatch
        span, and at least one audited security-check event."""
        tracer = host.vm.telemetry.tracer
        tracer.enable()
        try:
            def main(jclass, ctx, args):
                read_text(ctx, "/etc/motd")  # audited file-read check
                return 0

            class_name = register_app("TraceLife", main)
            app = host.exec(class_name, [], name="tlife")
            assert app.wait_for(10) == 0
            host.toolkit.dispatcher.invoke_and_wait(lambda: None,
                                                    application=host.initial)
            # The lifecycle span is closed by the reaper, asynchronously.
            assert wait_until(
                lambda: spans(tracer.records(), "app.lifecycle", "tlife"))

            target = tmp_path / "trace.jsonl"
            count = tracer.export_jsonl(str(target))
            lines = target.read_text().splitlines()
            assert len(lines) == count > 0
            records = [json.loads(line) for line in lines]

            assert spans(records, "app.exec", "tlife")
            assert spans(records, "app.main", "tlife")
            lifecycle = spans(records, "app.lifecycle", "tlife")[0]
            assert lifecycle["exit_code"] == 0
            assert [r for r in records if r["kind"] == "event"
                    and r["name"] == "app.exit" and r["app"] == "tlife"]
            assert spans(records, "awt.dispatch")
            checks = [r for r in records if r["kind"] == "event"
                      and r["name"] == "security.check"]
            assert any(c.get("granted") for c in checks)
        finally:
            tracer.disable()

    def test_noop_when_not_recording(self, host):
        """The guarded fast path: no listener, no records."""
        tracer = host.vm.telemetry.tracer
        span = tracer.span("anything", app="x")
        assert span.span_id is None
        span.end()
        assert tracer.records(app="x") == []
