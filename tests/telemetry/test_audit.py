"""The security audit trail (the observability face of Sections 5.3/5.6)."""

import pytest

from repro.io.file import read_text
from repro.jvm.errors import IOException, SecurityException

pytestmark = pytest.mark.telemetry


class TestAuditTrail:
    def test_denied_user_permission_check_is_recorded(self, host,
                                                      register_app):
        """Bob's application reading Alice's file is denied through the
        Section 5.3 user-permission path — and the trail names the user,
        the permission, and the deciding manager."""
        def main(jclass, ctx, args):
            try:
                read_text(ctx, "/home/alice/notes.txt")
            except (IOException, SecurityException):
                pass
            return 0

        bob = host.vm.user_database.lookup("bob")
        class_name = register_app("Snoop", main)
        app = host.exec(class_name, [], user=bob, name="snoop")
        assert app.wait_for(10) == 0

        audit = host.vm.telemetry.audit
        denials = audit.denials(app_id=app.app_id)
        assert denials, "the denied check must be on the trail"
        denial = denials[-1]
        assert denial["user"] == "bob"
        assert denial["app"] == "snoop"
        assert "/home/alice/notes.txt" in denial["permission"]
        assert denial["manager"] == "SystemSecurityManager"
        assert denial["granted"] is False

    def test_granted_checks_are_recorded_too(self, host, register_app):
        def main(jclass, ctx, args):
            read_text(ctx, "/etc/motd")
            return 0

        app = host.exec(register_app("Reader", main), [], name="reader")
        assert app.wait_for(10) == 0
        grants = host.vm.telemetry.audit.records(app_id=app.app_id,
                                                 granted=True)
        assert any("/etc/motd" in r["permission"] for r in grants)

    def test_counters_mirror_the_log(self, host, register_app):
        def main(jclass, ctx, args):
            try:
                read_text(ctx, "/home/alice/notes.txt")
            except (IOException, SecurityException):
                pass
            return 0

        bob = host.vm.user_database.lookup("bob")
        app = host.exec(register_app("Snoop2", main), [], user=bob,
                        name="snoop2")
        assert app.wait_for(10) == 0
        metrics = host.vm.telemetry.metrics
        assert metrics.total("security.checks", app="snoop2",
                             decision="deny") >= 1
        audit = host.vm.telemetry.audit
        assert audit.denies >= 1
        assert len(audit) == len(audit.records())
