"""Shared fixtures: booted VMs, host sessions, capture streams, app factory.

Every fixture tears its VM down so Python daemon threads do not accumulate
across the suite.
"""

from __future__ import annotations

import pytest

from repro.core.launcher import MultiProcVM
from repro.io.streams import ByteArrayOutputStream, PrintStream
from repro.jvm.classloading import ClassMaterial
from repro.jvm.vm import VirtualMachine
from repro.security.codesource import CodeSource
from repro.tools.terminal import TerminalDevice

#: Code source for test application material, under the local grant roots.
LOCAL_APP_CODE_BASE = "file:/usr/local/java/apps/{name}/{name}.class"


@pytest.fixture
def vm():
    """A plain (single-application) booted VirtualMachine."""
    machine = VirtualMachine().boot()
    yield machine
    machine._begin_shutdown(0)
    machine.await_termination(5.0)


@pytest.fixture
def mvm():
    """A booted multi-processing VM with tools installed."""
    booted = MultiProcVM.boot()
    yield booted
    booted.shutdown()


@pytest.fixture
def host(mvm):
    """A multi-processing VM with the test thread attached to init."""
    with mvm.host_session():
        yield mvm


@pytest.fixture
def console(mvm):
    """A terminal device registered as 'console' on the mvm."""
    device = TerminalDevice("console")
    mvm.vm.consoles["console"] = device
    return device


class Capture:
    """A PrintStream over a byte buffer, for asserting on output."""

    def __init__(self):
        self.buffer = ByteArrayOutputStream()
        self.stream = PrintStream(self.buffer)

    @property
    def text(self) -> str:
        return self.buffer.to_text()

    @property
    def lines(self) -> list[str]:
        return self.text.splitlines()


@pytest.fixture
def capture():
    """Factory for capture streams: ``out = capture()``."""
    return Capture


def make_app(vm, name: str, main_fn, code_source: str | None = "local",
             **extra_members) -> str:
    """Register a one-main application material; returns its class name.

    ``code_source='local'`` places the app under the local grant root
    (gets UserPermission by the default policy); ``None`` makes it trusted
    boot-class-path code; any other string is used verbatim.
    """
    class_name = f"apps.{name}"
    if code_source == "local":
        source = CodeSource(
            LOCAL_APP_CODE_BASE.format(name=name.lower()))
    elif code_source is None:
        source = None
    else:
        source = CodeSource(code_source)
    material = ClassMaterial(class_name, code_source=source)
    material.members["main"] = main_fn
    for member_name, fn in extra_members.items():
        material.members[member_name] = fn
        if member_name.startswith("_"):
            material.non_public.add(member_name)
    vm.registry.register(material, replace=True)
    return class_name


@pytest.fixture
def register_app(mvm):
    """Factory fixture bound to the mvm's registry."""
    def _register(name: str, main_fn, code_source: str | None = "local",
                  **extra_members) -> str:
        return make_app(mvm.vm, name, main_fn, code_source, **extra_members)
    return _register
