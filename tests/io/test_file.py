"""The java.io.File layer: checks above, Unix below (Sections 3.3, 4)."""

import pytest

from repro.io.file import (
    FileInputStream,
    FileOutputStream,
    JFile,
    read_text,
    write_text,
)
from repro.jvm.errors import (
    FileNotFoundException,
    SecurityException,
)
from repro.lang.context import InvocationContext


@pytest.fixture
def ctx(vm):
    return InvocationContext(vm, vm.boot_loader)


class TestJFileBasics:
    def test_exists_and_kinds(self, ctx):
        assert JFile(ctx, "/etc/motd").exists()
        assert JFile(ctx, "/etc/motd").is_file()
        assert JFile(ctx, "/etc").is_directory()
        assert not JFile(ctx, "/no/such").exists()

    def test_relative_paths_resolve_against_cwd(self, ctx):
        assert JFile(ctx, "etc/motd").path == "/etc/motd"
        assert JFile(ctx, "./etc/../etc/motd").path == "/etc/motd"

    def test_length_and_list(self, ctx):
        assert JFile(ctx, "/etc/motd").length() > 0
        assert "motd" in JFile(ctx, "/etc").list()

    def test_mkdir_create_delete(self, ctx):
        directory = JFile(ctx, "/tmp/newdir")
        directory.mkdir()
        assert directory.is_directory()
        child = JFile(ctx, "/tmp/newdir/file.txt")
        assert child.create_new_file()
        assert not child.create_new_file()  # already exists
        child.delete()
        assert not child.exists()
        directory.delete()
        assert not directory.exists()

    def test_rename(self, ctx):
        write_text(ctx, "/tmp/a.txt", "content")
        JFile(ctx, "/tmp/a.txt").rename_to(JFile(ctx, "/tmp/b.txt"))
        assert not JFile(ctx, "/tmp/a.txt").exists()
        assert read_text(ctx, "/tmp/b.txt") == "content"

    def test_last_modified_advances(self, ctx):
        write_text(ctx, "/tmp/t.txt", "1")
        first = JFile(ctx, "/tmp/t.txt").last_modified()
        write_text(ctx, "/tmp/t.txt", "22")
        assert JFile(ctx, "/tmp/t.txt").last_modified() > first


class TestStreams:
    def test_write_read_roundtrip(self, ctx):
        write_text(ctx, "/tmp/data.txt", "line1\nline2\n")
        assert read_text(ctx, "/tmp/data.txt") == "line1\nline2\n"

    def test_append(self, ctx):
        write_text(ctx, "/tmp/log.txt", "first\n")
        write_text(ctx, "/tmp/log.txt", "second\n", append=True)
        assert read_text(ctx, "/tmp/log.txt") == "first\nsecond\n"

    def test_overwrite_truncates(self, ctx):
        write_text(ctx, "/tmp/o.txt", "long content here")
        write_text(ctx, "/tmp/o.txt", "x")
        assert read_text(ctx, "/tmp/o.txt") == "x"

    def test_missing_file_raises_file_not_found(self, ctx):
        with pytest.raises(FileNotFoundException):
            FileInputStream(ctx, "/tmp/missing.txt")

    def test_chunked_reads(self, ctx):
        write_text(ctx, "/tmp/chunk.txt", "abcdef")
        stream = FileInputStream(ctx, "/tmp/chunk.txt")
        try:
            assert stream.read(2) == b"ab"
            assert stream.read(2) == b"cd"
            assert stream.read(10) == b"ef"
            assert stream.read(1) == b""
        finally:
            stream.close()


class TestFeature3Asymmetry:
    """Feature 3: OS-invisible files yield FileNotFoundException, while a
    Java-policy denial yields SecurityException."""

    def test_os_hidden_file_is_file_not_found(self, ctx):
        # /etc/shadow is root-only; the JVM process user is 'jvm'.  As on
        # real Unix, stat works (only search permission on /etc is needed)
        # but opening the file looks like it does not exist.
        assert JFile(ctx, "/etc/shadow").exists()
        with pytest.raises(FileNotFoundException):
            FileInputStream(ctx, "/etc/shadow")
        with pytest.raises(FileNotFoundException):
            read_text(ctx, "/etc/shadow")
        # A directory with no search permission hides even existence.
        with pytest.raises(FileNotFoundException):
            JFile(ctx, "/root").list()

    def test_os_hidden_directory_is_file_not_found(self, ctx):
        with pytest.raises(FileNotFoundException):
            FileInputStream(ctx, "/root/secrets.txt")

    def test_policy_denial_is_security_exception(self, vm, ctx):
        """With a security manager installed and unprivileged code on the
        stack, an undenied-by-OS file yields SecurityException instead."""
        from repro.jvm.classloading import ClassMaterial
        from repro.security.codesource import CodeSource
        from repro.security.sysmanager import SystemSecurityManager

        vm.set_security_manager(SystemSecurityManager())
        material = ClassMaterial(
            "demo.Reader",
            code_source=CodeSource("file:/untrusted/Reader.class"))

        @material.member
        def main(jclass, ctx):
            return read_text(ctx, "/etc/motd")

        vm.registry.register(material)
        reader = vm.boot_loader.load_class("demo.Reader")
        with pytest.raises(SecurityException):
            reader.invoke("main", ctx)


class TestDelete:
    def test_delete_example_of_section_3_3(self, vm, ctx):
        """The paper's running example: checkDelete then realDelete."""
        write_text(ctx, "/tmp/foo", "bytes")
        JFile(ctx, "/tmp/foo").delete()
        assert not JFile(ctx, "/tmp/foo").exists()

    def test_delete_missing_raises(self, ctx):
        with pytest.raises(FileNotFoundException):
            JFile(ctx, "/tmp/never-existed").delete()

    def test_delete_denied_by_policy(self, vm, ctx):
        from repro.jvm.classloading import ClassMaterial
        from repro.security.codesource import CodeSource
        from repro.security.sysmanager import SystemSecurityManager

        write_text(ctx, "/tmp/protected", "data")
        vm.set_security_manager(SystemSecurityManager())
        material = ClassMaterial(
            "demo.Deleter",
            code_source=CodeSource("file:/untrusted/Deleter.class"))

        @material.member
        def main(jclass, ctx):
            JFile(ctx, "/tmp/protected").delete()

        vm.registry.register(material)
        deleter = vm.boot_loader.load_class("demo.Deleter")
        with pytest.raises(SecurityException):
            deleter.invoke("main", ctx)
        assert JFile(ctx, "/tmp/protected").exists(), \
            "the file must survive: the check aborts before realDelete"
