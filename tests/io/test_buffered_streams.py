"""Buffered stream wrappers: bulk reads, write combining, pipe races.

The transport fast path's first layer — ``BufferedInputStream`` turns
one-lock-per-byte ``read_line`` loops into one lock per chunk, and
``BufferedOutputStream`` combines small writes.  The race tests pin down
the close/EPIPE semantics the connection pool depends on: a peer can
vanish while the other side is mid-``read_line`` or mid-flush, and the
wrappers must surface exactly what the raw pipes would.
"""

import pytest

from repro.io.streams import (
    BufferedInputStream,
    BufferedOutputStream,
    ByteArrayInputStream,
    ByteArrayOutputStream,
    CountingOutputStream,
    make_pipe,
)
from repro.jvm.errors import EOFException, StreamClosedException
from repro.jvm.threads import JThread, ThreadGroup


class CountingInputStream(ByteArrayInputStream):
    """A byte source that counts underlying ``read`` calls."""

    def __init__(self, payload: bytes):
        super().__init__(payload)
        self.reads = 0

    def read(self, size: int = -1) -> bytes:
        self.reads += 1
        return super().read(size)


class TestBufferedInputStream:
    def test_read_line(self):
        source = BufferedInputStream(
            ByteArrayInputStream(b"one\ntwo\nunterminated"))
        assert source.read_line() == b"one"
        assert source.read_line() == b"two"
        assert source.read_line() == b"unterminated"
        assert source.read_line() is None

    def test_line_reads_are_bulk_reads(self):
        # The whole point: 100 lines must not cost 100+ source reads.
        counting = CountingInputStream(b"x" * 9 + b"\n" * 1 + b"y\n" * 99)
        source = BufferedInputStream(counting, buffer_size=4096)
        lines = 0
        while source.read_line() is not None:
            lines += 1
        assert lines == 100
        assert counting.reads <= 2  # one fill + the EOF probe

    def test_read_byte_and_peek(self):
        source = BufferedInputStream(ByteArrayInputStream(b"ab"))
        assert source.peek_byte() == ord("a")
        assert source.read_byte() == ord("a")  # peek did not consume
        assert source.read_byte() == ord("b")
        assert source.peek_byte() == -1
        assert source.read_byte() == -1

    def test_read_exactly(self):
        source = BufferedInputStream(ByteArrayInputStream(b"abcdef"))
        assert source.read_exactly(4) == b"abcd"
        assert source.read_exactly(2) == b"ef"

    def test_read_exactly_eof_raises(self):
        source = BufferedInputStream(ByteArrayInputStream(b"abc"))
        with pytest.raises(EOFException):
            source.read_exactly(10)

    def test_read_exactly_spans_buffer_refills(self):
        source = BufferedInputStream(ByteArrayInputStream(b"abcdefgh"),
                                     buffer_size=3)
        assert source.read_exactly(7) == b"abcdefg"

    def test_large_read_bypasses_buffer(self):
        counting = CountingInputStream(b"z" * 10000)
        source = BufferedInputStream(counting, buffer_size=64)
        assert len(source.read(10000)) == 10000
        assert counting.reads == 1

    def test_small_reads_served_from_buffer(self):
        counting = CountingInputStream(b"abcdefgh")
        source = BufferedInputStream(counting, buffer_size=4096)
        assert source.read(2) == b"ab"
        assert source.read(2) == b"cd"
        assert counting.reads == 1

    def test_available_counts_buffered_bytes(self):
        source = BufferedInputStream(ByteArrayInputStream(b"abcd"))
        source.read_byte()
        assert source.available() == 3

    def test_close_closes_source(self):
        inner = ByteArrayInputStream(b"x")
        source = BufferedInputStream(inner)
        source.close()
        assert inner.closed

    def test_over_a_pipe(self):
        reader, writer = make_pipe()
        buffered = BufferedInputStream(reader)
        writer.write(b"line one\nline two\n")
        writer.close()
        assert buffered.read_line() == b"line one"
        assert buffered.read_line() == b"line two"
        assert buffered.read_line() is None


class TestBufferedOutputStream:
    def test_small_writes_combine(self):
        counting = CountingOutputStream()
        sink = BufferedOutputStream(counting, buffer_size=1024)
        for _ in range(100):
            sink.write(b"ab")
        assert counting.count == 0  # nothing drained yet
        assert sink.buffered_count() == 200
        sink.flush()
        assert counting.count == 200
        assert sink.buffered_count() == 0

    def test_buffer_full_drains(self):
        counting = CountingOutputStream()
        sink = BufferedOutputStream(counting, buffer_size=8)
        sink.write(b"12345")
        sink.write(b"6789")  # crosses the threshold
        assert counting.count == 9

    def test_large_write_bypasses_buffer(self):
        counting = CountingOutputStream()
        sink = BufferedOutputStream(counting, buffer_size=8)
        sink.write(b"0123456789")
        assert counting.count == 10
        assert sink.buffered_count() == 0

    def test_close_drains_and_closes_sink(self):
        inner = ByteArrayOutputStream()
        sink = BufferedOutputStream(inner)
        sink.write(b"tail bytes")
        sink.close()
        assert inner.to_bytes() == b"tail bytes"
        assert inner.closed

    def test_over_a_pipe_one_lock_per_flush(self):
        reader, writer = make_pipe()
        sink = BufferedOutputStream(writer)
        for byte in b"byte at a time\n":
            sink.write(bytes([byte]))
        assert reader.available() == 0  # nothing reached the pipe yet
        sink.flush()
        assert reader.read(100) == b"byte at a time\n"

    def test_bypass_preserves_pending_order(self):
        inner = ByteArrayOutputStream()
        sink = BufferedOutputStream(inner, buffer_size=8)
        sink.write(b"abc")  # pending in the chunk
        sink.write(b"0123456789")  # bypass: must land after "abc"
        assert inner.to_bytes() == b"abc0123456789"


class RecordingVectorSink(ByteArrayOutputStream):
    """Counts ``write`` and ``writev`` calls for batching assertions."""

    def __init__(self):
        super().__init__()
        self.write_calls = 0
        self.writev_calls = 0

    def write(self, payload) -> None:
        self.write_calls += 1
        super().write(payload)

    def writev(self, segments) -> None:
        self.writev_calls += 1
        for segment in segments:
            super().write(segment)


class TestBufferedOutputStreamWritev:
    def test_small_segments_coalesce_in_buffer(self):
        sink = RecordingVectorSink()
        out = BufferedOutputStream(sink, buffer_size=1024)
        out.writev([b"a", b"bb", b"ccc"])
        assert sink.write_calls == 0 and sink.writev_calls == 0
        assert out.buffered_count() == 6
        out.flush()
        assert sink.to_bytes() == b"abbccc"

    def test_large_segments_ship_in_one_vector(self):
        sink = RecordingVectorSink()
        out = BufferedOutputStream(sink, buffer_size=8)
        out.writev([b"pending", b"0123456789", b"x", b"abcdefghij"])
        out.flush()
        # The whole mixed vector reached the sink as one writev (plus
        # at most one flush write for the trailing small segment).
        assert sink.writev_calls == 1
        assert sink.to_bytes() == b"pending0123456789xabcdefghij"

    def test_writev_over_a_pipe_round_trips(self):
        reader, writer = make_pipe()
        out = BufferedOutputStream(writer, buffer_size=8)
        out.writev([b"one ", b"two ", b"a segment past the threshold "])
        out.flush()
        assert reader.read(-1) == b"one two a segment past the threshold "


class TestPipeCloseRaces:
    """Close/EPIPE races under the buffered wrappers (pool semantics)."""

    def test_writer_closes_mid_read_line(self):
        # The reader is parked inside read_line on an unterminated line
        # when the writer hangs up: the partial line must come back, then
        # clean EOF — never a hang, never a lost prefix.
        root = ThreadGroup(None, "system")
        reader, writer = make_pipe()
        buffered = BufferedInputStream(reader)
        lines = []

        def consume():
            lines.append(buffered.read_line())
            lines.append(buffered.read_line())

        thread = JThread(target=consume, group=root)
        thread.start()
        writer.write(b"partial line without newline")
        thread.join(0.2)
        assert lines == []  # still blocked waiting for the newline
        writer.close()
        thread.join(5)
        assert lines == [b"partial line without newline", None]

    def test_reader_closes_mid_coalesced_flush(self):
        # The writer's flush is blocked on a full pipe when the reader
        # hangs up: the drain must raise the pipe's EPIPE, not hang.
        root = ThreadGroup(None, "system")
        reader, writer = make_pipe(capacity=4)
        sink = BufferedOutputStream(writer, buffer_size=1024)
        sink.write(b"more than four bytes of coalesced output")
        outcome = []

        def drain():
            try:
                sink.flush()
                outcome.append("flushed")
            except StreamClosedException:
                outcome.append("epipe")

        thread = JThread(target=drain, group=root)
        thread.start()
        thread.join(0.2)
        assert outcome == []  # blocked: pipe full, reader not draining
        reader.close()
        thread.join(5)
        assert outcome == ["epipe"]

    def test_closing_reader_wakes_a_blocked_read(self):
        # Closing your own read end while blocked must raise, not hang —
        # the transport-lost path when a client abandons a connection.
        root = ThreadGroup(None, "system")
        reader, writer = make_pipe()
        buffered = BufferedInputStream(reader)
        outcome = []

        def consume():
            try:
                buffered.read_line()
                outcome.append("line")
            except StreamClosedException:
                outcome.append("closed")

        thread = JThread(target=consume, group=root)
        thread.start()
        thread.join(0.2)
        assert outcome == []  # blocked: nothing written yet
        reader.close()
        thread.join(5)
        assert outcome == ["closed"]

    def test_buffered_write_after_reader_close_raises(self):
        reader, writer = make_pipe()
        sink = BufferedOutputStream(writer, buffer_size=4)
        reader.close()
        with pytest.raises(StreamClosedException):
            sink.write(b"longer than the buffer")

    def test_eof_hint_propagates_through_buffering(self):
        reader, writer = make_pipe()
        buffered = BufferedInputStream(reader)
        assert not buffered.at_eof_hint()
        writer.write(b"x")
        writer.close()
        assert not buffered.at_eof_hint()  # a byte is still readable
        assert buffered.read(1) == b"x"
        assert buffered.at_eof_hint()

    def test_reader_gone_hint_propagates_through_buffering(self):
        reader, writer = make_pipe()
        sink = BufferedOutputStream(writer)
        assert not sink.reader_gone_hint()
        reader.close()
        assert sink.reader_gone_hint()
