"""Byte streams, pipes, and the PrintStream no-throw discipline."""

import pytest

from repro.io.streams import (
    ByteArrayInputStream,
    ByteArrayOutputStream,
    CountingOutputStream,
    HostOutputStream,
    LineReader,
    NullInputStream,
    NullOutputStream,
    PipedOutputStream,
    PrintStream,
    TeeOutputStream,
    make_pipe,
)
from repro.jvm.errors import (
    EOFException,
    StreamClosedException,
)
from repro.jvm.threads import JThread, ThreadGroup


class TestByteArrayStreams:
    def test_roundtrip(self):
        sink = ByteArrayOutputStream()
        sink.write(b"hello ")
        sink.write(b"world")
        assert sink.to_bytes() == b"hello world"
        assert sink.to_text() == "hello world"
        assert sink.size() == 11
        sink.reset()
        assert sink.size() == 0

    def test_input_read_chunks(self):
        source = ByteArrayInputStream(b"abcdef")
        assert source.available() == 6
        assert source.read(2) == b"ab"
        assert source.read(100) == b"cdef"
        assert source.read(1) == b""

    def test_read_all_and_negative_size(self):
        assert ByteArrayInputStream(b"xyz").read(-1) == b"xyz"
        assert ByteArrayInputStream(b"xyz").read_all() == b"xyz"

    def test_read_byte_and_eof(self):
        source = ByteArrayInputStream(b"A")
        assert source.read_byte() == 65
        assert source.read_byte() == -1

    def test_read_exactly(self):
        source = ByteArrayInputStream(b"abcd")
        assert source.read_exactly(3) == b"abc"
        with pytest.raises(EOFException):
            source.read_exactly(5)

    def test_read_line_variants(self):
        source = ByteArrayInputStream(b"one\ntwo\nunterminated")
        assert source.read_line() == b"one"
        assert source.read_line() == b"two"
        assert source.read_line() == b"unterminated"
        assert source.read_line() is None

    def test_closed_stream_raises(self):
        source = ByteArrayInputStream(b"x")
        source.close()
        with pytest.raises(StreamClosedException):
            source.read(1)
        sink = ByteArrayOutputStream()
        sink.close()
        with pytest.raises(StreamClosedException):
            sink.write(b"x")

    def test_double_close_is_noop(self):
        sink = ByteArrayOutputStream()
        sink.close()
        sink.close()

    def test_context_manager(self):
        with ByteArrayOutputStream() as sink:
            sink.write(b"x")
        assert sink.closed


class TestNullStreams:
    def test_null_input_always_eof(self):
        assert NullInputStream().read(10) == b""
        assert NullInputStream().read_byte() == -1

    def test_null_output_discards(self):
        NullOutputStream().write(b"whatever")


class TestPipes:
    def test_transfer_and_eof_on_writer_close(self):
        reader, writer = make_pipe()
        writer.write(b"payload")
        assert reader.read(3) == b"pay"
        writer.close()
        assert reader.read(100) == b"load"
        assert reader.read(1) == b""  # EOF

    def test_available(self):
        reader, writer = make_pipe()
        assert reader.available() == 0
        writer.write(b"abc")
        assert reader.available() == 3

    def test_broken_pipe(self):
        reader, writer = make_pipe()
        reader.close()
        with pytest.raises(StreamClosedException):
            writer.write(b"data")

    def test_blocking_read_across_threads(self):
        root = ThreadGroup(None, "system")
        reader, writer = make_pipe()
        received = []

        def consumer():
            received.append(reader.read_all())

        thread = JThread(target=consumer, group=root)
        thread.start()
        writer.write(b"hello ")
        writer.write(b"pipe")
        writer.close()
        thread.join(5)
        assert received == [b"hello pipe"]

    def test_bounded_capacity_blocks_writer(self):
        root = ThreadGroup(None, "system")
        reader, writer = make_pipe(capacity=4)
        progress = []

        def producer():
            writer.write(b"123456789")  # must block at capacity 4
            progress.append("done")
            writer.close()

        thread = JThread(target=producer, group=root)
        thread.start()
        thread.join(0.2)
        assert progress == []  # still blocked
        assert reader.read_all() == b"123456789"
        thread.join(5)
        assert progress == ["done"]

    def test_owner_recorded(self):
        marker = object()
        reader, writer = make_pipe(owner=marker)
        assert reader.owner is marker
        assert writer.owner is marker


class TestPrintStream:
    def test_print_println_printf(self):
        sink = ByteArrayOutputStream()
        stream = PrintStream(sink)
        stream.print("a")
        stream.println("b")
        stream.printf("%s=%d", "x", 1)
        stream.write("raw")
        stream.write(b" bytes")
        assert sink.to_text() == "ab\nx=1raw bytes"

    def test_never_raises_sets_error_flag(self):
        reader, writer = make_pipe()
        stream = PrintStream(writer)
        reader.close()  # break the pipe
        stream.println("this must not raise")
        assert stream.check_error()

    def test_error_flag_clean_on_healthy_stream(self):
        stream = PrintStream(ByteArrayOutputStream())
        stream.println("ok")
        assert not stream.check_error()

    def test_close_closes_target(self):
        sink = ByteArrayOutputStream()
        stream = PrintStream(sink)
        stream.close()
        assert sink.closed

    def test_target_accessor(self):
        sink = ByteArrayOutputStream()
        assert PrintStream(sink).target is sink


class TestLineReader:
    def test_lines_and_eof(self):
        reader = LineReader(ByteArrayInputStream(b"a\nb\n"))
        assert reader.read_line() == "a"
        assert reader.read_line() == "b"
        assert reader.read_line() is None

    def test_read_all(self):
        reader = LineReader(ByteArrayInputStream("héllo".encode()))
        assert reader.read_all() == "héllo"


class TestCombinators:
    def test_tee_duplicates(self):
        a, b = ByteArrayOutputStream(), ByteArrayOutputStream()
        tee = TeeOutputStream(a, b)
        tee.write(b"xy")
        tee.flush()
        assert a.to_bytes() == b.to_bytes() == b"xy"

    def test_counting(self):
        counter = CountingOutputStream()
        counter.write(b"12345")
        counter.write(b"67")
        assert counter.count == 7

    def test_host_output_stream_never_closes_host(self):
        import io
        fake = io.StringIO()
        stream = HostOutputStream(fake)
        stream.write(b"text")
        stream.close()
        assert fake.getvalue() == "text"
        assert not fake.closed
