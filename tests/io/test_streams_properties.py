"""Property-based tests: pipes preserve arbitrary byte streams."""

from hypothesis import given, settings, strategies as st

from repro.io.streams import (
    ByteArrayInputStream,
    ByteArrayOutputStream,
    make_pipe,
)
from repro.jvm.threads import JThread, ThreadGroup

payloads = st.lists(st.binary(min_size=0, max_size=200), max_size=20)


@given(chunks=payloads)
@settings(max_examples=50, deadline=None)
def test_pipe_preserves_content_and_order_across_threads(chunks):
    root = ThreadGroup(None, "system")
    reader, writer = make_pipe(capacity=64)
    received: list[bytes] = []

    def consumer():
        received.append(reader.read_all())

    thread = JThread(target=consumer, group=root)
    thread.start()
    for chunk in chunks:
        writer.write(chunk)
    writer.close()
    thread.join(10)
    assert received[0] == b"".join(chunks)


@given(payload=st.binary(max_size=500),
       chunk_size=st.integers(min_value=1, max_value=64))
@settings(max_examples=50, deadline=None)
def test_chunked_reads_reassemble_exactly(payload, chunk_size):
    source = ByteArrayInputStream(payload)
    pieces = []
    while True:
        chunk = source.read(chunk_size)
        if not chunk:
            break
        assert len(chunk) <= chunk_size
        pieces.append(chunk)
    assert b"".join(pieces) == payload


@given(lines=st.lists(st.text(
    alphabet=st.characters(blacklist_characters="\n\r\x00",
                           blacklist_categories=("Cs",)),
    max_size=40), max_size=20))
@settings(max_examples=50, deadline=None)
def test_read_line_splits_exactly_on_newlines(lines):
    payload = "".join(line + "\n" for line in lines).encode("utf-8")
    source = ByteArrayInputStream(payload)
    recovered = []
    while True:
        line = source.read_line()
        if line is None:
            break
        recovered.append(line.decode("utf-8"))
    assert recovered == lines


@given(writes=st.lists(st.binary(min_size=0, max_size=100), max_size=30))
@settings(max_examples=50, deadline=None)
def test_byte_array_output_accumulates(writes):
    sink = ByteArrayOutputStream()
    for chunk in writes:
        sink.write(chunk)
    assert sink.to_bytes() == b"".join(writes)
    assert sink.size() == sum(len(c) for c in writes)
