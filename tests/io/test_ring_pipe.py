"""RingPipe semantics: wrap-around, edges, closes, and copy accounting.

The data-plane contract the shell's ``|``, the dist transport, and
BufferedInputStream all rely on: ring wrap-around is invisible, closes
from either side behave like EPIPE/EOF, blocked waits stay
interruptible, and reads cost at most one copy (zero via
:meth:`drain_into`).
"""

import random
import time

import pytest

from repro.io.streams import (
    RING_STATS,
    RingPipe,
    StreamClosedException,
    make_pipe,
)
from repro.jvm.errors import InterruptedException
from repro.jvm.threads import JThread, ThreadGroup


@pytest.fixture
def root():
    return ThreadGroup(None, "system")


class TestWrapAround:
    def test_data_survives_the_seam(self, root):
        """Interleaved writes/reads force the ring through many wraps."""
        reader, writer = make_pipe(capacity=8)
        out = []

        def consume():
            while True:
                chunk = reader.read(3)
                if not chunk:
                    break
                out.append(chunk)

        consumer = JThread(target=consume, group=root)
        consumer.start()
        payload = bytes(range(256)) * 4
        for offset in range(0, len(payload), 5):
            writer.write(payload[offset:offset + 5])
        writer.close()
        consumer.join(10)
        assert b"".join(out) == payload

    def test_available_at_the_seam(self):
        """``available()`` counts logical bytes, not contiguous ones."""
        reader, writer = make_pipe(capacity=8)
        writer.write(b"abcdef")
        assert reader.read(4) == b"abcd"
        writer.write(b"ghij")  # wraps: two physical segments
        assert reader.available() == 6
        assert reader.read(-1) == b"efghij"
        assert reader.available() == 0

    def test_segmented_read_joins_the_seam(self):
        """A read spanning the seam returns one contiguous bytes object."""
        pipe = RingPipe(8)
        # Drive the ring directly to pin the seam position.
        with pipe.cond:
            assert pipe._put(b"abcdef", 0) == 6
            assert pipe._take(4) == b"abcd"
            assert pipe._put(b"ghij", 0) == 4
            segments = pipe._segments(6)
            assert [bytes(segment) for segment in segments] == \
                [b"efgh", b"ij"]
            for segment in segments:
                segment.release()
            assert pipe._take(6) == b"efghij"

    def test_drain_into_hands_both_segments(self):
        reader, writer = make_pipe(capacity=8)
        writer.write(b"abcdef")
        assert reader.read(4) == b"abcd"
        writer.write(b"ghij")
        seen = []
        drained = reader.drain_into(
            lambda segments: seen.extend(bytes(s) for s in segments))
        assert drained == 6
        assert seen == [b"efgh", b"ij"]


class TestConcurrentStress:
    def test_patterned_transfer_arbitrary_chunks(self, root):
        """Random write/read sizes through a small ring keep byte order."""
        rng = random.Random(20260808)
        payload = bytes(rng.randrange(256) for _ in range(64 * 1024))
        reader, writer = make_pipe(capacity=1024)
        received = []

        def consume():
            while True:
                chunk = reader.read(rng.randrange(1, 1500))
                if not chunk:
                    break
                received.append(chunk)

        consumer = JThread(target=consume, group=root)
        consumer.start()
        offset = 0
        while offset < len(payload):
            size = rng.randrange(1, 3000)
            writer.write(payload[offset:offset + size])
            offset += size
        writer.close()
        consumer.join(30)
        assert b"".join(received) == payload

    def test_two_writer_threads_interleave_whole_chunks(self, root):
        """The pipe lock keeps each write atomic even under contention."""
        reader, writer = make_pipe(capacity=64)
        markers = {b"A": 0, b"B": 0}

        def produce(marker):
            def body():
                for _ in range(200):
                    writer.write(marker * 8)
            return body

        writers = [JThread(target=produce(m), group=root)
                   for m in (b"A", b"B")]
        for thread in writers:
            thread.start()
        total = bytearray()
        while len(total) < 400 * 8:
            total.extend(reader.read(8))
        for thread in writers:
            thread.join(10)
        # Every 8-byte cell is one writer's chunk, never a mix.
        for base in range(0, len(total), 8):
            cell = total[base:base + 8]
            assert cell in (b"A" * 8, b"B" * 8)
            markers[bytes(cell[:1])] += 1
        assert markers == {b"A": 200, b"B": 200}


class TestCloseEdges:
    def test_writer_close_mid_read_yields_eof(self, root):
        reader, writer = make_pipe()
        results = []

        def consume():
            results.append(reader.read(16))

        consumer = JThread(target=consume, group=root)
        consumer.start()
        time.sleep(0.05)  # the reader is parked on an empty ring
        writer.close()
        consumer.join(5)
        assert results == [b""]

    def test_reader_close_mid_write_raises(self, root):
        reader, writer = make_pipe(capacity=4)
        outcome = []

        def produce():
            try:
                writer.write(b"123456789")  # blocks at capacity 4
                outcome.append("wrote")
            except StreamClosedException:
                outcome.append("epipe")

        producer = JThread(target=produce, group=root)
        producer.start()
        time.sleep(0.05)  # the writer is parked on a full ring
        reader.close()
        producer.join(5)
        assert outcome == ["epipe"]

    def test_read_after_own_close_raises(self, root):
        reader, writer = make_pipe()
        outcome = []

        def consume():
            try:
                reader.read(1)
                outcome.append("read")
            except StreamClosedException:
                outcome.append("closed")

        consumer = JThread(target=consume, group=root)
        consumer.start()
        time.sleep(0.05)
        reader.close()
        consumer.join(5)
        assert outcome == ["closed"]

    def test_interrupt_cancels_blocked_read(self, root):
        reader, _writer = make_pipe()
        outcome = []

        def consume():
            try:
                reader.read(1)
                outcome.append("read")
            except InterruptedException:
                outcome.append("interrupted")

        consumer = JThread(target=consume, group=root)
        consumer.start()
        time.sleep(0.05)
        consumer.interrupt()
        consumer.join(5)
        assert outcome == ["interrupted"]

    def test_interrupt_cancels_blocked_write(self, root):
        _reader, writer = make_pipe(capacity=4)
        outcome = []

        def produce():
            try:
                writer.write(b"123456789")
                outcome.append("wrote")
            except InterruptedException:
                outcome.append("interrupted")

        producer = JThread(target=produce, group=root)
        producer.start()
        time.sleep(0.05)
        producer.interrupt()
        producer.join(5)
        assert outcome == ["interrupted"]

    def test_hints(self):
        reader, writer = make_pipe()
        assert not reader.at_eof_hint()
        assert not writer.reader_gone_hint()
        writer.write(b"x")
        writer.close()
        assert not reader.at_eof_hint()  # one byte still buffered
        assert reader.read(-1) == b"x"
        assert reader.at_eof_hint()
        other_reader, other_writer = make_pipe()
        other_reader.close()
        assert other_writer.reader_gone_hint()


class TestCopyAccounting:
    def test_one_copy_per_read(self):
        """The old channel copied twice per read (slice + bytes); the
        ring must materialize exactly one bytes object per read."""
        reader, writer = make_pipe()
        pipe = reader._pipe
        writer.write(b"x" * 1000)
        after_write = pipe.copies
        for _ in range(10):
            assert len(reader.read(100)) == 100
        assert pipe.copies - after_write == 10

    def test_drain_into_copies_nothing(self):
        reader, writer = make_pipe()
        pipe = reader._pipe
        writer.write(b"x" * 4096)
        after_write = pipe.copies
        drained = reader.drain_into(lambda segments: None)
        assert drained == 4096
        assert pipe.copies == after_write
        assert pipe.zero_copy_bytes >= 4096

    def test_stats_fold_into_module_totals_at_close(self):
        RING_STATS.reset()
        reader, writer = make_pipe()
        writer.write(b"y" * 100)
        reader.drain_into(lambda segments: None)
        writer.close()
        reader.close()
        snapshot = RING_STATS.snapshot()
        assert snapshot["zero_copy_bytes"] >= 100
        assert snapshot["wakeups"] >= 0
        assert snapshot["copies"] >= 1

    def test_physical_store_grows_lazily(self):
        reader, writer = make_pipe(capacity=512 * 1024)
        pipe = reader._pipe
        assert pipe._size == RingPipe.INITIAL_SIZE
        writer.write(b"z" * 4096)  # fits the initial store
        assert pipe._size == RingPipe.INITIAL_SIZE
        writer.write(b"z" * (64 * 1024))  # outgrows it: one-shot grow
        assert pipe._size == pipe._limit
        assert reader.read(-1) == b"z" * (4096 + 64 * 1024)


class TestVectoredPipeWrites:
    def test_writev_order_and_content(self):
        reader, writer = make_pipe()
        writer.writev([b"one ", b"", b"two ", memoryview(b"three")])
        assert reader.read(-1) == b"one two three"

    def test_writev_blocks_like_write(self, root):
        reader, writer = make_pipe(capacity=4)
        done = []

        def produce():
            writer.writev([b"1234", b"5678"])
            done.append(True)
            writer.close()

        producer = JThread(target=produce, group=root)
        producer.start()
        producer.join(0.2)
        assert done == []  # parked: the vector exceeds capacity
        assert reader.read_all() == b"12345678"
        producer.join(5)
        assert done == [True]

    def test_writev_raises_on_closed_reader(self):
        reader, writer = make_pipe()
        reader.close()
        with pytest.raises(StreamClosedException):
            writer.writev([b"data"])


class TestLegacyChannel:
    def test_legacy_pipe_round_trip(self, root):
        reader, writer = make_pipe(capacity=64, legacy=True)
        received = []

        def consume():
            received.append(reader.read_all())

        consumer = JThread(target=consume, group=root)
        consumer.start()
        writer.write(b"legacy " * 32)
        writer.close()
        consumer.join(5)
        assert received == [b"legacy " * 32]

    def test_legacy_broken_pipe(self):
        reader, writer = make_pipe(legacy=True)
        reader.close()
        with pytest.raises(StreamClosedException):
            writer.write(b"data")
