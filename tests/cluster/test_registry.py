"""Membership: register, heartbeat, suspect, die — on a fake clock."""

import pytest

from repro.cluster.registry import DEAD, LIVE, SUSPECT, NodeRegistry
from repro.telemetry.metrics import MetricsRegistry

pytestmark = pytest.mark.cluster


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def metrics():
    return MetricsRegistry()


@pytest.fixture
def registry(clock, metrics):
    return NodeRegistry(metrics=metrics, suspect_after=1.0,
                        dead_after=2.0, clock=clock)


class TestMembership:
    def test_register_starts_live(self, registry):
        node = registry.register("n1", port=7101)
        assert node.state == LIVE
        assert registry.find("n1") is node
        assert [n.name for n in registry.live_nodes()] == ["n1"]

    def test_heartbeat_keeps_node_live(self, registry, clock):
        registry.register("n1")
        for _ in range(5):
            clock.advance(0.5)
            assert registry.heartbeat("n1") is True
            registry.sweep()
        assert registry.find("n1").state == LIVE
        assert registry.find("n1").beats == 5

    def test_silence_goes_suspect_then_dead(self, registry, clock):
        registry.register("n1")
        clock.advance(1.5)
        registry.sweep()
        assert registry.find("n1").state == SUSPECT
        clock.advance(1.0)  # 2.5s total silence > dead_after
        dead = registry.sweep()
        assert [n.name for n in dead] == ["n1"]
        assert registry.find("n1").state == DEAD

    def test_suspect_recovers_on_heartbeat(self, registry, clock):
        registry.register("n1")
        clock.advance(1.5)
        registry.sweep()
        assert registry.find("n1").state == SUSPECT
        registry.heartbeat("n1")
        assert registry.find("n1").state == LIVE

    def test_heartbeat_from_unknown_or_dead_rejected(self, registry, clock):
        assert registry.heartbeat("ghost") is False
        registry.register("n1")
        clock.advance(5.0)
        registry.sweep()
        assert registry.heartbeat("n1") is False  # must re-register

    def test_reregistration_revives_a_dead_node(self, registry, clock):
        registry.register("n1")
        clock.advance(5.0)
        registry.sweep()
        assert registry.find("n1").state == DEAD
        registry.register("n1")
        assert registry.find("n1").state == LIVE

    def test_mark_dead_out_of_band(self, registry):
        registry.register("n1")
        registry.mark_dead("n1", reason="connect refused")
        assert registry.find("n1").state == DEAD
        assert registry.live_nodes() == []

    def test_load_and_classes_update_on_heartbeat(self, registry):
        registry.register("n1", load={"apps": 1})
        registry.heartbeat("n1", load={"apps": 4, "awt": 2},
                           classes=["apps.Worker"])
        node = registry.find("n1")
        assert node.load == {"apps": 4, "awt": 2}
        assert node.classes == {"apps.Worker"}
        assert node.load_score() == 6


class TestDeathCallbacks:
    def test_callback_fires_once_per_death(self, registry, clock):
        deaths = []
        registry.on_node_dead.append(lambda n: deaths.append(n.name))
        registry.register("n1")
        registry.register("n2")
        clock.advance(5.0)
        registry.sweep()
        registry.sweep()  # already dead: no second notification
        assert sorted(deaths) == ["n1", "n2"]

    def test_callback_errors_do_not_break_the_sweep(self, registry, clock):
        def explode(node):
            raise RuntimeError("observer bug")

        seen = []
        registry.on_node_dead.append(explode)
        registry.on_node_dead.append(lambda n: seen.append(n.name))
        registry.register("n1")
        clock.advance(5.0)
        registry.sweep()
        assert seen == ["n1"]


class TestRegistryTelemetry:
    def test_live_gauge_tracks_transitions(self, registry, metrics, clock):
        registry.register("n1")
        registry.register("n2")
        assert metrics.total("cluster.nodes.live") == 2
        assert metrics.total("cluster.nodes.known") == 2
        clock.advance(5.0)
        registry.sweep()
        assert metrics.total("cluster.nodes.live") == 0
        assert metrics.total("cluster.nodes.known") == 2

    def test_heartbeat_latency_histogram_observes_gaps(self, registry,
                                                       metrics, clock):
        registry.register("n1")
        clock.advance(0.25)
        registry.heartbeat("n1")
        clock.advance(0.75)
        registry.heartbeat("n1")
        histogram = metrics.histogram("cluster.heartbeat.latency")
        assert histogram.count == 2
        assert histogram.total == pytest.approx(1.0)
        assert histogram.maximum == pytest.approx(0.75)

    def test_counters(self, registry, metrics, clock):
        registry.register("n1")
        registry.heartbeat("n1")
        registry.heartbeat("n1")
        clock.advance(5.0)
        registry.sweep()
        assert metrics.total("cluster.registrations") == 1
        assert metrics.total("cluster.heartbeats") == 2
        assert metrics.total("cluster.node.deaths") == 1
