"""The bounded retry helper: deterministic backoff, no busy-wait."""

import pytest

from repro.cluster.retry import backoff_delays, retry_call
from repro.jvm.errors import (
    IllegalArgumentException,
    SocketException,
    UnknownHostException,
)

pytestmark = pytest.mark.cluster


class TestBackoffDelays:
    def test_geometric_schedule(self):
        assert list(backoff_delays(4, initial=0.05, factor=2.0,
                                   maximum=1.0)) == [0.05, 0.1, 0.2]

    def test_cap_applies(self):
        delays = list(backoff_delays(6, initial=0.5, factor=3.0,
                                     maximum=1.0))
        assert delays == [0.5, 1.0, 1.0, 1.0, 1.0]

    def test_single_attempt_sleeps_never(self):
        assert list(backoff_delays(1)) == []


class TestRetryCall:
    def test_success_first_try_never_sleeps(self):
        slept = []
        assert retry_call(lambda: 42, retry_on=SocketException,
                          sleep=slept.append) == 42
        assert slept == []

    def test_retries_then_succeeds(self):
        slept = []
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise SocketException("not yet")
            return "ok"

        assert retry_call(flaky, retry_on=SocketException, attempts=4,
                          initial=0.05, sleep=slept.append) == "ok"
        assert len(calls) == 3
        assert slept == [0.05, 0.1]  # deterministic: injected sleep

    def test_exhaustion_reraises_last_error(self):
        slept = []

        def always():
            raise SocketException("down")

        with pytest.raises(SocketException):
            retry_call(always, retry_on=SocketException, attempts=3,
                       sleep=slept.append)
        assert len(slept) == 2  # no sleep after the final failure

    def test_non_matching_exception_propagates_immediately(self):
        slept = []
        calls = []

        def wrong_kind():
            calls.append(1)
            raise ValueError("not retryable")

        with pytest.raises(ValueError):
            retry_call(wrong_kind, retry_on=SocketException,
                       sleep=slept.append)
        assert len(calls) == 1
        assert slept == []

    def test_tuple_of_exception_types(self):
        calls = []

        def mixed():
            calls.append(1)
            if len(calls) == 1:
                raise UnknownHostException("who?")
            if len(calls) == 2:
                raise SocketException("refused")
            return "through"

        assert retry_call(mixed,
                          retry_on=(SocketException, UnknownHostException),
                          attempts=3, sleep=lambda _d: None) == "through"

    def test_on_retry_hook_sees_each_failure(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise SocketException(f"fail {len(seen)}")
            return True

        retry_call(flaky, retry_on=SocketException, attempts=3,
                   sleep=lambda _d: None,
                   on_retry=lambda attempt, exc: seen.append((attempt,
                                                              str(exc))))
        assert [a for a, _ in seen] == [1, 2]

    def test_zero_attempts_rejected(self):
        with pytest.raises(IllegalArgumentException):
            retry_call(lambda: 1, retry_on=SocketException, attempts=0)
