"""The cluster end to end: spawn, spread, offload, survive node death.

One controller VM and two worker VMs share a network fabric; the
controller runs the registry server, each worker runs the rexec daemon
plus the heartbeat agent.  Timings are tightened so failure detection
fits in test time.
"""

import threading
import time

import pytest

from repro.cluster import Cluster, PlacementError
from repro.core.application import KILLED_EXIT_CODE
from repro.core.launcher import MultiProcVM
from repro.dist.client import remote_exec
from repro.io.streams import ByteArrayOutputStream, PrintStream
from repro.jvm.errors import NodeUnavailableException
from repro.net.fabric import NetworkFabric
from repro.unixfs.machine import standard_process

pytestmark = pytest.mark.cluster

CTRL = "ctrl.example.com"
NODE_1 = "node-1.example.com"
NODE_2 = "node-2.example.com"


@pytest.fixture
def pool():
    """Controller + two workers (node-2 is a playground), all enrolled."""
    fabric = NetworkFabric()
    ctrl = MultiProcVM.boot(
        os_context=standard_process(hostname=CTRL), network=fabric)
    workers = {
        NODE_1: MultiProcVM.boot(
            os_context=standard_process(hostname=NODE_1), network=fabric),
        NODE_2: MultiProcVM.boot(
            os_context=standard_process(hostname=NODE_2), network=fabric),
    }
    cluster = Cluster(ctrl, suspect_after=0.4, dead_after=0.8,
                      failover_grace=3.0)
    cluster.start(sweep_interval=0.1)
    cluster.join(workers[NODE_1], rexec_port=7101, interval=0.1)
    cluster.join(workers[NODE_2], rexec_port=7102, interval=0.1,
                 playground=True)
    yield ctrl, workers, cluster
    for worker in list(workers.values()):
        cluster.shutdown_worker(worker)
    ctrl.shutdown()


class TestClusterExec:
    def test_output_and_exit_code_relay(self, pool):
        __, ___, cluster = pool
        app = cluster.exec("tools.Echo", ["over", "there"],
                           user="alice", password="wonderland")
        assert app.wait_for(10) == 0
        assert app.output_text() == "over there\n"
        assert app.terminated
        assert app.exit_code == 0
        app.close()

    def test_credentials_travel_identity_does_not(self, pool):
        """Section 5.2 holds through the scheduler: the *target* VM
        authenticates the travelling credentials."""
        __, ___, cluster = pool
        app = cluster.exec("tools.Whoami", [], user="bob",
                           password="builder")
        assert app.wait_for(10) == 0
        assert app.output_text().strip() == "bob"
        app.close()

    def test_round_robin_spreads_across_nodes(self, pool):
        __, ___, cluster = pool
        apps = [cluster.exec("tools.True", [], user="alice",
                             password="wonderland") for _ in range(6)]
        for app in apps:
            assert app.wait_for(10) == 0
            app.close()
        nodes = [app.node for app in apps]
        assert nodes.count(NODE_1) == 3
        assert nodes.count(NODE_2) == 3

    def test_destroy_is_not_mistaken_for_node_death(self, pool):
        __, ___, cluster = pool
        app = cluster.exec("tools.Sleep", ["30"], user="alice",
                           password="wonderland")
        assert app.wait_for(0.5) is None
        app.destroy()
        assert app.wait_for(10) == KILLED_EXIT_CODE
        assert len(app.placements) == 1  # no failover for a wanted kill
        app.close()

    def test_untrusted_confined_to_playground(self, pool):
        __, ___, cluster = pool
        nodes = set()
        for _ in range(4):
            app = cluster.exec("tools.True", [], user="alice",
                               password="wonderland", untrusted=True)
            assert app.wait_for(10) == 0
            nodes.add(app.node)
            app.close()
        assert nodes == {NODE_2}

    def test_least_loaded_picks_the_idle_node(self, pool):
        __, ___, cluster = pool
        # Occupy node-1 with sleepers, then wait for its inflated load to
        # arrive by heartbeat.
        registry = cluster.registry
        sleepers = []
        while registry.find(NODE_1).load.get("apps", 0) \
                <= registry.find(NODE_2).load.get("apps", 0):
            sleepers.append(cluster.exec(
                "tools.Sleep", ["30"], user="alice", password="wonderland",
                policy="least-loaded"))
            time.sleep(0.15)
            assert len(sleepers) < 20, "load never diverged"
        app = cluster.exec("tools.True", [], user="alice",
                           password="wonderland", policy="least-loaded")
        assert app.wait_for(10) == 0
        assert app.node == NODE_2
        app.close()
        for sleeper in sleepers:
            sleeper.destroy()
            sleeper.close()


class TestFailover:
    def test_unreachable_node_is_marked_dead_and_skipped(self, pool):
        """A registry entry the fabric has never heard of: placement tries
        it first (sorted round-robin), gets the typed unavailability
        signal, declares it dead, and lands elsewhere."""
        __, ___, cluster = pool
        ghost = "aaa-ghost.example.com"  # sorts before the real nodes
        cluster.registry.register(ghost, port=7999)
        app = cluster.exec("tools.Echo", ["alive"], user="alice",
                           password="wonderland")
        assert app.wait_for(10) == 0
        assert app.node in (NODE_1, NODE_2)
        assert cluster.registry.find(ghost).state == "dead"
        assert cluster.metrics.total("cluster.failovers") >= 1
        app.close()

    def test_node_death_replaces_running_launch(self, pool):
        __, workers, cluster = pool
        app = cluster.exec("tools.Sleep", ["30"], user="alice",
                           password="wonderland")
        assert app.node == NODE_1  # round-robin from a fresh cursor
        result = {}

        def waiter():
            result["code"] = app.wait_for(20)

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.4)
        cluster.shutdown_worker(workers.pop(NODE_1))
        deadline = time.monotonic() + 10
        while len(app.placements) < 2 and time.monotonic() < deadline:
            time.sleep(0.05)
        assert app.placements == [NODE_1, NODE_2]
        app.destroy()
        thread.join(10)
        assert result["code"] is not None
        assert cluster.registry.find(NODE_1).state == "dead"
        app.close()

    def test_empty_pool_raises_placement_error(self, pool):
        __, workers, cluster = pool
        for name in list(workers):
            cluster.shutdown_worker(workers.pop(name))
        deadline = time.monotonic() + 10
        while cluster.registry.live_nodes() and \
                time.monotonic() < deadline:
            time.sleep(0.05)
        cluster.placement_attempts = 1  # no point queueing in this test
        with pytest.raises(PlacementError):
            cluster.exec("tools.True", [], user="alice",
                         password="wonderland")

    def test_queued_launch_waits_for_a_node(self, pool):
        """Placement with a momentarily empty pool retries with backoff —
        the launch is queued, not failed."""
        ctrl, workers, cluster = pool
        for name in list(workers):
            cluster.shutdown_worker(workers.pop(name))
        deadline = time.monotonic() + 10
        while cluster.registry.live_nodes() and \
                time.monotonic() < deadline:
            time.sleep(0.05)
        cluster.placement_backoff = 0.2
        cluster.placement_attempts = 10
        result = {}

        def launch():
            app = cluster.exec("tools.Echo", ["queued"], user="alice",
                               password="wonderland")
            result["code"] = app.wait_for(10)
            result["node"] = app.node
            app.close()

        thread = threading.Thread(target=launch)
        thread.start()
        time.sleep(0.3)  # the launch is now waiting on an empty pool
        late = MultiProcVM.boot(
            os_context=standard_process(hostname="node-3.example.com"),
            network=ctrl.vm.network)
        workers["node-3.example.com"] = late
        cluster.join(late, rexec_port=7103, interval=0.1)
        thread.join(15)
        assert result.get("code") == 0
        assert result.get("node") == "node-3.example.com"


class TestTypedUnavailability:
    def test_unknown_host_raises_node_unavailable(self, pool):
        ctrl, __, ___ = pool
        with ctrl.host_session():
            ctx = ctrl.initial.context()
            with pytest.raises(NodeUnavailableException):
                remote_exec(ctx, "no-such-host.example.com", "tools.True",
                            [], user="alice", password="wonderland")

    def test_connection_refused_raises_node_unavailable(self, pool):
        """A known host with nothing listening is just as unavailable."""
        ctrl, __, ___ = pool
        with ctrl.host_session():
            ctx = ctrl.initial.context()
            with pytest.raises(NodeUnavailableException):
                remote_exec(ctx, NODE_1, "tools.True", [], port=7555,
                            user="alice", password="wonderland")


class TestIntrospection:
    def test_proc_cluster_nodes(self, pool):
        ctrl, __, ___ = pool
        sink = ByteArrayOutputStream()
        with ctrl.host_session():
            code = ctrl.run("tools.Cat", ["/proc/cluster/nodes"],
                            stdout=PrintStream(sink))
        assert code == 0
        text = sink.to_text()
        assert NODE_1 in text and NODE_2 in text
        assert "playground" in text
        assert "live" in text

    def test_proc_cluster_placements(self, pool):
        ctrl, __, cluster = pool
        app = cluster.exec("tools.True", [], user="alice",
                           password="wonderland")
        assert app.wait_for(10) == 0
        app.close()
        sink = ByteArrayOutputStream()
        with ctrl.host_session():
            code = ctrl.run("tools.Cat", ["/proc/cluster/placements"],
                            stdout=PrintStream(sink))
        assert code == 0
        assert "tools.True" in sink.to_text()

    def test_proc_cluster_absent_without_a_cluster(self):
        mvm = MultiProcVM.boot()
        try:
            sink = ByteArrayOutputStream()
            err = ByteArrayOutputStream()
            with mvm.host_session():
                code = mvm.run("tools.Cat", ["/proc/cluster/nodes"],
                               stdout=PrintStream(sink),
                               stderr=PrintStream(err))
            assert code != 0
        finally:
            mvm.shutdown()

    def test_vmstat_gains_cluster_lines(self, pool):
        ctrl, __, ___ = pool
        sink = ByteArrayOutputStream()
        with ctrl.host_session():
            code = ctrl.run("tools.Cat", ["/proc/vmstat"],
                            stdout=PrintStream(sink))
        assert code == 0
        assert "cluster.nodes.live\t2" in sink.to_text()

    def test_cluster_status_tool(self, pool):
        ctrl, __, ___ = pool
        sink = ByteArrayOutputStream()
        with ctrl.host_session():
            code = ctrl.run("tools.Cluster", ["status"],
                            stdout=PrintStream(sink))
        assert code == 0
        text = sink.to_text()
        assert NODE_1 in text
        assert "2 live" in text

    def test_cluster_exec_tool_from_shell(self, pool):
        ctrl, __, ___ = pool
        sink = ByteArrayOutputStream()
        with ctrl.host_session():
            alice = ctrl.vm.user_database.lookup("alice")
            shell = ctrl.exec(
                "tools.Shell",
                ["-c", "setprop rsh.password wonderland",
                 "cluster exec whoami",
                 "cluster exec -p least-loaded echo via the pool"],
                user=alice, stdout=PrintStream(sink),
                stderr=PrintStream(sink))
            assert shell.wait_for(15) == 0
        text = sink.to_text()
        assert "alice" in text
        assert "via the pool" in text

    def test_cluster_tool_without_cluster_fails_cleanly(self):
        mvm = MultiProcVM.boot()
        try:
            sink = ByteArrayOutputStream()
            with mvm.host_session():
                code = mvm.run("tools.Cluster", ["status"],
                               stderr=PrintStream(sink))
            assert code == 1
            assert "not a cluster controller" in sink.to_text()
        finally:
            mvm.shutdown()
