"""Placement policies: fairness, load, locality, and the playground rule."""

import pytest

from repro.cluster.registry import NodeRegistry
from repro.cluster.scheduler import PlacementError, Scheduler
from repro.jvm.errors import IllegalArgumentException
from repro.telemetry.metrics import MetricsRegistry

pytestmark = pytest.mark.cluster


@pytest.fixture
def metrics():
    return MetricsRegistry()


@pytest.fixture
def registry(metrics):
    return NodeRegistry(metrics=metrics, clock=lambda: 0.0)


@pytest.fixture
def scheduler(registry, metrics):
    return Scheduler(registry, metrics=metrics)


def three_nodes(registry, playground=()):
    for name in ("n1", "n2", "n3"):
        registry.register(name, playground=name in playground)


class TestRoundRobin:
    def test_even_spread(self, registry, scheduler):
        three_nodes(registry)
        picks = [scheduler.place("apps.X").name for _ in range(9)]
        assert picks.count("n1") == 3
        assert picks.count("n2") == 3
        assert picks.count("n3") == 3

    def test_rotation_order_is_stable(self, registry, scheduler):
        three_nodes(registry)
        picks = [scheduler.place("apps.X").name for _ in range(4)]
        assert picks == ["n1", "n2", "n3", "n1"]

    def test_dead_nodes_skipped(self, registry, scheduler):
        three_nodes(registry)
        registry.mark_dead("n2")
        picks = {scheduler.place("apps.X").name for _ in range(6)}
        assert picks == {"n1", "n3"}


class TestLeastLoaded:
    def test_picks_the_idle_node(self, registry, scheduler):
        three_nodes(registry)
        registry.heartbeat("n1", load={"apps": 5, "awt": 0})
        registry.heartbeat("n2", load={"apps": 1, "awt": 0})
        registry.heartbeat("n3", load={"apps": 3, "awt": 4})
        assert scheduler.place("apps.X", policy="least-loaded").name == "n2"

    def test_awt_queue_depth_counts_as_load(self, registry, scheduler):
        three_nodes(registry)
        registry.heartbeat("n1", load={"apps": 2, "awt": 9})
        registry.heartbeat("n2", load={"apps": 3, "awt": 0})
        registry.heartbeat("n3", load={"apps": 3, "awt": 1})
        assert scheduler.place("apps.X", policy="least-loaded").name == "n2"

    def test_name_breaks_ties(self, registry, scheduler):
        three_nodes(registry)
        assert scheduler.place("apps.X", policy="least-loaded").name == "n1"


class TestLocality:
    def test_prefers_node_publishing_the_class(self, registry, scheduler):
        three_nodes(registry)
        registry.heartbeat("n3", classes=["apps.Special"])
        for _ in range(3):
            assert scheduler.place("apps.Special",
                                   policy="locality").name == "n3"

    def test_least_loaded_among_publishers(self, registry, scheduler):
        three_nodes(registry)
        registry.heartbeat("n2", load={"apps": 1}, classes=["apps.S"])
        registry.heartbeat("n3", load={"apps": 5}, classes=["apps.S"])
        assert scheduler.place("apps.S", policy="locality").name == "n2"

    def test_falls_back_to_round_robin(self, registry, scheduler):
        three_nodes(registry)
        picks = {scheduler.place("apps.Nowhere", policy="locality").name
                 for _ in range(6)}
        assert picks == {"n1", "n2", "n3"}


class TestPlaygroundRule:
    def test_untrusted_only_lands_on_playgrounds(self, registry, scheduler):
        three_nodes(registry, playground=("n3",))
        registry.heartbeat("n1", load={"apps": 0})
        registry.heartbeat("n3", load={"apps": 50})
        # Even with every policy and a busy playground, untrusted work
        # never escapes to a general worker.
        for policy in scheduler.policy_names():
            for _ in range(5):
                node = scheduler.place("evil.Applet", policy=policy,
                                       untrusted=True)
                assert node.name == "n3"

    def test_no_playground_means_no_placement(self, registry, scheduler):
        three_nodes(registry)  # all general workers
        with pytest.raises(PlacementError):
            scheduler.place("evil.Applet", untrusted=True)

    def test_trusted_work_may_use_playgrounds_too(self, registry, scheduler):
        three_nodes(registry, playground=("n3",))
        picks = {scheduler.place("apps.X").name for _ in range(6)}
        assert picks == {"n1", "n2", "n3"}


class TestSchedulerSurface:
    def test_empty_pool_raises(self, scheduler):
        with pytest.raises(PlacementError):
            scheduler.place("apps.X")

    def test_unknown_policy_rejected(self, registry, scheduler):
        three_nodes(registry)
        with pytest.raises(IllegalArgumentException):
            scheduler.place("apps.X", policy="chaotic")

    def test_exclude_removes_candidates(self, registry, scheduler):
        three_nodes(registry)
        picks = {scheduler.place("apps.X", exclude=("n1", "n3")).name
                 for _ in range(4)}
        assert picks == {"n2"}

    def test_placements_counter_and_log(self, registry, scheduler, metrics):
        three_nodes(registry)
        scheduler.place("apps.X", user="alice")
        scheduler.place("apps.Y", policy="least-loaded", user="bob")
        assert metrics.total("cluster.placements") == 2
        log = scheduler.placements()
        assert [entry["class"] for entry in log] == ["apps.X", "apps.Y"]
        assert log[0]["user"] == "alice"
        assert log[1]["policy"] == "least-loaded"
        assert log[0]["seq"] < log[1]["seq"]
