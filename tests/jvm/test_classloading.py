"""Class material, loaders, and name-space identity (Sections 3.1, 5.5)."""

import pytest

from repro.jvm.classloading import (
    ClassLoader,
    ClassMaterial,
    ClassRegistry,
    JMethod,
)
from repro.jvm.errors import (
    ClassNotFoundException,
    IllegalArgumentException,
    NoSuchMethodException,
)
from repro.security import access
from repro.security.codesource import CodeSource


@pytest.fixture
def registry():
    return ClassRegistry()


def simple_material(name="demo.Simple", code_source=None):
    material = ClassMaterial(name, code_source=code_source)

    @material.member
    def greet(jclass, who):
        return f"hello {who} from {jclass.name}"

    @material.member
    def _secret(jclass):
        return "secret"

    @material.static
    def init(jclass):
        jclass.statics["counter"] = 0

    return material


class TestClassRegistry:
    def test_register_and_get(self, registry):
        material = simple_material()
        registry.register(material)
        assert registry.get("demo.Simple") is material
        assert "demo.Simple" in registry
        assert registry.names() == ["demo.Simple"]

    def test_duplicate_register_rejected(self, registry):
        registry.register(simple_material())
        with pytest.raises(IllegalArgumentException):
            registry.register(simple_material())

    def test_replace_flag(self, registry):
        registry.register(simple_material())
        replacement = simple_material()
        registry.register(replacement, replace=True)
        assert registry.get("demo.Simple") is replacement

    def test_missing_class_raises(self, registry):
        with pytest.raises(ClassNotFoundException):
            registry.get("no.Such")


class TestClassMaterial:
    def test_member_decorator_registers(self):
        material = simple_material()
        assert "greet" in material.members
        assert "_secret" in material.members

    def test_underscore_members_are_non_public(self):
        material = simple_material()
        assert "_secret" in material.non_public
        assert "greet" not in material.non_public

    def test_empty_name_rejected(self):
        with pytest.raises(IllegalArgumentException):
            ClassMaterial("")


class TestLoading:
    def test_define_runs_static_init_once(self, registry):
        material = simple_material()
        registry.register(material)
        loader = ClassLoader(registry, name="test")
        jclass = loader.load_class("demo.Simple")
        assert jclass.statics == {"counter": 0}
        # Loading again returns the cached definition, no re-init.
        jclass.statics["counter"] = 99
        assert loader.load_class("demo.Simple") is jclass
        assert jclass.statics["counter"] == 99

    def test_members_receive_their_jclass(self, registry):
        registry.register(simple_material())
        loader = ClassLoader(registry, name="test")
        jclass = loader.load_class("demo.Simple")
        assert jclass.invoke("greet", "world") == \
            "hello world from demo.Simple"

    def test_missing_method(self, registry):
        registry.register(simple_material())
        loader = ClassLoader(registry, name="test")
        jclass = loader.load_class("demo.Simple")
        with pytest.raises(NoSuchMethodException):
            jclass.method("nope")
        assert jclass.has_method("greet")
        assert not jclass.has_method("nope")

    def test_parent_first_delegation(self, registry):
        registry.register(simple_material())
        parent = ClassLoader(registry, name="parent")
        child = ClassLoader(registry, parent=parent, name="child")
        from_child = child.load_class("demo.Simple")
        from_parent = parent.load_class("demo.Simple")
        assert from_child is from_parent
        assert from_child.loader is parent

    def test_two_loaders_two_identities(self, registry):
        """Section 5.5's foundation: same material, different classes."""
        registry.register(simple_material())
        loader_a = ClassLoader(registry, name="a")
        loader_b = ClassLoader(registry, name="b")
        class_a = loader_a.load_class("demo.Simple")
        class_b = loader_b.load_class("demo.Simple")
        assert class_a is not class_b
        assert class_a.name == class_b.name
        assert class_a.material is class_b.material

    def test_statics_are_per_definition(self, registry):
        registry.register(simple_material())
        class_a = ClassLoader(registry, name="a").load_class("demo.Simple")
        class_b = ClassLoader(registry, name="b").load_class("demo.Simple")
        class_a.statics["counter"] = 42
        assert class_b.statics["counter"] == 0


class TestProtectionDomains:
    def test_material_without_code_source_gets_system_domain(self, registry):
        registry.register(simple_material())
        jclass = ClassLoader(registry, name="t").load_class("demo.Simple")
        from repro.security.permissions import AllPermission, FilePermission
        assert jclass.protection_domain.implies(
            FilePermission("/anything", "read"))
        assert jclass.protection_domain.implies(AllPermission())

    def test_material_with_code_source_gets_policy_domain(self, registry):
        source = CodeSource("file:/usr/local/java/apps/x/X.class")
        registry.register(simple_material(code_source=source))
        loader = ClassLoader(registry, name="t")
        jclass = loader.load_class("demo.Simple")
        domain = jclass.protection_domain
        assert domain.code_source == source
        from repro.security.permissions import FilePermission
        assert not domain.implies(FilePermission("/anything", "read"))

    def test_invocation_pushes_domain(self, registry):
        source = CodeSource("file:/somewhere/App.class")
        material = ClassMaterial("demo.Domain", code_source=source)

        @material.member
        def whoami(jclass):
            return access.current_domain()

        registry.register(material)
        jclass = ClassLoader(registry, name="t").load_class("demo.Domain")
        domain = jclass.invoke("whoami")
        assert domain is jclass.protection_domain
        # ... and popped afterwards.
        assert access.current_domain() is None

    def test_static_init_runs_under_class_domain(self, registry):
        source = CodeSource("file:/somewhere/App.class")
        material = ClassMaterial("demo.Init", code_source=source)
        seen = []

        @material.static
        def init(jclass):
            seen.append(access.current_domain())

        registry.register(material)
        jclass = ClassLoader(registry, name="t").load_class("demo.Init")
        assert seen == [jclass.protection_domain]


class TestJMethod:
    def test_repr_and_handle(self, registry):
        registry.register(simple_material())
        jclass = ClassLoader(registry, name="t").load_class("demo.Simple")
        method = jclass.method("greet")
        assert isinstance(method, JMethod)
        assert method.invoke("x") == "hello x from demo.Simple"
