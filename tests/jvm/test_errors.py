"""The exception hierarchy mirrors the java.lang/java.io/java.security tree."""

import pytest

from repro.jvm import errors


def test_security_exception_is_runtime_exception():
    assert issubclass(errors.SecurityException, errors.RuntimeException)
    assert issubclass(errors.SecurityException, errors.JavaException)
    assert issubclass(errors.SecurityException, errors.JavaThrowable)


def test_access_control_exception_carries_permission():
    exc = errors.AccessControlException("denied", permission="perm-object")
    assert isinstance(exc, errors.SecurityException)
    assert exc.permission == "perm-object"
    assert "denied" in str(exc)
    assert "perm-object" in str(exc)


def test_file_not_found_is_io_exception():
    assert issubclass(errors.FileNotFoundException, errors.IOException)
    assert not issubclass(errors.FileNotFoundException,
                          errors.SecurityException)


def test_thread_death_is_error_not_exception():
    assert issubclass(errors.ThreadDeath, errors.JavaError)
    assert not issubclass(errors.ThreadDeath, errors.JavaException)


def test_interrupted_exception_is_checked():
    assert issubclass(errors.InterruptedException, errors.JavaException)
    assert not issubclass(errors.InterruptedException,
                          errors.RuntimeException)


def test_illegal_thread_state_is_illegal_argument():
    assert issubclass(errors.IllegalThreadStateException,
                      errors.IllegalArgumentException)


def test_socket_errors_are_io_exceptions():
    for cls in (errors.SocketException, errors.UnknownHostException,
                errors.ConnectException, errors.BindException):
        assert issubclass(cls, errors.IOException)


def test_message_formatting():
    assert str(errors.JavaException()) == "JavaException"
    assert str(errors.JavaException("boom")) == "JavaException: boom"


def test_authentication_exception_is_security_exception():
    assert issubclass(errors.AuthenticationException,
                      errors.SecurityException)


def test_java_throwable_catchable_as_python_exception():
    with pytest.raises(Exception):
        raise errors.NullPointerException("npe")
