"""Security equivalence of the two thread backings.

The scheduler multiplexes many tasks onto one loop thread, which is
exactly the situation JDK 1.2's per-thread security state was never
designed for.  Every test here runs the same body under both backings
(``sched`` continuation task and dedicated ``os`` thread) and requires
identical outcomes: inherited-context confinement (Section 5.6),
thread-group ancestry checks (Section 5.1/5.6), the user-based
combination (Section 5.3), and per-task access-stack isolation.
"""

import threading

import pytest

from repro.jvm.classloading import ClassMaterial
from repro.jvm.errors import AccessControlException, SecurityException
from repro.jvm.threads import JThread, ThreadGroup
from repro.security import access
from repro.security.codesource import CodeSource, ProtectionDomain
from repro.security.permissions import (
    Permissions,
    RuntimePermission,
    UserPermission,
)
from repro.security.sysmanager import SystemSecurityManager

pytestmark = pytest.mark.sched

PERM = RuntimePermission("doSensitiveThing")


def _domain(name, *permissions):
    return ProtectionDomain(CodeSource(f"file:/{name}"),
                            Permissions(permissions), name=name)


@pytest.fixture(params=["sched", "os"])
def backing(request):
    """Both sides of the equivalence claim."""
    return request.param


def _run(vm, body_fn, backing, group=None):
    """Start the generator body under ``backing`` and wait for it."""
    thread = JThread(target=body_fn,
                     group=group if group is not None else vm.main_group,
                     backing=backing)
    thread.start()
    thread.join(5)
    assert not thread.is_alive()
    return thread


class TestInheritedContext:
    def test_untrusted_creator_confines_the_thread(self, vm, backing):
        outcome = []

        def body():
            yield
            try:
                access.check_permission(PERM)
                outcome.append("allowed")
            except AccessControlException:
                outcome.append("denied")

        with access.stack_frame(_domain("untrusted")):
            thread = JThread(target=body, group=vm.main_group,
                             backing=backing)
        thread.start()
        thread.join(5)
        assert outcome == ["denied"], backing

    def test_trusted_creator_leaves_thread_trusted(self, vm, backing):
        outcome = []

        def body():
            yield
            access.check_permission(PERM)  # host-trusted: must not raise
            outcome.append("allowed")

        _run(vm, body, backing)
        assert outcome == ["allowed"], backing

    def test_snapshot_is_at_creation_not_start(self, vm, backing):
        outcome = []

        def body():
            yield
            try:
                access.check_permission(PERM)
                outcome.append("allowed")
            except AccessControlException:
                outcome.append("denied")

        with access.stack_frame(_domain("untrusted")):
            thread = JThread(target=body, group=vm.main_group,
                             backing=backing)
        # The creator's frame is gone by start time; the snapshot from
        # construction must still confine the thread.
        thread.start()
        thread.join(5)
        assert outcome == ["denied"], backing


class TestGroupAncestry:
    """check_access_group decides thread *creation* (Section 5.1)."""

    @pytest.fixture
    def sm(self, vm):
        manager = SystemSecurityManager()
        vm.set_security_manager(manager)
        return manager

    def _untrusted_class(self, vm, fn, name):
        material = ClassMaterial(
            name, code_source=CodeSource(f"file:/untrusted/{name}.class"))
        material.members["run"] = lambda jclass, *args: fn(*args)
        vm.registry.register(material, replace=True)
        return vm.boot_loader.load_class(name)

    def test_foreign_group_creation_denied(self, vm, sm, backing):
        group_a = ThreadGroup(vm.main_group, "app-a")
        group_b = ThreadGroup(vm.main_group, "app-b")
        outcome = []

        def attack():
            JThread(target=lambda: None, group=group_b)

        jclass = self._untrusted_class(vm, attack, "demo.GroupAttack")

        def body():
            yield
            try:
                jclass.invoke("run")
                outcome.append("allowed")
            except SecurityException:
                outcome.append("denied")

        _run(vm, body, backing, group=group_a)
        assert outcome == ["denied"], backing

    def test_own_subtree_creation_allowed(self, vm, sm, backing):
        group_a = ThreadGroup(vm.main_group, "app-a")
        child = ThreadGroup(group_a, "app-a-child")
        outcome = []

        def create():
            JThread(target=lambda: None, group=child)

        jclass = self._untrusted_class(vm, create, "demo.GroupChild")

        def body():
            yield
            try:
                jclass.invoke("run")
                outcome.append("allowed")
            except SecurityException:
                outcome.append("denied")

        _run(vm, body, backing, group=group_a)
        assert outcome == ["allowed"], backing


class TestUserCombination:
    """Section 5.3: code grants and user grants combine identically."""

    @pytest.fixture
    def user_grants(self):
        saved = access.user_permission_resolver
        granted = Permissions([PERM])
        access.user_permission_resolver = lambda: granted
        yield granted
        access.user_permission_resolver = saved

    def test_user_permission_domain_gains_user_grants(
            self, vm, backing, user_grants):
        outcome = []
        domain = _domain("with-user-perm", UserPermission())

        def body():
            yield
            with access.stack_frame(domain):
                try:
                    access.check_permission(PERM)
                    outcome.append("allowed")
                except AccessControlException:
                    outcome.append("denied")

        _run(vm, body, backing)
        assert outcome == ["allowed"], backing

    def test_without_user_permission_still_denied(
            self, vm, backing, user_grants):
        outcome = []
        domain = _domain("no-user-perm")

        def body():
            yield
            with access.stack_frame(domain):
                try:
                    access.check_permission(PERM)
                    outcome.append("allowed")
                except AccessControlException:
                    outcome.append("denied")

        _run(vm, body, backing)
        assert outcome == ["denied"], backing


class TestStackIsolation:
    """Frames held across a yield stay with their task, not the loop."""

    def test_frame_survives_yield_and_pops(self, vm, backing):
        outcome = []
        guard = access.stack_frame(_domain("untrusted"))

        def body():
            guard.__enter__()
            yield
            try:
                access.check_permission(PERM)
                outcome.append("allowed-inside")
            except AccessControlException:
                outcome.append("denied-inside")
            guard.__exit__(None, None, None)
            yield
            access.check_permission(PERM)
            outcome.append("allowed-after")

        _run(vm, body, backing)
        assert outcome == ["denied-inside", "allowed-after"], backing

    def test_two_tasks_do_not_share_frames(self, vm):
        """Sched-specific: both tasks interleave on ONE loop thread, so
        any leak of A's untrusted frame would poison B's check."""
        barrier = threading.Event()
        outcome = {}

        def tainted():
            with access.stack_frame(_domain("untrusted")):
                for _ in range(20):
                    yield
            barrier.set()

        def clean():
            for _ in range(20):
                yield
                try:
                    access.check_permission(PERM)
                except AccessControlException:
                    outcome["leak"] = True
            outcome.setdefault("clean", True)

        thread_a = JThread(target=tainted, group=vm.main_group,
                           backing="sched")
        thread_b = JThread(target=clean, group=vm.main_group,
                           backing="sched")
        thread_a.start()
        thread_b.start()
        thread_a.join(5)
        thread_b.join(5)
        assert barrier.is_set()
        assert outcome == {"clean": True}


class TestFacadeLessTasks:
    """Raw scheduler.spawn (no JThread) still inherits its creator's
    privilege via the task-floor mechanism — sched-only by nature."""

    def test_spawner_context_confines_raw_task(self, vm):
        scheduler = vm.ensure_scheduler()
        outcome = []

        def body():
            yield
            try:
                access.check_permission(PERM)
                outcome.append("allowed")
            except AccessControlException:
                outcome.append("denied")

        with access.stack_frame(_domain("untrusted")):
            task = scheduler.spawn(body)
        assert task.join(5)
        assert outcome == ["denied"]

    def test_trusted_spawner_task_stays_trusted(self, vm):
        scheduler = vm.ensure_scheduler()
        outcome = []

        def body():
            yield
            access.check_permission(PERM)
            outcome.append("allowed")

        task = scheduler.spawn(body)
        assert task.join(5)
        assert outcome == ["allowed"]
