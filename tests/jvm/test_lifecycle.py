"""Experiment F1: the JVM lifetime rule of Figure 1.

"Whenever a thread finishes execution, the JVM checks to see if there is at
least one non-daemon thread remaining.  If so, the JVM continues to execute
all the threads.  If all remaining threads turn out to be daemon threads,
the JVM exits, stopping all those daemon threads in the middle of whatever
they were doing."
"""

import time

import pytest

from repro.jvm.classloading import ClassMaterial
from repro.jvm.errors import ThreadDeath
from repro.jvm.threads import JThread, checkpoint
from repro.jvm.vm import VirtualMachine


def register_main(vm, body):
    material = ClassMaterial("test.Main")
    material.members["main"] = lambda jclass, ctx, args: body(ctx, args)
    vm.registry.register(material)
    return "test.Main"


def test_vm_exits_when_main_returns(vm):
    register_main(vm, lambda ctx, args: ctx.stdout.println("done"))
    vm.run_main("test.Main")
    assert vm.await_termination(5.0)
    assert vm.exit_code == 0
    assert vm.state == "terminated"


def test_boot_threads_are_daemons_and_do_not_block_exit(vm):
    # After boot, only daemon threads (GC, Finalizer, Reference Handler)
    # are alive; the VM must still exit as soon as main finishes.
    names = {t.name for t in vm.root_group.enumerate_threads()}
    assert {"GC", "Finalizer", "Reference Handler"} <= names
    assert all(t.daemon for t in vm.root_group.enumerate_threads())
    register_main(vm, lambda ctx, args: None)
    vm.run_main("test.Main")
    assert vm.await_termination(5.0)


def test_non_daemon_thread_keeps_vm_alive(vm):
    def body(ctx, args):
        def worker():
            JThread.sleep(0.4)
        JThread(target=worker, name="worker", daemon=False).start()

    register_main(vm, body)
    vm.run_main("test.Main")
    # main returned, but the worker is non-daemon: the VM must stay up.
    assert not vm.await_termination(0.15)
    # ... and exit once the worker ends.
    assert vm.await_termination(5.0)


def test_daemon_threads_stopped_in_the_middle(vm):
    """"stopping all those daemon threads in the middle of whatever they
    were doing" — a forever-looping daemon must get ThreadDeath."""
    outcome = []

    def body(ctx, args):
        def forever():
            try:
                while True:
                    checkpoint()
                    time.sleep(0.005)
            except ThreadDeath:
                outcome.append("stopped-mid-work")
                raise

        JThread(target=forever, name="eternal", daemon=True).start()
        JThread.sleep(0.05)

    register_main(vm, body)
    vm.run_main("test.Main")
    assert vm.await_termination(5.0)
    deadline = time.monotonic() + 2
    while not outcome and time.monotonic() < deadline:
        time.sleep(0.01)
    assert outcome == ["stopped-mid-work"]


def test_system_exit_stops_everything(vm):
    progressed = []

    def body(ctx, args):
        def worker():
            JThread.sleep(10.0)
            progressed.append("worker survived")

        JThread(target=worker, daemon=False).start()
        JThread.sleep(0.05)
        ctx.system.exit(7)

    register_main(vm, body)
    vm.run_main("test.Main")
    assert vm.await_termination(5.0)
    assert vm.exit_code == 7
    assert progressed == []


def test_shutdown_hooks_run_once(vm):
    hits = []
    vm.add_shutdown_hook(lambda: hits.append(1))
    register_main(vm, lambda ctx, args: None)
    vm.run_main("test.Main")
    assert vm.await_termination(5.0)
    vm.exit(0)  # second exit is a no-op
    assert hits == [1]


def test_exit_code_from_explicit_exit(vm):
    register_main(vm, lambda ctx, args: ctx.system.exit(42))
    vm.run_main("test.Main")
    assert vm.await_termination(5.0)
    assert vm.exit_code == 42


def test_awt_style_non_daemon_thread_requires_explicit_exit(vm):
    """Section 3.1's AWT observation: an implicitly created non-daemon
    thread (like the event dispatcher) keeps the JVM alive after main
    returns, until System.exit is called."""
    holder = {}

    def body(ctx, args):
        def event_loop():
            while True:
                checkpoint()
                time.sleep(0.005)

        dispatcher = JThread(target=event_loop, name="AWT-EventDispatch",
                             daemon=False)
        dispatcher.start()
        holder["ctx"] = ctx

    register_main(vm, body)
    vm.run_main("test.Main")
    assert not vm.await_termination(0.2), \
        "VM must keep running while the dispatcher thread lives"
    holder["ctx"].system.exit(0)
    assert vm.await_termination(5.0)


def test_finalizer_thread_executes_jobs(vm):
    done = []
    vm.register_finalizer(lambda: done.append("finalized"))
    assert vm.drain_finalizers(2.0)
    assert done == ["finalized"]


def test_await_termination_times_out_while_running(vm):
    stop = []

    def body(ctx, args):
        while not stop:
            JThread.sleep(0.01)

    register_main(vm, body)
    vm.run_main("test.Main")
    assert not vm.await_termination(0.1)
    stop.append(1)
    assert vm.await_termination(5.0)


def test_uncaught_exception_reported_and_vm_exits(vm):
    def body(ctx, args):
        raise ValueError("boom in main")

    register_main(vm, body)
    vm.run_main("test.Main")
    assert vm.await_termination(5.0)
    assert "boom in main" in vm.err.target.to_text()


def test_run_main_passes_args(vm):
    seen = []
    register_main(vm, lambda ctx, args: seen.append(list(args)))
    vm.run_main("test.Main", ["a", "b", "c"])
    assert vm.await_termination(5.0)
    assert seen == [["a", "b", "c"]]


def test_double_boot_rejected(vm):
    from repro.jvm.errors import IllegalStateException
    with pytest.raises(IllegalStateException):
        vm.boot()
