"""VM process state: properties, streams, OS context (Section 3.1)."""

from repro.jvm.vm import JAVA_VERSION, VirtualMachine
from repro.unixfs.machine import standard_machine, standard_process


def test_properties_from_process_hardcoded_and_os(vm):
    """"Some of these values are taken from the ... JVM process (e.g. the
    running user), some ... are hard-coded (e.g. the Java version), and
    some ... acquired by some other means (e.g. the O/S version)."""
    props = vm.system_properties
    assert props.get_property("user.name") == "jvm"          # process
    assert props.get_property("java.version") == JAVA_VERSION  # hard-coded
    assert props.get_property("os.version") == "4.3"          # "syscall"
    assert props.get_property("os.name") == "SimUnix"
    assert props.get_property("user.dir") == "/"
    assert props.get_property("file.separator") == "/"


def test_process_context_carries_pid_and_user():
    machine = standard_machine()
    process_a = standard_process(machine)
    process_b = standard_process(machine)
    assert process_a.pid != process_b.pid
    assert process_a.user.name == "jvm"
    assert process_a.env["HOME"] == "/home/jvm"


def test_two_vms_share_a_machine():
    machine = standard_machine()
    vm_a = VirtualMachine(standard_process(machine)).boot()
    vm_b = VirtualMachine(standard_process(machine)).boot()
    try:
        assert vm_a.machine is vm_b.machine
        assert vm_a.os_context.pid != vm_b.os_context.pid
    finally:
        vm_a._begin_shutdown(0)
        vm_b._begin_shutdown(0)


def test_default_streams_capture(vm):
    vm.out.println("to stdout")
    vm.err.println("to stderr")
    assert "to stdout" in vm.out.target.to_text()
    assert "to stderr" in vm.err.target.to_text()


def test_core_classes_registered_at_boot(vm):
    assert "java.lang.System" in vm.registry
    assert "java.lang.SystemProperties" in vm.registry


def test_boot_loader_reaches_vm(vm):
    assert vm.boot_loader.vm is vm
    system = vm.boot_loader.load_class("java.lang.System")
    assert system.loader.vm is vm


def test_attach_main_thread(vm):
    thread = vm.attach_main_thread()
    try:
        assert thread.group is vm.main_group
        assert not thread.daemon
    finally:
        thread.detach()
    # Detaching the only non-daemon thread ends the VM (Figure 1).
    assert vm.await_termination(5.0)
