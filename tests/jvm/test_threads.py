"""JThread and ThreadGroup semantics (Sections 3.1 and 5.1)."""

import threading
import time

import pytest

from repro.jvm.errors import (
    IllegalArgumentException,
    IllegalStateException,
    IllegalThreadStateException,
    InterruptedException,
    ThreadDeath,
)
from repro.jvm.threads import (
    JThread,
    ThreadGroup,
    checkpoint,
    interruptible_wait,
    owning_application,
)


@pytest.fixture
def root():
    return ThreadGroup(None, "system")


def attach_here(group, name="test-main"):
    thread = JThread.attach(name, group)
    return thread


class TestThreadGroupTree:
    def test_root_must_be_named_system(self):
        with pytest.raises(IllegalArgumentException):
            ThreadGroup(None, "not-system")

    def test_parent_of_reflexive_and_transitive(self, root):
        child = ThreadGroup(root, "child")
        grandchild = ThreadGroup(child, "grandchild")
        assert root.parent_of(root)
        assert root.parent_of(child)
        assert root.parent_of(grandchild)
        assert child.parent_of(grandchild)
        assert not child.parent_of(root)
        assert not grandchild.parent_of(child)

    def test_sibling_groups_are_not_ancestors(self, root):
        a = ThreadGroup(root, "a")
        b = ThreadGroup(root, "b")
        assert not a.parent_of(b)
        assert not b.parent_of(a)

    def test_enumerate_groups_recursive(self, root):
        a = ThreadGroup(root, "a")
        b = ThreadGroup(a, "b")
        assert root.enumerate_groups() == [a, b]
        assert root.enumerate_groups(recurse=False) == [a]

    def test_destroy_empty_group(self, root):
        child = ThreadGroup(root, "child")
        child.destroy()
        assert child.destroyed
        assert child not in root.enumerate_groups()
        with pytest.raises(IllegalThreadStateException):
            child.destroy()

    def test_destroy_with_live_thread_fails(self, root):
        child = ThreadGroup(root, "child")
        done = threading.Event()
        thread = JThread(target=done.wait, name="t", group=child, args=(2,))
        thread.start()
        try:
            with pytest.raises(IllegalThreadStateException):
                child.destroy()
        finally:
            done.set()
            thread.join(2)

    def test_add_to_destroyed_group_fails(self, root):
        child = ThreadGroup(root, "child")
        child.destroy()
        with pytest.raises(IllegalThreadStateException):
            ThreadGroup(child, "grandchild")


class TestThreadLifecycle:
    def test_target_runs_and_finishes(self, root):
        seen = []
        thread = JThread(target=lambda: seen.append(1), name="t", group=root)
        assert not thread.is_alive()
        thread.start()
        thread.join(2)
        assert seen == [1]
        assert not thread.is_alive()
        assert thread.started

    def test_double_start_fails(self, root):
        thread = JThread(target=lambda: None, name="t", group=root)
        thread.start()
        thread.join(2)
        with pytest.raises(IllegalThreadStateException):
            thread.start()

    def test_thread_removed_from_group_on_finish(self, root):
        thread = JThread(target=lambda: None, name="t", group=root)
        thread.start()
        thread.join(2)
        time.sleep(0.05)
        assert thread not in root.enumerate_threads()

    def test_auto_naming(self, root):
        a = JThread(target=lambda: None, group=root)
        b = JThread(target=lambda: None, group=root)
        assert a.name != b.name
        assert a.name.startswith("Thread-")

    def test_group_defaults_to_creator_group(self, root):
        captured = []

        def outer():
            inner = JThread(target=lambda: None)
            captured.append(inner.group)

        thread = JThread(target=outer, name="outer", group=root)
        thread.start()
        thread.join(2)
        assert captured == [root]

    def test_unattached_creator_without_group_fails(self, root):
        with pytest.raises(IllegalArgumentException):
            JThread(target=lambda: None)

    def test_finish_hooks_run_in_dying_thread(self, root):
        order = []
        thread = JThread(target=lambda: order.append("body"), group=root)
        thread.finish_hooks.append(lambda t: order.append("hook"))
        thread.start()
        thread.join(2)
        time.sleep(0.05)
        assert order == ["body", "hook"]


class TestDaemonSemantics:
    def test_daemon_inherited_from_creator(self, root):
        captured = []

        def outer():
            captured.append(JThread(target=lambda: None).daemon)

        daemon_parent = JThread(target=outer, group=root, daemon=True)
        daemon_parent.start()
        daemon_parent.join(2)
        assert captured == [True]

    def test_set_daemon_after_start_fails(self, root):
        thread = JThread(target=lambda: time.sleep(0.1), group=root)
        thread.start()
        with pytest.raises(IllegalThreadStateException):
            thread.set_daemon(True)
        thread.join(2)

    def test_non_daemon_count(self, root):
        stop = threading.Event()
        d = JThread(target=stop.wait, group=root, daemon=True, args=(5,))
        n = JThread(target=stop.wait, group=root, daemon=False, args=(5,))
        d.start()
        n.start()
        try:
            time.sleep(0.02)
            assert root.non_daemon_count() == 1
            assert root.active_count() == 2
        finally:
            stop.set()
            d.join(2)
            n.join(2)


class TestInterruption:
    def test_sleep_interrupted(self, root):
        result = []

        def body():
            try:
                JThread.sleep(5.0)
                result.append("slept")
            except InterruptedException:
                result.append("interrupted")

        thread = JThread(target=body, group=root)
        thread.start()
        time.sleep(0.05)
        thread.interrupt()
        thread.join(2)
        assert result == ["interrupted"]

    def test_interrupt_flag_cleared_on_raise(self, root):
        result = []

        def body():
            try:
                JThread.sleep(5.0)
            except InterruptedException:
                result.append(JThread.current().is_interrupted())

        thread = JThread(target=body, group=root)
        thread.start()
        time.sleep(0.05)
        thread.interrupt()
        thread.join(2)
        assert result == [False]

    def test_stop_raises_thread_death_at_stop_point(self, root):
        result = []

        def body():
            try:
                while True:
                    checkpoint()
                    time.sleep(0.005)
            except ThreadDeath:
                result.append("died")
                raise

        thread = JThread(target=body, group=root)
        thread.start()
        time.sleep(0.05)
        thread.stop()
        thread.join(2)
        assert result == ["died"]
        assert not thread.is_alive()

    def test_stop_wins_over_interrupt(self, root):
        result = []

        def body():
            try:
                JThread.sleep(5.0)
            except ThreadDeath:
                result.append("death")
            except InterruptedException:
                result.append("interrupt")

        thread = JThread(target=body, group=root)
        thread.start()
        time.sleep(0.05)
        thread.stop()  # sets both flags
        thread.join(2)
        assert result == ["death"]

    def test_group_interrupt_reaches_all_threads(self, root):
        child = ThreadGroup(root, "child")
        hits = []

        def body():
            try:
                JThread.sleep(5.0)
            except InterruptedException:
                hits.append(1)

        threads = [JThread(target=body, group=child) for _ in range(3)]
        for thread in threads:
            thread.start()
        time.sleep(0.05)
        root.interrupt()
        for thread in threads:
            thread.join(2)
        assert len(hits) == 3


class TestAttach:
    def test_attach_and_detach(self, root):
        thread = attach_here(root)
        try:
            assert JThread.current() is thread
            assert thread in root.enumerate_threads()
        finally:
            thread.detach()
        assert JThread.current_or_none() is None

    def test_double_attach_fails(self, root):
        thread = attach_here(root)
        try:
            with pytest.raises(IllegalStateException):
                JThread.attach("again", root)
        finally:
            thread.detach()

    def test_current_raises_when_unattached(self):
        with pytest.raises(IllegalStateException):
            JThread.current()


class TestInterruptibleWait:
    def test_predicate_satisfied(self):
        cond = threading.Condition()
        with cond:
            assert interruptible_wait(cond, lambda: True, timeout=0.1)

    def test_timeout(self):
        cond = threading.Condition()
        start = time.monotonic()
        with cond:
            assert not interruptible_wait(cond, lambda: False, timeout=0.1)
        assert time.monotonic() - start < 1.0


class TestOwningApplication:
    def test_walks_ancestry(self, root):
        child = ThreadGroup(root, "child")
        grandchild = ThreadGroup(child, "grandchild")
        marker = object()
        child.application = marker
        assert owning_application(grandchild) is marker
        assert owning_application(child) is marker
        assert owning_application(root) is None
