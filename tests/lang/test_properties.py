"""Properties tables: defaults chain, copy snapshot, load/store."""

import pytest

from repro.jvm.errors import IllegalArgumentException
from repro.lang.properties import Properties


def test_get_set_roundtrip():
    props = Properties()
    assert props.get_property("k") is None
    assert props.get_property("k", "fallback") == "fallback"
    assert props.set_property("k", "v") is None
    assert props.get_property("k") == "v"
    assert props.set_property("k", "v2") == "v"


def test_non_string_rejected():
    props = Properties()
    with pytest.raises(IllegalArgumentException):
        props.set_property("k", 42)
    with pytest.raises(IllegalArgumentException):
        props.set_property(1, "v")


def test_defaults_chain():
    base = Properties()
    base.set_property("shared", "base-value")
    base.set_property("overridden", "base")
    derived = Properties(defaults=base)
    derived.set_property("overridden", "derived")
    assert derived.get_property("shared") == "base-value"
    assert derived.get_property("overridden") == "derived"
    # Changes in the defaults show through until locally overridden.
    base.set_property("shared", "changed")
    assert derived.get_property("shared") == "changed"


def test_property_names_includes_defaults():
    base = Properties()
    base.set_property("a", "1")
    derived = Properties(defaults=base)
    derived.set_property("b", "2")
    assert derived.property_names() == ["a", "b"]
    assert "a" in derived
    assert len(derived) == 2
    assert sorted(derived) == ["a", "b"]


def test_copy_is_snapshot():
    """Section 5.1: the child inherits the parent's *current* state; later
    changes do not propagate in either direction."""
    parent = Properties()
    parent.set_property("color", "blue")
    child = parent.copy()
    assert child.get_property("color") == "blue"
    parent.set_property("color", "red")
    child.set_property("shape", "round")
    assert child.get_property("color") == "blue"
    assert parent.get_property("shape") is None


def test_remove_property():
    props = Properties()
    props.set_property("k", "v")
    assert props.remove_property("k") == "v"
    assert props.remove_property("k") is None
    assert props.get_property("k") is None


def test_store_load_roundtrip():
    props = Properties()
    props.set_property("user.name", "alice")
    props.set_property("java.version", "1.2")
    text = props.store()
    restored = Properties()
    restored.load(text)
    assert restored.get_property("user.name") == "alice"
    assert restored.get_property("java.version") == "1.2"


def test_load_skips_comments_and_blank_lines():
    props = Properties()
    props.load("# comment\n\n! another\nkey=value\nother: thing\n")
    assert props.get_property("key") == "value"
    assert props.get_property("other") == "thing"


def test_load_malformed_line_rejected():
    props = Properties()
    with pytest.raises(IllegalArgumentException):
        props.load("no separator here")
