"""The Reflection API slice: invoke_main and member-access rules (§5.6)."""

import pytest

from repro.jvm.classloading import ClassMaterial
from repro.jvm.errors import NoSuchMethodException, SecurityException
from repro.lang import reflect
from repro.lang.context import InvocationContext
from repro.security.codesource import CodeSource
from repro.security.sysmanager import SystemSecurityManager


@pytest.fixture
def demo_class(vm):
    material = ClassMaterial(
        "demo.Reflected",
        code_source=CodeSource("file:/usr/local/java/apps/r/R.class"))

    @material.member
    def main(jclass, ctx, args):
        return f"main ran with {args}"

    @material.member
    def visible(jclass):
        return "public"

    @material.member
    def _hidden(jclass):
        return "non-public"

    vm.registry.register(material)
    return vm.boot_loader.load_class("demo.Reflected")


def test_invoke_main(vm, demo_class):
    ctx = InvocationContext(vm, vm.boot_loader, demo_class)
    assert reflect.invoke_main(demo_class, ctx, ["x"]) == \
        "main ran with ['x']"


def test_invoke_main_missing(vm):
    material = ClassMaterial("demo.NoMain")
    vm.registry.register(material)
    jclass = vm.boot_loader.load_class("demo.NoMain")
    ctx = InvocationContext(vm, vm.boot_loader, jclass)
    with pytest.raises(NoSuchMethodException):
        reflect.invoke_main(jclass, ctx, [])


def test_public_members_listed_by_default(demo_class):
    assert reflect.get_members(demo_class) == ["main", "visible"]


def test_public_member_access_without_sm(demo_class):
    assert reflect.invoke(demo_class, "visible") == "public"
    assert reflect.invoke(demo_class, "_hidden") == "non-public"


class TestWithSystemSecurityManager:
    """Section 5.6: "Public members of a class can be accessed normally
    through the reflection API.  Access to non-public members needs an
    appropriate permission"."""

    @pytest.fixture(autouse=True)
    def install_sm(self, vm):
        vm.set_security_manager(SystemSecurityManager())

    def test_public_member_still_free(self, vm, demo_class):
        # Invoke from inside unprivileged code of the same class.
        material = ClassMaterial(
            "demo.Caller",
            code_source=CodeSource("file:/untrusted/Caller.class"))

        @material.member
        def main(jclass, target):
            return reflect.invoke(target, "visible")

        vm.registry.register(material)
        caller = vm.boot_loader.load_class("demo.Caller")
        assert caller.invoke("main", demo_class) == "public"

    def test_non_public_member_needs_permission(self, vm, demo_class):
        material = ClassMaterial(
            "demo.Snooper",
            code_source=CodeSource("file:/untrusted/Snooper.class"))

        @material.member
        def main(jclass, target):
            return reflect.invoke(target, "_hidden")

        vm.registry.register(material)
        snooper = vm.boot_loader.load_class("demo.Snooper")
        with pytest.raises(SecurityException):
            snooper.invoke("main", demo_class)

    def test_trusted_code_may_access_non_public(self, vm, demo_class):
        # Boot-class-path (trusted) code has AllPermission.
        material = ClassMaterial("demo.TrustedCaller")  # no code source

        @material.member
        def main(jclass, target):
            return reflect.invoke(target, "_hidden")

        vm.registry.register(material)
        trusted = vm.boot_loader.load_class("demo.TrustedCaller")
        assert trusted.invoke("main", demo_class) == "non-public"

    def test_declared_member_listing_needs_permission(self, vm, demo_class):
        material = ClassMaterial(
            "demo.Lister",
            code_source=CodeSource("file:/untrusted/Lister.class"))

        @material.member
        def main(jclass, target):
            return reflect.get_members(target, include_non_public=True)

        vm.registry.register(material)
        lister = vm.boot_loader.load_class("demo.Lister")
        with pytest.raises(SecurityException):
            lister.invoke("main", demo_class)
