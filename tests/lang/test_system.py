"""The System class material and facade (Sections 3.1, 5.5, 5.6)."""

import pytest

from repro.io.streams import ByteArrayOutputStream, PrintStream
from repro.lang.system import CLASS_NAME, SystemFacade


def load_system(vm):
    return vm.boot_loader.load_class(CLASS_NAME)


def test_static_init_binds_process_streams(vm):
    """Section 3.1: "three streams are created that point to standard
    input, standard output and error file descriptors of the JVM
    process"."""
    system = load_system(vm)
    assert system.statics["in"] is vm.stdin
    assert system.statics["out"] is vm.out
    assert system.statics["err"] is vm.err
    assert system.statics["security_manager"] is None


def test_facade_stream_accessors(vm):
    facade = SystemFacade(load_system(vm))
    assert facade.stdin is vm.stdin
    assert facade.out is vm.out
    assert facade.err is vm.err


def test_set_streams_through_facade(vm):
    facade = SystemFacade(load_system(vm))
    replacement = PrintStream(ByteArrayOutputStream())
    facade.set_out(replacement)
    assert facade.out is replacement
    facade.set_err(replacement)
    assert facade.err is replacement


def test_properties_reached_through_shared_class(vm):
    facade = SystemFacade(load_system(vm))
    assert facade.get_property("java.version") == \
        vm.system_properties.get_property("java.version")
    facade.set_property("custom.key", "custom-value")
    assert vm.system_properties.get_property("custom.key") == "custom-value"
    assert facade.get_properties() is vm.system_properties


def test_get_property_default(vm):
    facade = SystemFacade(load_system(vm))
    assert facade.get_property("no.such.key", "dflt") == "dflt"


def test_security_manager_slot_per_definition(vm):
    facade = SystemFacade(load_system(vm))
    marker = object()
    facade.set_security_manager(marker)
    assert facade.get_security_manager() is marker
    assert load_system(vm).statics["security_manager"] is marker


def test_exit_stops_vm(vm):
    facade = SystemFacade(load_system(vm))
    thread = vm.attach_main_thread()
    try:
        facade.exit(3)
    finally:
        thread.detach()
    assert vm.await_termination(5.0)
    assert vm.exit_code == 3


def test_clock_methods(vm):
    facade = SystemFacade(load_system(vm))
    assert facade.current_time_millis() > 0
    first = facade.nano_time()
    second = facade.nano_time()
    assert second >= first
    assert facade.line_separator() == "\n"


def test_facade_rejects_non_system_class(vm):
    other = vm.boot_loader.load_class("java.lang.SystemProperties")
    with pytest.raises(ValueError):
        SystemFacade(other)
