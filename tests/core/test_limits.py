"""Per-application resource limits and exit hooks."""

import time

import pytest

from repro.awt.components import Frame
from repro.core.application import ResourceLimitExceeded, ResourceLimits
from repro.jvm.threads import JThread


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestThreadLimit:
    def test_thread_limit_enforced(self, host, register_app):
        outcome = {}

        def main(jclass, ctx, args):
            spawned = 0
            try:
                for _ in range(10):
                    JThread(target=lambda: JThread.sleep(5.0),
                            daemon=False).start()
                    spawned += 1
            except ResourceLimitExceeded:
                outcome["spawned"] = spawned
                return 0
            outcome["spawned"] = spawned
            return 0

        class_name = register_app("ThreadHog", main)
        app = host.exec(class_name, [],
                        limits=ResourceLimits(max_threads=4))
        assert app.wait_for(10) == 0
        # main thread counts too: 4 total means 3 extra workers.
        assert outcome["spawned"] == 3
        app.destroy()
        app.wait_for(5)

    def test_unlimited_by_default(self, host, register_app):
        def main(jclass, ctx, args):
            workers = [JThread(target=lambda: JThread.sleep(0.05),
                               daemon=False) for _ in range(10)]
            for worker in workers:
                worker.start()
            return 0

        app = host.exec(register_app("ManyThreads", main))
        assert app.wait_for(10) == 0

    def test_limits_inherited_by_children(self, host, register_app):
        outcome = {}

        def child_main(jclass, ctx, args):
            outcome["limit"] = ctx.app.limits.max_threads
            return 0

        child_class = register_app("LimitChild", child_main)

        def parent_main(jclass, ctx, args):
            child = ctx.exec(child_class, [])
            child.wait_for(5)
            return 0

        parent_class = register_app("LimitParent", parent_main)
        app = host.exec(parent_class, [],
                        limits=ResourceLimits(max_threads=7))
        assert app.wait_for(10) == 0
        assert outcome["limit"] == 7


class TestChildAndStreamLimits:
    def test_child_limit_counts_live_children(self, host, register_app):
        outcome = {}

        def leaf_main(jclass, ctx, args):
            JThread.sleep(30.0)
            return 0

        leaf = register_app("LimitLeaf", leaf_main)

        def main(jclass, ctx, args):
            launched = 0
            try:
                for _ in range(10):
                    ctx.exec(leaf, [])
                    launched += 1
            except ResourceLimitExceeded:
                pass
            outcome["launched"] = launched
            JThread.sleep(30.0)
            return 0

        app = host.exec(register_app("Forker", main), [],
                        limits=ResourceLimits(max_children=3))
        assert wait_until(lambda: "launched" in outcome)
        assert outcome["launched"] == 3
        app.destroy()  # cascades to the parked children
        app.wait_for(5)

    def test_terminated_children_free_the_budget(self, host, register_app):
        """The ceiling bounds *live* children, like a Unix process limit."""
        outcome = {}
        leaf = register_app("QuickLeaf", lambda j, c, a: 0)

        def main(jclass, ctx, args):
            for _ in range(6):  # sequential: each exits before the next
                child = ctx.exec(leaf, [])
                child.wait_for(5)
                while child in ctx.app.children:
                    JThread.sleep(0.005)
            outcome["ok"] = True
            return 0

        app = host.exec(register_app("SerialForker", main), [],
                        limits=ResourceLimits(max_children=1))
        assert app.wait_for(15) == 0
        assert outcome.get("ok") is True

    def test_open_stream_limit(self, host, register_app):
        outcome = {}

        def main(jclass, ctx, args):
            from repro.io.file import FileOutputStream
            opened = 0
            try:
                streams = []
                for index in range(10):
                    streams.append(
                        FileOutputStream(ctx, f"/tmp/limit{index}.txt"))
                    opened += 1
            except ResourceLimitExceeded:
                pass
            outcome["opened"] = opened
            return 0

        app = host.exec(register_app("StreamHog2", main), [],
                        limits=ResourceLimits(max_open_streams=2))
        assert app.wait_for(10) == 0
        assert outcome["opened"] == 2

    def test_closing_frees_stream_budget(self, host, register_app):
        outcome = {}

        def main(jclass, ctx, args):
            from repro.io.file import FileOutputStream
            for index in range(5):
                stream = FileOutputStream(ctx, f"/tmp/cycle{index}.txt")
                stream.close()
            outcome["ok"] = True
            return 0

        app = host.exec(register_app("StreamCycler", main), [],
                        limits=ResourceLimits(max_open_streams=1))
        assert app.wait_for(10) == 0
        assert outcome.get("ok") is True


class TestWindowLimit:
    def test_window_limit(self, host, register_app):
        outcome = {}

        def main(jclass, ctx, args):
            shown = 0
            try:
                for index in range(5):
                    Frame(f"limited-{index}",
                          name=f"limframe-{index}").show(ctx.vm.toolkit)
                    shown += 1
            except ResourceLimitExceeded:
                pass
            outcome["shown"] = shown
            return 0

        app = host.exec(register_app("WindowHog", main), [],
                        limits=ResourceLimits(max_windows=2))
        assert wait_until(lambda: "shown" in outcome)
        assert outcome["shown"] == 2
        app.destroy()
        app.wait_for(5)


class TestExitHooks:
    def test_hooks_run_before_threads_stop(self, host, register_app):
        order = []

        def main(jclass, ctx, args):
            ctx.app.add_exit_hook(lambda: order.append("hook"))

            def worker():
                try:
                    JThread.sleep(30.0)
                finally:
                    order.append("worker-stopped")

            JThread(target=worker, daemon=False).start()
            JThread.sleep(30.0)
            return 0

        app = host.exec(register_app("Hooked", main))
        assert wait_until(lambda: len(app.live_threads()) >= 2)
        app.destroy()
        app.wait_for(5)
        assert wait_until(lambda: "worker-stopped" in order)
        assert order.index("hook") < order.index("worker-stopped")

    def test_failing_hook_does_not_block_teardown(self, host,
                                                  register_app):
        def main(jclass, ctx, args):
            ctx.app.add_exit_hook(lambda: 1 / 0)
            JThread.sleep(30.0)
            return 0

        app = host.exec(register_app("BadHook", main))
        app.destroy()
        assert app.wait_for(5) is not None
        assert app.terminated

    def test_hooks_run_on_natural_exit_too(self, host, register_app):
        hits = []

        def main(jclass, ctx, args):
            ctx.app.add_exit_hook(lambda: hits.append("ran"))
            return 0

        app = host.exec(register_app("NaturalHook", main))
        assert app.wait_for(10) == 0
        assert wait_until(lambda: hits == ["ran"])
