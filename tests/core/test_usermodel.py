"""Users running Java code (Section 5.2): inheritance and the setUser
privilege."""

import pytest

from repro.core.usermodel import become_user, become_user_privileged
from repro.jvm.errors import SecurityException
from repro.security.auth import NULL_USER


def test_initial_application_runs_as_null_user(host):
    """"it might even be some sort of 'null' user for bootstrapping"."""
    assert host.initial.user is NULL_USER


def test_child_inherits_running_user(host, register_app):
    seen = {}

    def child_main(jclass, ctx, args):
        seen["user"] = ctx.user.name
        return 0

    child_class = register_app("UserChild", child_main)

    def parent_main(jclass, ctx, args):
        child = ctx.exec(child_class, [])
        child.wait_for(5)
        return 0

    parent_class = register_app("UserParent", parent_main)
    alice = host.vm.user_database.lookup("alice")
    parent = host.exec(parent_class, [], user=alice)
    assert parent.wait_for(5) == 0
    assert seen["user"] == "alice"


def test_ordinary_application_cannot_set_user(host, register_app):
    """"Special privileges are needed to set the user, and these
    privileges are not normally granted to applications."(§5.2)"""
    outcome = {}

    def main(jclass, ctx, args):
        alice = ctx.vm.user_database.lookup("alice")
        try:
            become_user(alice)
            outcome["result"] = "became-alice"
        except SecurityException:
            outcome["result"] = "denied"
        return 0

    app = host.exec(register_app("Impostor", main))
    assert app.wait_for(5) == 0
    assert outcome["result"] == "denied"


def test_do_privileged_does_not_help_unprivileged_code(host, register_app):
    """do_privileged asserts the caller's *own* grants; an app without the
    setUser grant gains nothing."""
    outcome = {}

    def main(jclass, ctx, args):
        alice = ctx.vm.user_database.lookup("alice")
        try:
            become_user_privileged(alice)
            outcome["result"] = "became-alice"
        except SecurityException:
            outcome["result"] = "denied"
        return 0

    app = host.exec(register_app("SneakyImpostor", main))
    assert app.wait_for(5) == 0
    assert outcome["result"] == "denied"


def test_login_code_source_may_set_user(host, register_app):
    """"All we need to do is grant the login program the privilege to set
    its own user.  This can be done through code source-based security
    policies, since it is the program that is granted the privilege, not
    the user that runs it." (§5.2)"""
    outcome = {}

    def main(jclass, ctx, args):
        alice = ctx.vm.user_database.lookup("alice")
        become_user_privileged(alice)
        outcome["user"] = ctx.app.user.name
        return 0

    # Registered under the login program's code source.
    class_name = register_app(
        "FakeLogin", main,
        code_source="file:/usr/local/java/tools/login/FakeLogin.class")
    app = host.exec(class_name)
    assert app.wait_for(5) == 0
    assert outcome["user"] == "alice"
    # The privilege belongs to the *program*: it worked even though the
    # app was started by the null user.
    assert app.user.name == "alice"


def test_host_code_may_set_user_directly(host, register_app):
    """Unattached/trusted host frames can administratively set users."""
    def main(jclass, ctx, args):
        from repro.jvm.threads import JThread
        JThread.sleep(30.0)
        return 0

    app = host.exec(register_app("Administered", main))
    bob = host.vm.user_database.lookup("bob")
    app.set_user(bob)  # called from the host session: trusted
    assert app.user.name == "bob"
    app.destroy()
    app.wait_for(5)
