"""Experiment F3: applications as thread sets with inherited state (§5.1)."""

import pytest

from repro.core.application import Application
from repro.core.context import (
    current_application,
    current_application_or_none,
)
from repro.io.streams import ByteArrayOutputStream, PrintStream
from repro.jvm.errors import IllegalStateException
from repro.jvm.threads import JThread
from repro.lang.properties import Properties


def test_exec_runs_main_in_new_thread_group(host, register_app):
    seen = {}

    def main(jclass, ctx, args):
        thread = JThread.current()
        seen["thread_name"] = thread.name
        seen["group"] = thread.group
        seen["args"] = list(args)
        return 0

    class_name = register_app("Model", main)
    app = host.exec(class_name, ["a", "b"])
    assert app.wait_for(5) == 0
    assert seen["args"] == ["a", "b"]
    assert seen["group"] is app.thread_group
    assert seen["thread_name"].startswith("main-")
    # The app's group nests under the parent application's group.
    assert host.initial.thread_group.parent_of(app.thread_group)


def test_exec_returns_immediately(host, register_app):
    def main(jclass, ctx, args):
        JThread.sleep(0.5)
        return 0

    class_name = register_app("SlowStart", main)
    app = host.exec(class_name)
    assert app.state == "running"  # exec did not wait
    assert app.wait_for(5) == 0


def test_current_application_resolves_from_any_app_thread(host,
                                                          register_app):
    resolved = []

    def main(jclass, ctx, args):
        resolved.append(current_application())

        def worker():
            resolved.append(current_application())

        thread = JThread(target=worker)
        thread.start()
        thread.join(5)
        return 0

    class_name = register_app("Resolver", main)
    app = host.exec(class_name)
    assert app.wait_for(5) == 0
    assert resolved == [app, app]


def test_two_instances_of_same_program_are_distinct(host, register_app):
    """"threads give us a convenient way to distinguish two instances of
    the same program running inside a single JVM" (Figure 3)."""
    instances = []

    def main(jclass, ctx, args):
        instances.append(current_application())
        return 0

    class_name = register_app("Twice", main)
    app_a = host.exec(class_name)
    app_b = host.exec(class_name)
    assert app_a.wait_for(5) == 0
    assert app_b.wait_for(5) == 0
    assert set(instances) == {app_a, app_b}
    assert app_a.thread_group is not app_b.thread_group


class TestStateInheritance:
    """"When an application creates a child application, the current
    application-wide state of the parent is inherited by the child."""

    def test_child_inherits_parent_state(self, host, register_app):
        child_view = {}

        def child_main(jclass, ctx, args):
            child_view["user"] = ctx.app.user.name
            child_view["cwd"] = ctx.app.cwd
            child_view["color"] = ctx.app.properties.get_property("color")
            child_view["stdout"] = ctx.stdout
            return 0

        child_class = register_app("ChildApp", child_main)

        def parent_main(jclass, ctx, args):
            ctx.app.set_cwd("/tmp")
            ctx.app.properties.set_property("color", "blue")
            child = ctx.exec(child_class, [])
            child.wait_for(5)
            return 0

        parent_class = register_app("ParentApp", parent_main)
        alice = host.vm.user_database.lookup("alice")
        out = PrintStream(ByteArrayOutputStream())
        parent = host.exec(parent_class, [], user=alice, stdout=out)
        assert parent.wait_for(5) == 0
        assert child_view["user"] == "alice"
        assert child_view["cwd"] == "/tmp"
        assert child_view["color"] == "blue"
        assert child_view["stdout"] is out

    def test_child_properties_are_a_snapshot(self, host, register_app):
        observed = {}

        def child_main(jclass, ctx, args):
            ctx.app.properties.set_property("mine", "child")
            observed["color"] = ctx.app.properties.get_property("color")
            return 0

        child_class = register_app("SnapChild", child_main)

        def parent_main(jclass, ctx, args):
            ctx.app.properties.set_property("color", "red")
            child = ctx.exec(child_class, [])
            child.wait_for(5)
            observed["parent_mine"] = \
                ctx.app.properties.get_property("mine")
            return 0

        parent_class = register_app("SnapParent", parent_main)
        parent = host.exec(parent_class)
        assert parent.wait_for(5) == 0
        assert observed["color"] == "red"
        assert observed["parent_mine"] is None

    def test_overrides_replace_inherited_values(self, host, register_app):
        seen = {}

        def main(jclass, ctx, args):
            seen["user"] = ctx.app.user.name
            seen["cwd"] = ctx.app.cwd
            return 0

        class_name = register_app("Overridden", main)
        bob = host.vm.user_database.lookup("bob")
        props = Properties()
        app = host.exec(class_name, [], user=bob, cwd="/etc",
                        properties=props)
        assert app.wait_for(5) == 0
        assert seen["user"] == "bob"
        assert seen["cwd"] == "/etc"


class TestRegistry:
    def test_applications_listed_and_removed(self, host, register_app):
        def main(jclass, ctx, args):
            JThread.sleep(10.0)
            return 0

        class_name = register_app("Listed", main)
        app = host.exec(class_name)
        table = host.vm.application_registry.applications(check=False)
        assert app in table
        assert host.initial in table
        app.destroy()
        app.wait_for(5)
        table = host.vm.application_registry.applications(check=False)
        assert app not in table

    def test_find_by_id(self, host, register_app):
        def main(jclass, ctx, args):
            JThread.sleep(10.0)
            return 0

        app = host.exec(register_app("Findable", main))
        registry = host.vm.application_registry
        assert registry.find(app.app_id) is app
        assert registry.find(99999) is None
        app.destroy()
        app.wait_for(5)


def test_host_thread_outside_sessions_has_no_application(mvm):
    assert current_application_or_none() is None
    with pytest.raises(IllegalStateException):
        current_application()


def test_exec_without_vm_or_parent_fails():
    from repro.jvm.errors import IllegalArgumentException
    with pytest.raises(IllegalArgumentException):
        Application.exec("any.Class")
