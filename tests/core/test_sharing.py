"""Shared objects between applications (Section 8, future work) and the
name-space type-safety guard."""

import pytest

from repro.jvm.classloading import ClassMaterial, JObject
from repro.jvm.errors import (
    ClassCastException,
    IllegalArgumentException,
    SecurityException,
)


@pytest.fixture
def message_class(mvm):
    """A plain (shared, boot-loader) class typed objects can safely use."""
    material = ClassMaterial("ipc.Message")

    @material.member
    def text_of(jclass, obj):
        return obj.fields["text"]

    mvm.vm.registry.register(material)
    return mvm.vm.boot_loader.load_class("ipc.Message")


def app_run(mvm, register_app, name, main, **kwargs):
    app = mvm.exec(register_app(name, main), **kwargs)
    assert app.wait_for(10) == 0
    return app


class TestUntypedSharing:
    def test_bind_and_lookup_across_applications(self, host, register_app):
        received = {}

        def producer(jclass, ctx, args):
            ctx.vm.shared_objects.bind("greeting", "hello from producer")
            return 0

        def consumer(jclass, ctx, args):
            received["value"] = ctx.vm.shared_objects.lookup("greeting")
            return 0

        app_run(host, register_app, "Producer", producer)
        app_run(host, register_app, "Consumer", consumer)
        assert received["value"] == "hello from producer"

    def test_unshareable_type_rejected(self, host):
        with pytest.raises(IllegalArgumentException):
            host.vm.shared_objects.bind("bad", object())
        with pytest.raises(IllegalArgumentException):
            host.vm.shared_objects.bind("bad", ["lists", "leak"])

    def test_tuple_of_primitives_ok(self, host):
        host.vm.shared_objects.bind("point", (3, 4))
        assert host.vm.shared_objects.lookup("point") == (3, 4)

    def test_duplicate_bind_rejected_unless_replace(self, host):
        space = host.vm.shared_objects
        space.bind("slot", "first")
        with pytest.raises(IllegalArgumentException):
            space.bind("slot", "second")
        space.bind("slot", "second", replace=True)
        assert space.lookup("slot") == "second"

    def test_missing_name(self, host):
        with pytest.raises(IllegalArgumentException):
            host.vm.shared_objects.lookup("never-bound")

    def test_names_listing(self, host):
        host.vm.shared_objects.bind("a", "1")
        host.vm.shared_objects.bind("b", "2")
        assert host.vm.shared_objects.names() == ["a", "b"]


class TestTypedSharing:
    def test_boot_class_objects_shared_safely(self, host, register_app,
                                              message_class):
        """Objects of a non-reloadable class resolve identically in every
        application's name space — safe to share."""
        received = {}

        def producer(jclass, ctx, args):
            message = JObject(ctx.load_class("ipc.Message"),
                              text="typed payload")
            ctx.vm.shared_objects.bind("msg", message)
            return 0

        def consumer(jclass, ctx, args):
            message = ctx.vm.shared_objects.lookup("msg", ctx)
            received["text"] = message.invoke("text_of")
            received["same_class"] = message.is_instance_of(
                ctx.load_class("ipc.Message"))
            return 0

        app_run(host, register_app, "TypedProducer", producer)
        app_run(host, register_app, "TypedConsumer", consumer)
        assert received["text"] == "typed payload"
        assert received["same_class"] is True

    def test_reloaded_class_objects_rejected_across_name_spaces(
            self, host, register_app):
        """The §8 hazard: an object of a *reloaded* class (here, System —
        re-defined per application) must not cross into another
        application, whose loader resolves that name to a different
        class."""
        outcome = {}

        def producer(jclass, ctx, args):
            # An object whose class is this application's own System copy.
            own_system = ctx.load_class("java.lang.System")
            ctx.vm.shared_objects.bind("sysobj", JObject(own_system))
            return 0

        def consumer(jclass, ctx, args):
            try:
                ctx.vm.shared_objects.lookup("sysobj", ctx)
                outcome["result"] = "leaked"
            except ClassCastException:
                outcome["result"] = "rejected"
            return 0

        app_run(host, register_app, "SysProducer", producer)
        app_run(host, register_app, "SysConsumer", consumer)
        assert outcome["result"] == "rejected"

    def test_same_application_lookup_is_fine(self, host, register_app):
        outcome = {}

        def main(jclass, ctx, args):
            own_system = ctx.load_class("java.lang.System")
            ctx.vm.shared_objects.bind("own", JObject(own_system))
            back = ctx.vm.shared_objects.lookup("own", ctx)
            outcome["same"] = back.jclass is own_system
            return 0

        app_run(host, register_app, "SelfShare", main)
        assert outcome["same"] is True

    def test_host_lookup_skips_name_space_check(self, host, message_class):
        host.vm.shared_objects.bind("host-msg",
                                    JObject(message_class, text="x"))
        value = host.vm.shared_objects.lookup("host-msg")
        assert value.fields["text"] == "x"


class TestOwnershipAndSecurity:
    def test_unbind_by_owner(self, host, register_app):
        def main(jclass, ctx, args):
            space = ctx.vm.shared_objects
            space.bind("mine", "value")
            space.unbind("mine")
            return 0

        app_run(host, register_app, "OwnerUnbind", main)
        with pytest.raises(IllegalArgumentException):
            host.vm.shared_objects.lookup("mine")

    def test_unbind_by_stranger_denied(self, host, register_app):
        outcome = {}

        def producer(jclass, ctx, args):
            ctx.vm.shared_objects.bind("protected", "value")
            from repro.jvm.threads import JThread
            JThread.sleep(30.0)
            return 0

        def attacker(jclass, ctx, args):
            try:
                ctx.vm.shared_objects.unbind("protected")
                outcome["result"] = "unbound"
            except SecurityException:
                outcome["result"] = "denied"
            return 0

        producer_class = register_app("BindHolder", producer)
        holder = host.exec(producer_class)
        import time
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            if "protected" in host.vm.shared_objects.names():
                break
            time.sleep(0.01)
        app_run(host, register_app, "BindAttacker", attacker)
        assert outcome["result"] == "denied"
        holder.destroy()
        holder.wait_for(5)

    def test_bindings_survive_owner_and_reparent(self, host,
                                                 register_app):
        """SysV-IPC-like persistence: the binding outlives its creator and
        its management rights pass to the creator's parent."""
        def producer(jclass, ctx, args):
            ctx.vm.shared_objects.bind("legacy", "outlives me")
            return 0

        app_run(host, register_app, "LegacyProducer", producer)
        space = host.vm.shared_objects
        assert space.lookup("legacy") == "outlives me"
        # The host session (the producer's ancestor chain) may unbind it.
        space.unbind("legacy")
        assert "legacy" not in space.names()

    def test_remote_code_denied_without_grant(self, host, register_app):
        outcome = {}

        def main(jclass, ctx, args):
            try:
                ctx.vm.shared_objects.bind("evil", "payload")
                outcome["result"] = "bound"
            except SecurityException:
                outcome["result"] = "denied"
            return 0

        class_name = register_app(
            "RemoteBinder", main,
            code_source="http://remote.example.com/Binder.class")
        app_run(host, register_app, "unused", lambda j, c, a: 0)
        app = host.exec(class_name)
        assert app.wait_for(10) == 0
        assert outcome["result"] == "denied"
