"""Application lifecycle endings (Section 5.1): explicit exit, auto-exit,
external destroy, and the reaper's cleanup duties."""

import time

import pytest

from repro.core.application import KILLED_EXIT_CODE, Application
from repro.io.streams import make_pipe
from repro.jvm.errors import (
    IllegalStateException,
    IllegalThreadStateException,
)
from repro.jvm.threads import JThread


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestExplicitExit:
    def test_exit_never_returns_and_sets_code(self, host, register_app):
        after_exit = []

        def main(jclass, ctx, args):
            ctx.stdout.println("bye, bye")
            Application.exit(5)
            after_exit.append("we will never get here")

        app = host.exec(register_app("Exiter", main))
        assert app.wait_for(5) == 5
        assert after_exit == []

    def test_exit_stops_sibling_threads(self, host, register_app):
        survived = []

        def main(jclass, ctx, args):
            def worker():
                JThread.sleep(30.0)
                survived.append(True)

            JThread(target=worker, daemon=False).start()
            JThread.sleep(0.05)
            Application.exit(0)

        app = host.exec(register_app("Stopper", main))
        assert app.wait_for(5) == 0
        assert survived == []
        assert wait_until(lambda: not app.live_threads())

    def test_exit_outside_application_rejected(self, mvm):
        with pytest.raises(IllegalStateException):
            Application.exit(0)


class TestAutoExit:
    def test_main_return_auto_exits_with_zero(self, host, register_app):
        app = host.exec(register_app("Plain", lambda j, c, a: None))
        assert app.wait_for(5) == 0
        assert app.terminated

    def test_nonzero_main_return_becomes_exit_code(self, host,
                                                   register_app):
        app = host.exec(register_app("Failing", lambda j, c, a: 3))
        assert app.wait_for(5) == 3

    def test_app_lives_while_non_daemon_thread_runs(self, host,
                                                    register_app):
        def main(jclass, ctx, args):
            def worker():
                JThread.sleep(0.5)

            JThread(target=worker, daemon=False).start()
            return 0

        app = host.exec(register_app("Lingering", main))
        assert app.wait_for(0.15) is None, \
            "main returned but a non-daemon thread is still alive"
        assert app.wait_for(5) == 0

    def test_daemon_threads_do_not_keep_app_alive(self, host,
                                                  register_app):
        def main(jclass, ctx, args):
            def background():
                JThread.sleep(60.0)

            JThread(target=background, daemon=True).start()
            return 0

        app = host.exec(register_app("DaemonOnly", main))
        assert app.wait_for(5) == 0


class TestDestroy:
    def test_parent_may_destroy_child(self, host, register_app):
        def main(jclass, ctx, args):
            JThread.sleep(60.0)
            return 0

        app = host.exec(register_app("Victim", main))
        app.destroy()
        assert app.wait_for(5) == KILLED_EXIT_CODE

    def test_destroy_cascades_to_descendants(self, host, register_app):
        grandchild_holder = {}

        def leaf_main(jclass, ctx, args):
            JThread.sleep(60.0)
            return 0

        leaf_class = register_app("Leaf", leaf_main)

        def mid_main(jclass, ctx, args):
            grandchild_holder["app"] = ctx.exec(leaf_class, [])
            JThread.sleep(60.0)
            return 0

        mid = host.exec(register_app("Mid", mid_main))
        assert wait_until(lambda: "app" in grandchild_holder)
        leaf = grandchild_holder["app"]
        mid.destroy()
        assert mid.wait_for(5) is not None
        assert leaf.wait_for(5) is not None
        assert leaf.terminated

    def test_destroy_is_idempotent(self, host, register_app):
        def main(jclass, ctx, args):
            JThread.sleep(60.0)
            return 0

        app = host.exec(register_app("Once", main))
        app.destroy(9)
        app.destroy(10)
        assert app.wait_for(5) == 9


class TestReaperCleanup:
    def test_opened_streams_closed(self, host, register_app):
        opened = {}

        def main(jclass, ctx, args):
            from repro.io.file import FileOutputStream
            opened["stream"] = FileOutputStream(ctx, "/tmp/reaped.txt")
            JThread.sleep(60.0)
            return 0

        app = host.exec(register_app("StreamHolder", main))
        assert wait_until(lambda: "stream" in opened)
        app.destroy()
        app.wait_for(5)
        assert wait_until(lambda: opened["stream"].closed)

    def test_thread_group_emptied(self, host, register_app):
        def main(jclass, ctx, args):
            for _ in range(3):
                JThread(target=lambda: JThread.sleep(60.0),
                        daemon=False).start()
            JThread.sleep(60.0)
            return 0

        app = host.exec(register_app("Crowded", main))
        assert wait_until(lambda: len(app.live_threads()) >= 4)
        app.destroy()
        app.wait_for(5)
        assert wait_until(
            lambda: not app.thread_group.enumerate_threads())

    def test_adopting_thread_into_exiting_app_fails(self, host,
                                                    register_app):
        outcome = {}

        def main(jclass, ctx, args):
            app = ctx.app
            app._begin_exit(0)
            try:
                thread = JThread(target=lambda: None)
                thread.start()
                outcome["spawned"] = True
            except IllegalThreadStateException:
                outcome["spawned"] = False
            JThread.sleep(60.0)

        app = host.exec(register_app("Zombie", main))
        app.wait_for(5)
        assert outcome == {"spawned": False}


class TestWaitFor:
    def test_wait_for_times_out(self, host, register_app):
        def main(jclass, ctx, args):
            JThread.sleep(60.0)
            return 0

        app = host.exec(register_app("Eternal", main))
        assert app.wait_for(0.1) is None
        app.destroy()
        assert app.wait_for(5) is not None

    def test_wait_for_on_finished_app_returns_immediately(self, host,
                                                          register_app):
        app = host.exec(register_app("Quick", lambda j, c, a: None))
        assert app.wait_for(5) == 0
        start = time.monotonic()
        assert app.wait_for(5) == 0
        assert time.monotonic() - start < 0.5
