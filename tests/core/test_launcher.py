"""The multi-processing launcher: wiring, stream-close rule, System.exit
semantics (Features 1, 8, 9)."""

import pytest

from repro.core.launcher import DEFAULT_POLICY, MultiProcVM
from repro.io.streams import ByteArrayOutputStream, PrintStream, make_pipe
from repro.jvm.errors import SecurityException
from repro.jvm.threads import JThread
from repro.security.policy import parse_policy
from repro.security.sysmanager import SystemSecurityManager


class TestBootWiring:
    def test_components_installed(self, mvm):
        vm = mvm.vm
        assert isinstance(vm.security_manager, SystemSecurityManager)
        assert vm.policy is not None
        assert vm.user_database is not None
        assert vm.application_registry is not None
        assert vm.toolkit is mvm.toolkit
        assert vm.application_registry.initial is mvm.initial
        assert not vm.exit_when_last_nondaemon

    def test_tools_on_command_path(self, mvm):
        for command in ("ls", "cat", "sh", "login", "terminal",
                        "appletviewer", "ps", "kill"):
            class_name = mvm.vm.tool_path[command]
            assert class_name in mvm.vm.registry

    def test_default_policy_parses(self):
        policy = parse_policy(DEFAULT_POLICY)
        assert policy.entries()

    def test_vm_survives_application_exit(self, host, register_app):
        """Feature 1: the end of an application must not end the JVM."""
        app = host.exec(register_app("Short", lambda j, c, a: None))
        assert app.wait_for(5) == 0
        assert not host.vm.terminated
        # and we can still launch more work
        again = host.exec(register_app("Short2", lambda j, c, a: None))
        assert again.wait_for(5) == 0

    def test_shutdown_is_idempotent(self):
        mvm = MultiProcVM.boot()
        mvm.shutdown()
        mvm.shutdown()
        assert mvm.vm.terminated

    def test_context_manager(self):
        with MultiProcVM.boot() as mvm:
            assert mvm.vm.state == "booted"
        assert mvm.vm.terminated

    def test_nested_host_sessions_reuse_attachment(self, mvm):
        with mvm.host_session() as outer:
            with mvm.host_session() as inner:
                assert inner is outer
            assert JThread.current_or_none() is outer


class TestStreamCloseRule:
    """Section 5.1: "applications may only close streams that they
    opened"."""

    def test_app_cannot_close_inherited_stream(self, host, register_app):
        outcome = {}

        def main(jclass, ctx, args):
            try:
                ctx.stdout.close()
                outcome["result"] = "closed"
            except SecurityException:
                outcome["result"] = "denied"
            return 0

        out = PrintStream(ByteArrayOutputStream())
        out.owner = host.initial
        app = host.exec(register_app("Closer", main), stdout=out)
        assert app.wait_for(5) == 0
        assert outcome["result"] == "denied"
        assert not out.closed

    def test_app_may_close_stream_it_opened(self, host, register_app):
        outcome = {}

        def main(jclass, ctx, args):
            from repro.io.file import FileOutputStream
            stream = FileOutputStream(ctx, "/tmp/own.txt")
            stream.close()
            outcome["closed"] = stream.closed
            return 0

        app = host.exec(register_app("OwnCloser", main))
        assert app.wait_for(5) == 0
        assert outcome["closed"] is True

    def test_parent_may_close_streams_for_children(self, host,
                                                   register_app):
        """"it is the shell's responsibility to close those streams after
        the application finishes" — the parent is allowed to."""
        def child_main(jclass, ctx, args):
            return 0

        child_class = register_app("PipeChild", child_main)
        outcome = {}

        def parent_main(jclass, ctx, args):
            reader, writer = make_pipe(owner=ctx.app)
            child = ctx.exec(child_class, [], stdout=PrintStream(writer))
            child.wait_for(5)
            writer.close()
            reader.close()
            outcome["closed"] = writer.closed and reader.closed
            return 0

        parent = host.exec(register_app("PipeParent", parent_main))
        assert parent.wait_for(5) == 0
        assert outcome["closed"] is True

    def test_anonymous_streams_unrestricted(self, host, register_app):
        outcome = {}

        def main(jclass, ctx, args):
            scratch = ByteArrayOutputStream()
            scratch.close()
            outcome["closed"] = scratch.closed
            return 0

        app = host.exec(register_app("Anon", main))
        assert app.wait_for(5) == 0
        assert outcome["closed"] is True


class TestSystemExitSemantics:
    """Section 6.3: historical System.exit vs the paper's proposal."""

    def test_historical_semantics_denied_for_applications(self, host,
                                                          register_app):
        """In the multi-proc VM, System.exit would kill every application,
        so the system security manager denies it to unprivileged code
        (which is why the Appletviewer port replaced those calls)."""
        outcome = {}

        def main(jclass, ctx, args):
            try:
                ctx.system.exit(1)
                outcome["result"] = "exited"
            except SecurityException:
                outcome["result"] = "denied"
            return 0

        app = host.exec(register_app("VmKiller", main))
        assert app.wait_for(5) == 0
        assert outcome["result"] == "denied"
        assert not host.vm.terminated

    def test_proposed_semantics_exit_current_application_only(self):
        """"This change will not be necessary if we change the semantics
        of System.exit() to only exit the current application." (§6.3)"""
        mvm = MultiProcVM.boot(system_exit_exits_application=True)
        try:
            from tests.conftest import make_app

            def main(jclass, ctx, args):
                ctx.system.exit(4)
                return 0

            with mvm.host_session():
                app = mvm.exec(make_app(mvm.vm, "SelfExiter", main))
                assert app.wait_for(5) == 4
                assert not mvm.vm.terminated
        finally:
            mvm.shutdown()
