"""Smaller public-API surfaces: MultiProcVM.run, Application.context,
interactive shell prompts, finalizer drain timeout."""

from repro.io.streams import ByteArrayOutputStream, PrintStream
from repro.tools.terminal import Terminal, TerminalDevice


def test_mvm_run_returns_exit_code(host, register_app):
    class_name = register_app("RunHelper", lambda j, c, a: 7)
    assert host.run(class_name, []) == 7


def test_application_context_reaches_app_state(host, register_app):
    from repro.jvm.threads import JThread

    def main(jclass, ctx, args):
        JThread.sleep(30.0)
        return 0

    app = host.exec(register_app("CtxApp", main), cwd="/tmp")
    ctx = app.context()
    assert ctx.app is app
    assert ctx.cwd == "/tmp"
    assert ctx.system.jclass is app.system_class
    app.destroy()
    app.wait_for(5)


def test_interactive_shell_prompt_and_history(host):
    device = TerminalDevice("misc-tty")
    terminal = Terminal(device)
    alice = host.vm.user_database.lookup("alice")
    shell = host.exec("tools.Shell", [], user=alice,
                      stdin=terminal.input, stdout=terminal.output,
                      stderr=terminal.output)
    assert device.wait_for_output("alice@javaos:/$ ")
    device.type_line("echo one")
    assert device.wait_for_output("one\n")
    device.type_line("history")
    assert device.wait_for_output("   1  echo one")
    device.type_line("!!")  # repeats echo one via the terminal history
    assert device.wait_for_output("echo one")
    device.type_line("exit")
    assert shell.wait_for(10) == 0
    device.hang_up()


def test_shell_reports_java_throwable_without_dying(host):
    device = TerminalDevice("misc-tty2")
    terminal = Terminal(device)
    shell = host.exec("tools.Shell", [],
                      stdin=terminal.input, stdout=terminal.output,
                      stderr=terminal.output)
    assert device.wait_for_output("$ ")
    device.type_line("cat /etc/shadow")  # FileNotFound inside the tool
    assert device.wait_for_output("FileNotFoundException")
    device.type_line("echo still-here")
    assert device.wait_for_output("still-here")
    device.type_line("exit")
    assert shell.wait_for(10) == 0
    device.hang_up()


def test_drain_finalizers_timeout_when_stuck(vm):
    from repro.jvm.threads import JThread
    vm.register_finalizer(lambda: JThread.sleep(1.0))
    vm.register_finalizer(lambda: None)
    # The first job sleeps past the deadline: drain must report False.
    assert vm.drain_finalizers(timeout=0.2) is False


def test_run_main_custom_thread_name(vm):
    from repro.jvm.classloading import ClassMaterial
    seen = []
    material = ClassMaterial("misc.Named")
    material.members["main"] = lambda jclass, ctx, args: seen.append(
        __import__("repro.jvm.threads", fromlist=["JThread"])
        .JThread.current().name)
    vm.registry.register(material)
    vm.run_main("misc.Named", [], thread_name="primary")
    assert vm.await_termination(5)
    assert seen == ["primary"]


def test_capture_streams_compose(host, register_app):
    sink = ByteArrayOutputStream()
    stream = PrintStream(sink, auto_flush=False)

    def main(jclass, ctx, args):
        ctx.stdout.print("buffered")
        ctx.stdout.flush()
        return 0

    app = host.exec(register_app("Buffered", main), stdout=stream)
    assert app.wait_for(10) == 0
    assert sink.to_text() == "buffered"
