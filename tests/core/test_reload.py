"""Experiment F5: reloading the System class per application (Section 5.5,
Figure 5) — own streams, shared properties."""

import pytest

from repro.core.reload import RELOADABLE_CLASSES, ApplicationClassLoader
from repro.io.streams import ByteArrayOutputStream, PrintStream
from repro.jvm.threads import JThread


def parked_app(host, register_app, name):
    def main(jclass, ctx, args):
        JThread.sleep(60.0)
        return 0

    return host.exec(register_app(name, main))


class TestSystemReloading:
    def test_each_application_gets_its_own_system_class(self, host,
                                                        register_app):
        app_a = parked_app(host, register_app, "ReloadA")
        app_b = parked_app(host, register_app, "ReloadB")
        try:
            assert app_a.system_class is not app_b.system_class
            assert app_a.system_class.name == app_b.system_class.name \
                == "java.lang.System"
            # "albeit from the same class material"
            assert app_a.system_class.material \
                is app_b.system_class.material
            assert app_a.loader is not app_b.loader
        finally:
            app_a.destroy()
            app_b.destroy()
            app_a.wait_for(5)
            app_b.wait_for(5)

    def test_streams_are_per_application_state(self, host, register_app):
        """Different applications have different ideas about what their
        standard output is; setting one must not affect the other."""
        captured = {}

        def main_writer(jclass, ctx, args):
            ctx.stdout.println(f"from {args[0]}")
            captured[args[0]] = ctx.stdout
            return 0

        class_name = register_app("StreamApp", main_writer)
        out_a, out_b = ByteArrayOutputStream(), ByteArrayOutputStream()
        app_a = host.exec(class_name, ["a"], stdout=PrintStream(out_a))
        app_b = host.exec(class_name, ["b"], stdout=PrintStream(out_b))
        assert app_a.wait_for(5) == 0
        assert app_b.wait_for(5) == 0
        assert out_a.to_text() == "from a\n"
        assert out_b.to_text() == "from b\n"
        assert captured["a"] is not captured["b"]

    def test_system_properties_shared_between_applications(self, host,
                                                           register_app):
        """Figure 5: the SystemProperties class is shared — a property set
        by one application is visible to all."""
        read_back = {}

        def setter(jclass, ctx, args):
            ctx.system.set_property("experiment.flag", "set-by-a")
            return 0

        def getter(jclass, ctx, args):
            read_back["value"] = ctx.system.get_property("experiment.flag")
            return 0

        app_a = host.exec(register_app("PropSetter", setter,
                                       code_source=None))
        assert app_a.wait_for(5) == 0
        app_b = host.exec(register_app("PropGetter", getter))
        assert app_b.wait_for(5) == 0
        assert read_back["value"] == "set-by-a"

    def test_sysprops_class_identical_across_apps(self, host, register_app):
        app_a = parked_app(host, register_app, "SharedA")
        app_b = parked_app(host, register_app, "SharedB")
        try:
            sysprops_a = app_a.loader.load_class(
                "java.lang.SystemProperties")
            sysprops_b = app_b.loader.load_class(
                "java.lang.SystemProperties")
            assert sysprops_a is sysprops_b
            # And it is exactly the class the app's System statics hold.
            assert app_a.system_class.statics["sysprops_class"] \
                is sysprops_a
        finally:
            app_a.destroy()
            app_b.destroy()
            app_a.wait_for(5)
            app_b.wait_for(5)

    def test_security_manager_slot_is_per_application(self, host,
                                                      register_app):
        """Section 5.6: applications can set their own security managers
        (stored in their own System copy) without affecting anyone."""
        def main(jclass, ctx, args):
            ctx.system.set_security_manager(f"sm-of-{args[0]}")
            return 0

        class_name = register_app("SmApp", main)
        app_a = host.exec(class_name, ["a"])
        app_b = host.exec(class_name, ["b"])
        assert app_a.wait_for(5) == 0
        assert app_b.wait_for(5) == 0
        assert app_a.system_class.statics["security_manager"] == "sm-of-a"
        assert app_b.system_class.statics["security_manager"] == "sm-of-b"
        # The VM-wide system security manager is untouched.
        from repro.security.sysmanager import SystemSecurityManager
        assert isinstance(host.vm.security_manager, SystemSecurityManager)


class TestApplicationClassLoader:
    def test_reloadable_set_default(self, host):
        loader = ApplicationClassLoader(host.vm.boot_loader, "probe")
        assert loader.reloadable == frozenset({"java.lang.System"})
        assert "java.lang.System" in RELOADABLE_CLASSES

    def test_extra_reloadable_classes(self, host, register_app):
        """The paper's open question: more classes may need reloading;
        the loader supports extending the set per experiment."""
        from repro.jvm.classloading import ClassMaterial
        material = ClassMaterial("demo.PerAppState")
        material.static_init = lambda jclass: jclass.statics.update(
            {"counter": 0})
        host.vm.registry.register(material)

        shared_loader = ApplicationClassLoader(host.vm.boot_loader, "s")
        reloading_loader = ApplicationClassLoader(
            host.vm.boot_loader, "r", extra_reloadable=["demo.PerAppState"])
        via_boot = host.vm.boot_loader.load_class("demo.PerAppState")
        assert shared_loader.load_class("demo.PerAppState") is via_boot
        assert reloading_loader.load_class("demo.PerAppState") \
            is not via_boot

    def test_non_reloadable_delegate_to_parent(self, host):
        loader = ApplicationClassLoader(host.vm.boot_loader, "probe")
        shared = loader.load_class("java.lang.SystemProperties")
        assert shared is host.vm.boot_loader.load_class(
            "java.lang.SystemProperties")

    def test_reload_cached_within_one_loader(self, host):
        loader = ApplicationClassLoader(host.vm.boot_loader, "probe")
        assert loader.load_class("java.lang.System") \
            is loader.load_class("java.lang.System")

    def test_concurrent_loads_define_exactly_once(self, host):
        """The check-then-act race: two threads loading a reloadable name
        at once must get the *same* JClass, with its static initializer
        run exactly once (the loader lock now spans lookup and define)."""
        import threading

        from repro.jvm.classloading import ClassMaterial

        init_runs = []
        material = ClassMaterial("demo.RaceState")
        material.static_init = lambda jclass: init_runs.append(jclass)
        host.vm.registry.register(material, replace=True)

        loader = ApplicationClassLoader(
            host.vm.boot_loader, "racer",
            extra_reloadable=["demo.RaceState"])
        start = threading.Barrier(8)
        results = []

        def load():
            start.wait()
            results.append(loader.load_class("demo.RaceState"))

        threads = [threading.Thread(target=load) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10)
        assert len(results) == 8
        assert all(result is results[0] for result in results)
        assert len(init_runs) == 1
        reloads = host.vm.telemetry.metrics.total("reload.classes",
                                                  app="racer")
        assert reloads == 1
