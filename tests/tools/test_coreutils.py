"""The utility applications: ls, cat, wc, grep, ps, kill, and friends."""

import time

from repro.io.file import read_text, write_text
from repro.io.streams import ByteArrayInputStream


def run_tool(mvm, class_name, args, capture, stdin=None, user=None,
             cwd=None):
    out = capture()
    kwargs = {"stdout": out.stream, "stderr": out.stream}
    if stdin is not None:
        kwargs["stdin"] = stdin
    if user is not None:
        kwargs["user"] = mvm.vm.user_database.lookup(user)
    if cwd is not None:
        kwargs["cwd"] = cwd
    app = mvm.exec(class_name, args, **kwargs)
    return app.wait_for(10), out.text


class TestLsCat:
    def test_ls_directory(self, host, capture):
        code, text = run_tool(host, "tools.Ls", ["/etc"], capture)
        assert code == 0
        assert "motd" in text.splitlines()

    def test_ls_long_format(self, host, capture):
        __, text = run_tool(host, "tools.Ls", ["-l", "/etc"], capture)
        assert any(line.startswith(("d ", "- ")) for line in
                   text.splitlines())

    def test_ls_missing_path(self, host, capture):
        # /tmp is readable by policy, so the miss surfaces as "not found".
        code, text = run_tool(host, "tools.Ls", ["/tmp/nope"], capture)
        assert code == 1
        assert "no such file" in text

    def test_ls_policy_denied_path(self, host, capture):
        # Outside every grant: denied by the Java policy, not the VFS.
        code, text = run_tool(host, "tools.Ls", ["/nope"], capture)
        assert code == 1
        assert "AccessControlException" in text

    def test_cat_files_and_stdin(self, host, capture):
        write_text(host.initial.context(), "/tmp/c1.txt", "first\n")
        write_text(host.initial.context(), "/tmp/c2.txt", "second\n")
        code, text = run_tool(host, "tools.Cat",
                              ["/tmp/c1.txt", "/tmp/c2.txt"], capture)
        assert code == 0
        assert text == "first\nsecond\n"
        code, text = run_tool(host, "tools.Cat", [], capture,
                              stdin=ByteArrayInputStream(b"piped\n"))
        assert text == "piped\n"

    def test_cat_missing_file_fails(self, host, capture):
        code, text = run_tool(host, "tools.Cat", ["/tmp/ghost"], capture)
        assert code == 1
        assert "FileNotFoundException" in text


class TestTextTools:
    def test_wc_counts(self, host, capture):
        stdin = ByteArrayInputStream(b"a b\nc\n")
        __, text = run_tool(host, "tools.Wc", [], capture, stdin=stdin)
        assert text.strip() == "2 3 6"

    def test_wc_file_and_lines_flag(self, host, capture):
        write_text(host.initial.context(), "/tmp/w.txt", "x\ny\n")
        __, text = run_tool(host, "tools.Wc", ["-l", "/tmp/w.txt"],
                            capture)
        assert text.strip() == "2 /tmp/w.txt"

    def test_head_default_and_n(self, host, capture):
        payload = "".join(f"line{i}\n" for i in range(20)).encode()
        __, text = run_tool(host, "tools.Head", [], capture,
                            stdin=ByteArrayInputStream(payload))
        assert len(text.splitlines()) == 10
        __, text = run_tool(host, "tools.Head", ["-n", "3"], capture,
                            stdin=ByteArrayInputStream(payload))
        assert text.splitlines() == ["line0", "line1", "line2"]

    def test_grep_match_and_status(self, host, capture):
        stdin = ByteArrayInputStream(b"apple\nbanana\npineapple\n")
        code, text = run_tool(host, "tools.Grep", ["apple"], capture,
                              stdin=stdin)
        assert code == 0
        assert text.splitlines() == ["apple", "pineapple"]
        code, __ = run_tool(host, "tools.Grep", ["zzz"], capture,
                            stdin=ByteArrayInputStream(b"abc\n"))
        assert code == 1

    def test_grep_multiple_files_prefixes(self, host, capture):
        ctx = host.initial.context()
        write_text(ctx, "/tmp/g1.txt", "hit\nmiss\n")
        write_text(ctx, "/tmp/g2.txt", "hit too\n")
        __, text = run_tool(host, "tools.Grep",
                            ["hit", "/tmp/g1.txt", "/tmp/g2.txt"], capture)
        assert "/tmp/g1.txt:hit" in text
        assert "/tmp/g2.txt:hit too" in text


class TestIdentityTools:
    def test_whoami(self, host, capture):
        __, text = run_tool(host, "tools.Whoami", [], capture,
                            user="alice")
        assert text.strip() == "alice"

    def test_pwd(self, host, capture):
        __, text = run_tool(host, "tools.Pwd", [], capture, cwd="/etc")
        assert text.strip() == "/etc"


class TestFileTools:
    def test_touch_rm(self, host, capture):
        ctx = host.initial.context()
        code, __ = run_tool(host, "tools.Touch", ["/tmp/t1"], capture)
        assert code == 0
        from repro.io.file import JFile
        assert JFile(ctx, "/tmp/t1").exists()
        code, __ = run_tool(host, "tools.Rm", ["/tmp/t1"], capture)
        assert code == 0
        assert not JFile(ctx, "/tmp/t1").exists()

    def test_mkdir_cp_mv(self, host, capture):
        ctx = host.initial.context()
        run_tool(host, "tools.Mkdir", ["/tmp/d1"], capture)
        write_text(ctx, "/tmp/d1/src.txt", "payload")
        code, __ = run_tool(host, "tools.Cp",
                            ["/tmp/d1/src.txt", "/tmp/d1/dst.txt"],
                            capture)
        assert code == 0
        assert read_text(ctx, "/tmp/d1/dst.txt") == "payload"
        run_tool(host, "tools.Mv",
                 ["/tmp/d1/dst.txt", "/tmp/d1/moved.txt"], capture)
        assert read_text(ctx, "/tmp/d1/moved.txt") == "payload"

    def test_cp_usage_error(self, host, capture):
        code, text = run_tool(host, "tools.Cp", ["only-one"], capture)
        assert code == 2
        assert "usage" in text


class TestProcessTools:
    def test_ps_shows_applications(self, host, capture):
        sleeper = host.exec("tools.Sleep", ["30"])
        code, text = run_tool(host, "tools.Ps", [], capture)
        assert code == 0
        assert "AID USER" in text
        assert f"{sleeper.app_id}" in text
        assert "sleep" in text
        sleeper.destroy()
        sleeper.wait_for(5)

    def test_kill_terminates_target(self, host, capture):
        sleeper = host.exec("tools.Sleep", ["30"])
        code, __ = run_tool(host, "tools.Kill", [str(sleeper.app_id)],
                            capture)
        assert code == 0
        assert sleeper.wait_for(5) is not None
        assert sleeper.terminated

    def test_kill_bad_arguments(self, host, capture):
        code, text = run_tool(host, "tools.Kill", ["not-a-number"],
                              capture)
        assert code == 1
        code, text = run_tool(host, "tools.Kill", ["99999"], capture)
        assert "no such application" in text

    def test_sleep_sleeps(self, host, capture):
        start = time.monotonic()
        code, __ = run_tool(host, "tools.Sleep", ["0.3"], capture)
        assert code == 0
        assert time.monotonic() - start >= 0.25


class TestYes:
    def test_yes_feeds_pipeline_until_killed(self, host, capture):
        """yes | head — head finishes, the pipe breaks, and the shell's
        teardown stops yes."""
        out = capture()
        app = host.exec("tools.Shell", ["-c", "yes spam | head -n 4"],
                        stdout=out.stream, stderr=out.stream)
        assert app.wait_for(10) == 0
        assert out.text.splitlines() == ["spam"] * 4


class TestSortUniqTee:
    def test_sort_stdin(self, host, capture):
        stdin = ByteArrayInputStream(b"pear\napple\nmango\n")
        __, text = run_tool(host, "tools.Sort", [], capture, stdin=stdin)
        assert text.splitlines() == ["apple", "mango", "pear"]

    def test_sort_reverse_and_files(self, host, capture):
        write_text(host.initial.context(), "/tmp/s.txt", "b\na\nc\n")
        __, text = run_tool(host, "tools.Sort", ["-r", "/tmp/s.txt"],
                            capture)
        assert text.splitlines() == ["c", "b", "a"]

    def test_uniq_adjacent(self, host, capture):
        stdin = ByteArrayInputStream(b"a\na\nb\na\na\na\n")
        __, text = run_tool(host, "tools.Uniq", [], capture, stdin=stdin)
        assert text.splitlines() == ["a", "b", "a"]

    def test_uniq_count(self, host, capture):
        stdin = ByteArrayInputStream(b"x\nx\ny\n")
        __, text = run_tool(host, "tools.Uniq", ["-c"], capture,
                            stdin=stdin)
        assert [line.split() for line in text.splitlines()] == \
            [["2", "x"], ["1", "y"]]

    def test_tee_duplicates_to_file(self, host, capture):
        stdin = ByteArrayInputStream(b"teed\n")
        code, text = run_tool(host, "tools.Tee", ["/tmp/tee.txt"],
                              capture, stdin=stdin)
        assert code == 0
        assert text == "teed\n"
        assert read_text(host.initial.context(), "/tmp/tee.txt") == "teed\n"

    def test_sort_uniq_pipeline(self, host, capture):
        ctx = host.initial.context()
        write_text(ctx, "/tmp/animals.txt", "dog\ncat\ndog\nbird\ncat\n")
        out = capture()
        app = host.exec("tools.Shell",
                        ["-c", "cat /tmp/animals.txt | sort | uniq"],
                        stdout=out.stream, stderr=out.stream)
        assert app.wait_for(10) == 0
        assert out.text.splitlines() == ["bird", "cat", "dog"]


class TestIdentityAndMisc:
    def test_env_shows_app_properties(self, host, capture):
        out = capture()
        app = host.exec("tools.Shell",
                        ["-c", "setprop shape round", "env"],
                        stdout=out.stream, stderr=out.stream)
        assert app.wait_for(10) == 0
        assert "java.version=1.2mp-proto" in out.text

    def test_hostname(self, host, capture):
        __, text = run_tool(host, "tools.Hostname", [], capture)
        assert text.strip() == "javaos.example.com"

    def test_id(self, host, capture):
        __, text = run_tool(host, "tools.Id", [], capture, user="bob")
        assert "user=bob" in text
        assert "home=/home/bob" in text

    def test_date_prints_millis(self, host, capture):
        __, text = run_tool(host, "tools.Date", [], capture)
        assert int(text.strip()) > 0

    def test_true_false_statuses(self, host, capture):
        assert run_tool(host, "tools.True", [], capture)[0] == 0
        assert run_tool(host, "tools.False", [], capture)[0] == 1

    def test_true_false_with_conditionals(self, host, capture):
        out = capture()
        app = host.exec("tools.Shell",
                        ["-c", "true && echo yes", "false || echo no"],
                        stdout=out.stream, stderr=out.stream)
        assert app.wait_for(10) == 0
        assert out.text.splitlines() == ["yes", "no"]


class TestPsLongFormat:
    def test_ps_l_shows_lifetime_stats(self, host, capture):
        sleeper = host.exec("tools.Sleep", ["30"])
        code, text = run_tool(host, "tools.Ps", ["-l"], capture)
        assert code == 0
        assert "[threads/streams/windows/children ever]" in text
        sleeper_row = [line for line in text.splitlines()
                       if "sleep#" in line][0]
        assert "[1/0/0/0]" in sleeper_row  # one thread ever, nothing else
        sleeper.destroy()
        sleeper.wait_for(5)

    def test_stats_accumulate(self, host, register_app):
        def main(jclass, ctx, args):
            from repro.io.file import FileOutputStream
            from repro.jvm.threads import JThread
            for index in range(3):
                FileOutputStream(ctx, f"/tmp/stat{index}.txt").close()
            worker = JThread(target=lambda: None, daemon=False)
            worker.start()
            worker.join(2)
            return 0

        app = host.exec(register_app("StatApp", main))
        assert app.wait_for(10) == 0
        assert app.stats["streams"] == 3
        assert app.stats["threads"] == 2  # main + one worker
