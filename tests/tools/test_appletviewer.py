"""Experiment S3: the ported Appletviewer and the applet sandbox (§6.3)."""

import pytest

from repro.jvm.classloading import ClassMaterial
from repro.jvm.errors import SecurityException
from repro.net.sockets import Socket
from repro.security.codesource import CodeSource
from repro.tools.appletviewer import (
    AppletClassLoader,
    load_applet,
    parse_applet_url,
)


@pytest.fixture
def applet_host(mvm):
    """A web host serving a test applet, plus a listener to connect to."""
    fabric = mvm.vm.network
    web = fabric.add_host("web.example.com")
    other = fabric.add_host("other.example.com")
    web.listen(80)
    other.listen(80)

    applet = ClassMaterial(
        "applets.Probe",
        code_source=CodeSource(web.code_base() + "applets.Probe"))
    results: dict = {}
    applet.statics_results = results  # test-side channel

    @applet.member
    def init(jclass, ctx, frame):
        results["init"] = True

    @applet.member
    def start(jclass, ctx, frame):
        results["start"] = True
        # 1. Try to read the running user's file (must be denied even if
        #    a user with grants runs the viewer: no UserPermission).
        try:
            from repro.io.file import read_text
            results["file"] = read_text(ctx, "/home/alice/notes.txt")
        except SecurityException:
            results["file"] = "DENIED"
        # 2. Connect back to the origin host (must be allowed).
        try:
            socket = Socket(ctx, "web.example.com", 80)
            socket.close()
            results["own-host"] = "CONNECTED"
        except SecurityException:
            results["own-host"] = "DENIED"
        # 3. Connect to a third-party host (must be denied).
        try:
            socket = Socket(ctx, "other.example.com", 80)
            socket.close()
            results["other-host"] = "CONNECTED"
        except SecurityException:
            results["other-host"] = "DENIED"

    @applet.member
    def stop(jclass, ctx, frame):
        results["stop"] = True

    @applet.member
    def destroy(jclass, ctx, frame):
        results["destroy"] = True

    web.publish_class(applet)
    return web, results


class TestUrlParsing:
    def test_parse(self):
        assert parse_applet_url("http://h.example.com/classes/a.B") == \
            ("h.example.com", "a.B")

    def test_rejects_non_http(self):
        from repro.jvm.errors import IllegalArgumentException
        with pytest.raises(IllegalArgumentException):
            parse_applet_url("ftp://h/x")
        with pytest.raises(IllegalArgumentException):
            parse_applet_url("http:///x")


class TestSandbox:
    def test_applet_sandbox_rules(self, host, applet_host):
        """The headline experiment: even when *Alice* runs the viewer,
        the applet cannot read Alice's files — but it may connect back to
        its own host, and only to its own host."""
        web, results = applet_host
        alice = host.vm.user_database.lookup("alice")
        app = host.exec("tools.AppletViewer",
                        ["--no-wait", "http://web.example.com/classes/"
                         "applets.Probe"],
                        user=alice)
        assert app.wait_for(10) == 0
        assert results["init"] is True
        assert results["start"] is True
        assert results["file"] == "DENIED", \
            "applets must not exercise the running user's permissions"
        assert results["own-host"] == "CONNECTED"
        assert results["other-host"] == "DENIED"

    def test_viewer_itself_may_read_user_files(self, host, applet_host,
                                               register_app):
        """Contrast: the *viewer* is local code and does get Alice's
        permissions — the sandbox boundary is the class loader."""
        outcome = {}

        def main(jclass, ctx, args):
            from repro.io.file import read_text
            outcome["text"] = read_text(ctx, "/home/alice/notes.txt")
            return 0

        class_name = register_app(
            "ViewerLike", main,
            code_source="file:/usr/local/java/tools/appletviewer/V.class")
        alice = host.vm.user_database.lookup("alice")
        app = host.exec(class_name, [], user=alice)
        assert app.wait_for(5) == 0
        assert "private notes" in outcome["text"]

    def test_window_close_drives_applet_lifecycle(self, host, applet_host):
        web, results = applet_host
        app = host.exec("tools.AppletViewer",
                        ["http://web.example.com/classes/applets.Probe"])
        xserver = host.toolkit.xserver
        import time
        deadline = time.monotonic() + 5
        window_id = None
        while time.monotonic() < deadline and window_id is None:
            window_id = xserver.find_window("Applet: applets.Probe")
            time.sleep(0.01)
        assert window_id is not None
        xserver.request_close(window_id)
        assert app.wait_for(10) == 0
        assert results.get("stop") is True
        assert results.get("destroy") is True

    def test_applet_runs_inside_viewer_application(self, host, applet_host):
        web, results = applet_host
        recorded = {}

        @web.fetch_class("applets.Probe").member
        def whose_app(jclass, ctx, frame):
            from repro.core.context import current_application_or_none
            recorded["app"] = current_application_or_none()

        handle_app = host.exec(
            "tools.AppletViewer",
            ["--no-wait", "http://web.example.com/classes/applets.Probe"])
        assert handle_app.wait_for(10) == 0


class TestAppletClassLoader:
    def test_loader_defines_with_network_code_source(self, host,
                                                     applet_host):
        web, __ = applet_host
        ctx = host.initial.context()
        loader = AppletClassLoader(ctx.loader, web)
        jclass = loader.load_class("applets.Probe")
        assert jclass.protection_domain.code_source.url.startswith(
            "http://web.example.com/")

    def test_loader_delegates_connect_back_permission(self, host,
                                                      applet_host):
        from repro.security.permissions import SocketPermission
        web, __ = applet_host
        ctx = host.initial.context()
        loader = AppletClassLoader(ctx.loader, web)
        domain = loader.load_class("applets.Probe").protection_domain
        assert domain.implies(
            SocketPermission("web.example.com:80", "connect"))
        assert not domain.implies(
            SocketPermission("other.example.com:80", "connect"))

    def test_system_classes_still_from_parent(self, host, applet_host):
        web, __ = applet_host
        ctx = host.initial.context()
        loader = AppletClassLoader(ctx.loader, web)
        assert loader.load_class("java.lang.SystemProperties") is \
            ctx.loader.load_class("java.lang.SystemProperties")

    def test_missing_applet_class(self, host, applet_host):
        from repro.jvm.errors import ClassNotFoundException
        web, __ = applet_host
        ctx = host.initial.context()
        loader = AppletClassLoader(ctx.loader, web)
        with pytest.raises(ClassNotFoundException):
            loader.load_class("applets.Ghost")


class TestViewerErrors:
    def test_usage_error(self, host, capture):
        out = capture()
        app = host.exec("tools.AppletViewer", [], stdout=out.stream,
                        stderr=out.stream)
        assert app.wait_for(5) == 2
        assert "usage" in out.text

    def test_unknown_host_reported(self, host, capture):
        out = capture()
        app = host.exec("tools.AppletViewer",
                        ["--no-wait", "http://ghost.example.com/classes/X"],
                        stdout=out.stream, stderr=out.stream)
        assert app.wait_for(5) == 1
        assert "appletviewer:" in out.text
