"""The login program (Sections 5.2 and 6.2)."""

from repro.io.streams import (
    ByteArrayInputStream,
    ByteArrayOutputStream,
    PrintStream,
)
from repro.tools.terminal import TerminalDevice


def scripted_login(mvm, keystrokes, capture=None):
    """Run login against a scripted terminal; returns (app, device).

    Credentials are typed only after the corresponding prompt appears, so
    the echo-off window is exercised exactly as a human session would.
    """
    device = TerminalDevice("login-console")
    mvm.vm.consoles["login-console"] = device
    term_app = mvm.exec("tools.Terminal", ["login-console"])
    remaining = list(keystrokes)
    attempts = 0

    def wait_count(needle, count, timeout=5.0):
        import time
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if device.transcript().count(needle) >= count:
                return True
            time.sleep(0.01)
        return False

    while remaining:
        attempts += 1
        assert wait_count("login: ", attempts), device.transcript()
        device.type_line(remaining.pop(0))
        if not remaining:
            break
        assert wait_count("Password: ", attempts), device.transcript()
        device.type_line(remaining.pop(0))
        # After a successful login the rest is shell input; type it all.
        if device.wait_for_output("$ ", timeout=1.0):
            for line in remaining:
                device.type_line(line)
            remaining = []
    return term_app, device


class TestAuthenticationFlow:
    def test_successful_login_spawns_shell_as_user(self, host):
        term_app, device = scripted_login(
            host, ["alice", "wonderland", "whoami", "exit"])
        assert device.wait_for_output("logged out"), device.transcript()
        transcript = device.transcript()
        assert "Welcome to the multi-processing JVM." in transcript
        assert "alice@javaos" in transcript  # the shell prompt
        lines = [line for line in transcript.splitlines()
                 if line.strip() == "alice"]
        assert lines, "whoami must print the authenticated user"
        device.hang_up()
        term_app.wait_for(5)

    def test_password_not_echoed(self, host):
        term_app, device = scripted_login(
            host, ["alice", "wonderland", "exit"])
        assert device.wait_for_output("logged out")
        assert "wonderland" not in device.transcript()
        device.hang_up()
        term_app.wait_for(5)

    def test_wrong_password_reprompts(self, host):
        term_app, device = scripted_login(
            host, ["alice", "oops", "alice", "wonderland", "exit"])
        assert device.wait_for_output("logged out"), device.transcript()
        assert "Login incorrect" in device.transcript()
        device.hang_up()
        term_app.wait_for(5)

    def test_three_failures_give_up(self, host):
        term_app, device = scripted_login(
            host, ["alice", "bad1", "alice", "bad2", "alice", "bad3"])
        assert device.wait_for_output("Too many failures"), \
            device.transcript()
        device.hang_up()
        term_app.wait_for(5)

    def test_unknown_user_indistinguishable(self, host):
        term_app, device = scripted_login(
            host, ["mallory", "anything", "alice", "wonderland", "exit"])
        assert device.wait_for_output("logged out")
        assert device.transcript().count("Login incorrect") == 1
        device.hang_up()
        term_app.wait_for(5)


class TestPipeMode:
    def test_login_works_without_a_terminal(self, host):
        """Login falls back to plain stream reads when stdin is a pipe."""
        stdin = ByteArrayInputStream(b"alice\nwonderland\nexit\n")
        sink = ByteArrayOutputStream()
        app = host.exec("tools.Login", [], stdin=stdin,
                        stdout=PrintStream(sink), stderr=PrintStream(sink))
        assert app.wait_for(10) == 0
        text = sink.to_text()
        assert "logged out" in text
        # Without a terminal there is no echo suppression to test, but the
        # password must still not be *printed* by login itself.
        assert "wonderland" not in text.replace("alice\nwonderland", "")


class TestPrivilege:
    def test_login_runs_as_null_user_until_authentication(self, host):
        """"it doesn't matter which user is running the login program" —
        it starts as the inherited (null) user."""
        term_app, device = scripted_login(host, [])
        assert device.wait_for_output("login: ")
        login_apps = [a for a in host.applications()
                      if a.class_name == "tools.Login"]
        assert login_apps
        assert login_apps[0].user.name == "nobody"
        device.hang_up()
        term_app.wait_for(5)

    def test_shell_inherits_authenticated_user(self, host):
        term_app, device = scripted_login(
            host, ["bob", "builder", "whoami", "exit"])
        assert device.wait_for_output("logged out")
        assert "bob@javaos" in device.transcript()
        device.hang_up()
        term_app.wait_for(5)
