"""Shell tokenizer and parser (Section 6.1 syntax)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.jvm.errors import IllegalArgumentException
from repro.tools.shell import Token, parse, tokenize


def words(tokens):
    return [t.value for t in tokens if t.kind == "word"]


class TestTokenizer:
    def test_simple_words(self):
        assert words(tokenize("ls -l /tmp")) == ["ls", "-l", "/tmp"]

    def test_operators_split_without_spaces(self):
        tokens = tokenize("cat a|wc>out")
        assert [(t.kind, t.value) for t in tokens] == [
            ("word", "cat"), ("word", "a"), ("op", "|"),
            ("word", "wc"), ("op", ">"), ("word", "out")]

    def test_double_gt_wins_over_single(self):
        tokens = tokenize("echo x >> log")
        assert ("op", ">>") in [(t.kind, t.value) for t in tokens]

    def test_single_quotes(self):
        assert words(tokenize("echo 'hello world | not a pipe'")) == \
            ["echo", "hello world | not a pipe"]

    def test_double_quotes_with_escape(self):
        assert words(tokenize('echo "say \\"hi\\""')) == \
            ["echo", 'say "hi"']

    def test_backslash_escapes_space_and_ops(self):
        assert words(tokenize(r"echo a\ b \| c")) == \
            ["echo", "a b", "|", "c"]

    def test_adjacent_quoted_parts_join(self):
        assert words(tokenize("echo 'a'\"b\"c")) == ["echo", "abc"]

    def test_comment_stripped(self):
        assert words(tokenize("ls # trailing comment")) == ["ls"]

    def test_empty_line(self):
        assert tokenize("") == []
        assert tokenize("   ") == []

    def test_unterminated_quote_rejected(self):
        with pytest.raises(IllegalArgumentException):
            tokenize("echo 'oops")

    def test_trailing_backslash_rejected(self):
        with pytest.raises(IllegalArgumentException):
            tokenize("echo x\\")


class TestParser:
    def test_single_command(self):
        pipelines = parse(tokenize("ls -l"))
        assert len(pipelines) == 1
        assert pipelines[0].commands[0].argv == ["ls", "-l"]
        assert not pipelines[0].background

    def test_pipeline_stages(self):
        pipelines = parse(tokenize("cat f | grep x | wc -l"))
        argvs = [c.argv for c in pipelines[0].commands]
        assert argvs == [["cat", "f"], ["grep", "x"], ["wc", "-l"]]

    def test_redirections(self):
        command = parse(tokenize("sort < in.txt > out.txt"))[0].commands[0]
        assert command.argv == ["sort"]
        assert command.redirect_in == "in.txt"
        assert command.redirect_out == "out.txt"
        assert not command.append_out

    def test_append_redirect(self):
        command = parse(tokenize("echo x >> log"))[0].commands[0]
        assert command.redirect_out == "log"
        assert command.append_out

    def test_background_flag(self):
        pipelines = parse(tokenize("sleep 5 &"))
        assert pipelines[0].background

    def test_sequencing(self):
        pipelines = parse(tokenize("echo a ; echo b; echo c"))
        assert len(pipelines) == 3

    def test_background_then_foreground(self):
        pipelines = parse(tokenize("server & client"))
        assert pipelines[0].background
        assert not pipelines[1].background
        assert pipelines[1].commands[0].argv == ["client"]

    def test_empty_pipeline_segments_dropped(self):
        assert parse(tokenize(";;;")) == []

    def test_pipe_without_left_side_rejected(self):
        with pytest.raises(IllegalArgumentException):
            parse(tokenize("| wc"))

    def test_redirect_without_target_rejected(self):
        with pytest.raises(IllegalArgumentException):
            parse(tokenize("echo x >"))

    def test_ampersand_alone_rejected(self):
        with pytest.raises(IllegalArgumentException):
            parse(tokenize("&"))


# -- property-based ----------------------------------------------------------

plain_word = st.text(
    alphabet=st.sampled_from("abcdefXYZ0123./-_"), min_size=1, max_size=8)


@given(argv=st.lists(plain_word, min_size=1, max_size=6))
@settings(max_examples=80, deadline=None)
def test_plain_words_tokenize_losslessly(argv):
    line = " ".join(argv)
    assert words(tokenize(line)) == argv


@given(argv=st.lists(st.text(
    alphabet=st.characters(blacklist_characters="'\n\r",
                           blacklist_categories=("Cs",)),
    min_size=1, max_size=10), min_size=1, max_size=4))
@settings(max_examples=80, deadline=None)
def test_single_quoting_preserves_arbitrary_words(argv):
    line = " ".join(f"'{word}'" for word in argv)
    assert words(tokenize(line)) == argv


@given(stages=st.lists(st.lists(plain_word, min_size=1, max_size=3),
                       min_size=1, max_size=4))
@settings(max_examples=80, deadline=None)
def test_pipeline_roundtrip(stages):
    line = " | ".join(" ".join(stage) for stage in stages)
    pipeline = parse(tokenize(line))[0]
    assert [c.argv for c in pipeline.commands] == stages


class TestConditionalChaining:
    def test_and_or_tokens(self):
        tokens = tokenize("a && b || c")
        ops = [t.value for t in tokens if t.kind == "op"]
        assert ops == ["&&", "||"]

    def test_conditions_attached_to_pipelines(self):
        pipelines = parse(tokenize("mk && use || recover"))
        assert [p.condition for p in pipelines] == [None, "and", "or"]
        assert [p.commands[0].argv[0] for p in pipelines] == \
            ["mk", "use", "recover"]

    def test_and_with_pipes_inside(self):
        pipelines = parse(tokenize("cat f | wc && echo ok"))
        assert len(pipelines) == 2
        assert len(pipelines[0].commands) == 2
        assert pipelines[1].condition == "and"

    def test_double_ampersand_not_confused_with_background(self):
        pipelines = parse(tokenize("slow & fast && after"))
        assert pipelines[0].background
        assert pipelines[1].condition is None
        assert pipelines[2].condition == "and"

    def test_dangling_operator_rejected(self):
        with pytest.raises(IllegalArgumentException):
            parse(tokenize("a &&"))
        with pytest.raises(IllegalArgumentException):
            parse(tokenize("&& b"))
