"""Shell execution: pipelines, redirection, jobs, builtins (Section 6.1)."""

import time

import pytest

from repro.io.file import read_text, write_text


def run_shell(mvm, lines, capture, user=None, cwd=None, timeout=10.0):
    """Run shell lines via ``sh -c`` and return (exit_code, output)."""
    out = capture()
    kwargs = {"stdout": out.stream, "stderr": out.stream}
    if user is not None:
        kwargs["user"] = mvm.vm.user_database.lookup(user)
    if cwd is not None:
        kwargs["cwd"] = cwd
    app = mvm.exec("tools.Shell", ["-c", *lines], **kwargs)
    code = app.wait_for(timeout)
    return code, out.text


class TestSimpleCommands:
    def test_echo(self, host, capture):
        code, text = run_shell(host, ["echo hello world"], capture)
        assert code == 0
        assert text == "hello world\n"

    def test_echo_n(self, host, capture):
        __, text = run_shell(host, ["echo -n no-newline"], capture)
        assert text == "no-newline"

    def test_command_not_found_status_127(self, host, capture):
        code, text = run_shell(host, ["frobnicate", "echo rc=$?"], capture)
        assert "frobnicate: command not found" in text
        assert "rc=127" in text

    def test_quoting_preserves_arguments(self, host, capture):
        __, text = run_shell(host, ["echo 'a | b' \"c d\""], capture)
        assert text == "a | b c d\n"

    def test_fully_qualified_class_name_runs(self, host, capture):
        code, text = run_shell(host, ["tools.Echo via-class"], capture)
        assert code == 0
        assert text == "via-class\n"

    def test_sequencing_and_status(self, host, capture):
        __, text = run_shell(
            host, ["echo one; echo two ; echo rc=$?"], capture)
        assert text.splitlines() == ["one", "two", "rc=0"]


class TestPipes:
    def test_two_stage_pipeline(self, host, capture):
        code, text = run_shell(host, ["echo a b c | wc"], capture)
        assert code == 0
        assert text.strip() == "1 3 6"

    def test_three_stage_pipeline(self, host, capture):
        write_text(host.initial.context(), "/tmp/pets.txt",
                   "cat\ndog\ncatfish\nbird\n")
        code, text = run_shell(
            host, ["cat /tmp/pets.txt | grep cat | wc -l"], capture)
        assert code == 0
        assert text.strip() == "2"

    def test_pipeline_status_is_last_stage(self, host, capture):
        __, text = run_shell(
            host, ["echo x | grep nomatch", "echo rc=$?"], capture)
        assert "rc=1" in text  # grep without match exits 1

    def test_unknown_command_aborts_whole_pipeline(self, host, capture):
        code, text = run_shell(host, ["echo x | bogus | wc"], capture)
        assert "bogus: command not found" in text


class TestRedirection:
    def test_output_redirect_creates_file(self, host, capture):
        code, __ = run_shell(host, ["echo content > /tmp/out.txt"],
                             capture)
        assert code == 0
        assert read_text(host.initial.context(), "/tmp/out.txt") \
            == "content\n"

    def test_append_redirect(self, host, capture):
        run_shell(host, ["echo one > /tmp/app.txt",
                         "echo two >> /tmp/app.txt"], capture)
        assert read_text(host.initial.context(), "/tmp/app.txt") \
            == "one\ntwo\n"

    def test_input_redirect(self, host, capture):
        write_text(host.initial.context(), "/tmp/in.txt", "x\ny\nz\n")
        __, text = run_shell(host, ["wc -l < /tmp/in.txt"], capture)
        assert text.strip() == "3"

    def test_redirect_to_unwritable_path_reports_error(self, host,
                                                       capture):
        code, text = run_shell(host, ["echo x > /etc/forbidden.txt"],
                               capture)
        assert "sh:" in text

    def test_pipeline_with_both_redirections(self, host, capture):
        write_text(host.initial.context(), "/tmp/nums.txt", "1\n2\n3\n")
        run_shell(host,
                  ["grep 2 < /tmp/nums.txt > /tmp/two.txt"], capture)
        assert read_text(host.initial.context(), "/tmp/two.txt") == "2\n"


class TestBuiltins:
    def test_cd_and_pwd(self, host, capture):
        __, text = run_shell(host, ["pwd", "cd /tmp", "pwd"], capture)
        assert text.splitlines() == ["/", "/tmp"]

    def test_cd_affects_relative_paths(self, host, capture):
        write_text(host.initial.context(), "/tmp/here.txt", "found\n")
        __, text = run_shell(host, ["cd /tmp", "cat here.txt"], capture)
        assert "found" in text

    def test_cd_to_missing_directory(self, host, capture):
        __, text = run_shell(host, ["cd /no/such", "echo rc=$?"], capture)
        assert "cd:" in text
        assert "rc=1" in text

    def test_setprop_getprop(self, host, capture):
        __, text = run_shell(
            host, ["setprop color teal", "getprop color"], capture)
        assert "teal" in text

    def test_getprop_falls_back_to_system_property(self, host, capture):
        __, text = run_shell(host, ["getprop java.version"], capture)
        assert "1.2mp-proto" in text

    def test_help_lists_commands(self, host, capture):
        __, text = run_shell(host, ["help"], capture)
        assert "builtins:" in text
        assert "cd" in text
        assert "ls" in text

    def test_exit_stops_script(self, host, capture):
        code, text = run_shell(host, ["echo before", "exit 3",
                                      "echo after"], capture)
        assert code == 3
        assert "before" in text
        assert "after" not in text

    def test_variables_user_home_cwd(self, host, capture):
        code, text = run_shell(host, ["echo $USER $HOME $CWD"], capture,
                               user="alice", cwd="/tmp")
        assert text.strip() == "alice /home/alice /tmp"


class TestBackgroundJobs:
    def test_background_returns_immediately(self, host, capture):
        start = time.monotonic()
        code, text = run_shell(host, ["sleep 2 &", "echo prompt-back"],
                               capture)
        assert code == 0
        assert time.monotonic() - start < 1.5
        assert "prompt-back" in text
        assert "[1]" in text

    def test_jobs_lists_running_then_done(self, host, capture):
        out = capture()
        app = host.exec("tools.Shell",
                        ["-c", "sleep 0.2 &", "jobs", "sleep 0.5",
                         "jobs"],
                        stdout=out.stream, stderr=out.stream)
        assert app.wait_for(10) == 0
        assert "running sleep 0.2 &" in out.text
        assert "done" in out.text

    def test_syntax_error_status(self, host, capture):
        code, text = run_shell(host, ["echo 'unterminated"], capture)
        assert "sh:" in text
        assert code == 2


class TestStreamResponsibility:
    def test_shell_closes_pipe_streams_after_pipeline(self, host,
                                                      capture):
        """Section 5.1: the shell closes the streams it created once the
        application finishes."""
        out = capture()
        app = host.exec("tools.Shell", ["-c", "echo data | wc"],
                        stdout=out.stream, stderr=out.stream)
        assert app.wait_for(10) == 0
        # If the shell failed to close the pipe write end, wc would hang
        # forever and wait_for above would time out; reaching here with
        # output proves the close responsibility was honoured.
        assert out.text.strip() == "1 1 5"


class TestConditionalExecution:
    def test_and_runs_on_success(self, host, capture):
        __, text = run_shell(host, ["echo first && echo second"], capture)
        assert text.splitlines() == ["first", "second"]

    def test_and_skipped_on_failure(self, host, capture):
        __, text = run_shell(
            host, ["grep x /tmp/definitely-missing && echo not-shown"],
            capture)
        assert "not-shown" not in text

    def test_or_runs_on_failure(self, host, capture):
        __, text = run_shell(
            host, ["cat /tmp/definitely-missing || echo recovered"],
            capture)
        assert "recovered" in text

    def test_or_skipped_on_success(self, host, capture):
        __, text = run_shell(host, ["echo fine || echo not-shown"],
                             capture)
        assert "not-shown" not in text

    def test_chain_and_then_or(self, host, capture):
        __, text = run_shell(
            host,
        ["mkdir /tmp/chained && echo made || echo failed"], capture)
        assert "made" in text
        assert "failed" not in text

    def test_failing_chain_falls_through(self, host, capture):
        __, text = run_shell(
            host, ["cat /tmp/nope && echo skipped || echo fallback"],
            capture)
        assert "skipped" not in text
        assert "fallback" in text
