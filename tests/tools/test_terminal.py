"""The terminal of Section 6.2: echo control, history, stream discovery."""

from repro.io.streams import ByteArrayOutputStream, PrintStream
from repro.jvm.threads import JThread, ThreadGroup
from repro.tools.terminal import Terminal, TerminalDevice


def typed(device, *lines):
    for line in lines:
        device.type_line(line)


class TestDevice:
    def test_echo_on_by_default(self):
        device = TerminalDevice()
        device.type_text("abc")
        assert device.transcript() == "abc"

    def test_echo_off_hides_typed_text(self):
        device = TerminalDevice()
        device.set_echo(False)
        device.type_text("secret")
        assert device.transcript() == ""
        device.set_echo(True)
        device.type_text("x")
        assert device.transcript() == "x"

    def test_read_char_order(self):
        device = TerminalDevice()
        device.type_text("ab")
        assert device.read_char() == "a"
        assert device.read_char() == "b"

    def test_hang_up_returns_none(self):
        device = TerminalDevice()
        device.hang_up()
        assert device.read_char() is None

    def test_blocking_read_from_thread(self):
        root = ThreadGroup(None, "system")
        device = TerminalDevice()
        got = []

        def body():
            got.append(device.read_char())

        thread = JThread(target=body, group=root)
        thread.start()
        device.type_text("z")
        thread.join(5)
        assert got == ["z"]


class TestTerminal:
    def test_read_string_echoes_prompt(self):
        device = TerminalDevice()
        terminal = Terminal(device)
        device.type_line("hello")
        assert terminal.read_string("$ ") == "hello"
        assert "$ " in device.transcript()

    def test_backspace_editing(self):
        device = TerminalDevice()
        terminal = Terminal(device)
        device.type_line("cax\bt")
        assert terminal.read_string() == "cat"

    def test_read_password_suppresses_echo(self):
        device = TerminalDevice()
        terminal = Terminal(device)
        root = ThreadGroup(None, "system")
        got = []

        def reader():
            got.append(terminal.read_password("Password: "))

        thread = JThread(target=reader, group=root)
        thread.start()
        # Type only once the prompt is up (echo is off by then).
        assert device.wait_for_output("Password: ")
        device.type_line("hunter2")
        thread.join(5)
        assert got == ["hunter2"]
        assert "hunter2" not in device.transcript()
        assert "Password: " in device.transcript()
        assert device.echo  # restored afterwards

    def test_history_recorded(self):
        device = TerminalDevice()
        terminal = Terminal(device)
        typed(device, "first", "second")
        terminal.read_string()
        terminal.read_string()
        assert terminal.history == ["first", "second"]

    def test_bang_bang_repeats_last(self):
        device = TerminalDevice()
        terminal = Terminal(device)
        typed(device, "ls /tmp", "!!")
        assert terminal.read_string() == "ls /tmp"
        assert terminal.read_string() == "ls /tmp"
        assert terminal.history == ["ls /tmp", "ls /tmp"]

    def test_bang_n_recalls_numbered_entry(self):
        device = TerminalDevice()
        terminal = Terminal(device)
        typed(device, "one", "two", "!1")
        terminal.read_string()
        terminal.read_string()
        assert terminal.read_string() == "one"

    def test_bang_out_of_range_is_empty(self):
        device = TerminalDevice()
        terminal = Terminal(device)
        typed(device, "!7")
        assert terminal.read_string() == ""

    def test_history_bounded(self):
        device = TerminalDevice()
        terminal = Terminal(device, history_size=2)
        typed(device, "a", "b", "c")
        for _ in range(3):
            terminal.read_string()
        assert terminal.history == ["b", "c"]

    def test_hang_up_mid_session(self):
        device = TerminalDevice()
        terminal = Terminal(device)
        device.hang_up()
        assert terminal.read_string("$ ") is None


class TestFromStream:
    def test_found_on_terminal_streams(self):
        terminal = Terminal(TerminalDevice())
        assert Terminal.from_stream(terminal.input) is terminal
        assert Terminal.from_stream(terminal.output) is terminal

    def test_found_through_print_stream_wrapper(self):
        terminal = Terminal(TerminalDevice())
        wrapped = PrintStream(terminal.output)
        assert Terminal.from_stream(wrapped) is terminal

    def test_none_for_plain_streams(self):
        """"applications like cat only use the standard streams, and
        therefore also work if they are not run from a terminal"."""
        assert Terminal.from_stream(ByteArrayOutputStream()) is None
        assert Terminal.from_stream(
            PrintStream(ByteArrayOutputStream())) is None
