"""Perf gates for the vectored frame transport (the ``perf`` marker).

* a within-run ratio gate — ``FrameChannel.send_many`` must not be
  slower than per-frame ``send`` for the same burst (the whole point of
  gather-writes is to never lose);
* a cross-run gate — vectored frame throughput must stay within a
  generous factor of the best non-smoke ``vectored_frames_s`` recorded
  in ``BENCH_transport.json`` by full benchmark runs.  Skipped until a
  full run has seeded a baseline.
"""

import sys
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from _common import bench_baseline  # noqa: E402

from repro.dist.protocol import FrameChannel  # noqa: E402
from repro.io.streams import make_pipe  # noqa: E402
from repro.jvm.threads import JThread, ThreadGroup  # noqa: E402

pytestmark = pytest.mark.perf

FRAMES = 1000
FRAME_DATA = b"f" * 100
RETRIES = 3


def _frame_burst(vectored: bool) -> float:
    """Ship FRAMES binary data frames through a pipe; returns frames/s."""
    root = ThreadGroup(None, "system")
    reader, writer = make_pipe()
    channel = FrameChannel(output_stream=writer, binary=True)
    done = []

    def consume():
        total = 0
        while True:
            drained = reader.drain_into(lambda segments: None)
            if not drained:
                break
            total += drained
        done.append(total)

    consumer = JThread(target=consume, group=root)
    consumer.start()
    frame = {"t": "o", "d": FRAME_DATA}
    start = time.perf_counter()
    if vectored:
        for base in range(0, FRAMES, 64):
            channel.send_many([frame] * min(64, FRAMES - base),
                              flush=False)
        channel.flush()
    else:
        for _ in range(FRAMES):
            channel.send(frame, flush=False)
        channel.flush()
    elapsed = time.perf_counter() - start
    channel.close()
    consumer.join(30)
    reader.close()
    assert done and done[0] == FRAMES * (5 + len(FRAME_DATA))
    return FRAMES / elapsed


def test_vectored_send_within_ratio():
    """Within-run gate: send_many >= 0.9x per-frame send (noise floor)."""
    best_ratio = 0.0
    for _ in range(RETRIES):
        sequential = _frame_burst(vectored=False)
        vectored = _frame_burst(vectored=True)
        best_ratio = max(best_ratio, vectored / sequential)
        if best_ratio >= 0.9:
            break
    assert best_ratio >= 0.9, (
        f"vectored frame send lost to sequential send: "
        f"x{best_ratio:.2f} < 0.9x")


def test_vectored_send_vs_recorded_baseline():
    """Cross-run gate: today's frames/s vs the best full-run record."""
    baseline = bench_baseline("transport", "vectored_frames_s", best="max")
    if baseline is None:
        pytest.skip("no non-smoke baseline in BENCH_transport.json yet "
                    "(run benchmarks/bench_sharing_and_dist.py once)")
    measured = max(_frame_burst(vectored=True) for _ in range(RETRIES))
    # 0.4x of the best-ever record: same rationale as the ipc gate.
    assert measured >= baseline * 0.4, (
        f"vectored frame throughput collapsed: {measured:.0f} frames/s "
        f"vs recorded best {baseline:.0f} frames/s (0.4x gate)")
