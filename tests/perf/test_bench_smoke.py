"""Tiny-N smoke runs of the benchmark suite (the ``perf`` marker).

The real numbers come from running ``benchmarks/`` directly; these smoke
tests only prove the benchmark code still *executes* after refactors, by
running the benches in a subprocess with ``REPRO_BENCH_N`` forced tiny
and pytest-benchmark held to single rounds.  The transport benches also
prove the ``--trace-out`` JSONL export end to end.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.perf

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_bench(bench_file: str, *extra_args: str) -> \
        subprocess.CompletedProcess:
    env = dict(os.environ)
    env["REPRO_BENCH_N"] = "50"
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")])
    return subprocess.run(
        [sys.executable, "-m", "pytest",
         str(REPO_ROOT / "benchmarks" / bench_file),
         "-p", "no:cacheprovider",
         "--benchmark-min-rounds=1", "--benchmark-max-time=0",
         "--benchmark-warmup=off", *extra_args],
        capture_output=True, text=True, timeout=300,
        cwd=str(REPO_ROOT), env=env)


@pytest.mark.parametrize("bench_file",
                         ["bench_security.py", "bench_dispatch.py",
                          "bench_context_switch.py",
                          "bench_ipc_pipes.py",
                          "bench_sharing_and_dist.py",
                          "bench_supervision.py"])
def test_bench_smoke(bench_file):
    result = run_bench(bench_file)
    assert result.returncode == 0, \
        f"{bench_file} smoke run failed:\n{result.stdout}\n{result.stderr}"
    assert "passed" in result.stdout


def test_transport_bench_emits_trace_jsonl(tmp_path):
    """The transport benches drive VMs end to end, so ``--trace-out``
    must yield a non-empty, well-formed JSONL trace of the run."""
    trace = tmp_path / "transport-trace.jsonl"
    result = run_bench("bench_sharing_and_dist.py",
                       f"--trace-out={trace}")
    assert result.returncode == 0, \
        f"trace run failed:\n{result.stdout}\n{result.stderr}"
    assert "[trace-out] wrote" in result.stdout
    lines = trace.read_text().splitlines()
    assert lines, "trace file is empty"
    for line in lines[:20]:
        json.loads(line)
