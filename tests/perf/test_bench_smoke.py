"""Tiny-N smoke runs of the benchmark suite (the ``perf`` marker).

The real numbers come from running ``benchmarks/`` directly; these smoke
tests only prove the benchmark code still *executes* after refactors, by
running the security and dispatch benches in a subprocess with
``REPRO_BENCH_N`` forced tiny and pytest-benchmark held to single rounds.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.perf

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_bench(bench_file: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["REPRO_BENCH_N"] = "50"
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")])
    return subprocess.run(
        [sys.executable, "-m", "pytest",
         str(REPO_ROOT / "benchmarks" / bench_file),
         "-p", "no:cacheprovider",
         "--benchmark-min-rounds=1", "--benchmark-max-time=0",
         "--benchmark-warmup=off"],
        capture_output=True, text=True, timeout=300,
        cwd=str(REPO_ROOT), env=env)


@pytest.mark.parametrize("bench_file",
                         ["bench_security.py", "bench_dispatch.py"])
def test_bench_smoke(bench_file):
    result = run_bench(bench_file)
    assert result.returncode == 0, \
        f"{bench_file} smoke run failed:\n{result.stdout}\n{result.stderr}"
    assert "passed" in result.stdout
