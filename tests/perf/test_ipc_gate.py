"""Perf gates for the ring-pipe data plane (the ``perf`` marker).

Two gates keep the zero-copy IPC fast path honest:

* a within-run ratio gate — the ring pipe (default capacity, zero-copy
  ``drain_into`` reads) must clearly beat the legacy bytearray channel
  at the pre-ring configuration, measured back to back in this very
  process;
* a cross-run gate — ring throughput must stay within a generous factor
  of the best non-smoke ``ring_mb_s`` recorded in ``BENCH_ipc.json`` by
  full benchmark runs.  Skipped until a full run has seeded a baseline.

Margins are loose on purpose: throughput through two Python threads is
at the mercy of the scheduler, and a perf gate that cries wolf gets
deleted.  Real regressions (a lost wakeup edge, a reintroduced copy)
are integer-factor events, not 20% events.
"""

import sys
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from _common import bench_baseline  # noqa: E402

from repro.io.streams import make_pipe  # noqa: E402
from repro.jvm.threads import JThread, ThreadGroup  # noqa: E402

pytestmark = pytest.mark.perf

PAYLOAD = b"x" * 8192
CHUNKS = 128  # 1 MiB per transfer: quick, but past the setup costs
RETRIES = 3


def _transfer_mb_s(legacy: bool) -> float:
    """One 8 KiB-chunk transfer between two JThreads; returns MB/s."""
    root = ThreadGroup(None, "system")
    if legacy:
        reader, writer = make_pipe(capacity=64 * 1024, legacy=True)
    else:
        reader, writer = make_pipe()
    received = []

    def consume():
        total = 0
        if legacy:
            while True:
                chunk = reader.read(64 * 1024)
                if not chunk:
                    break
                total += len(chunk)
        else:
            while True:
                drained = reader.drain_into(lambda segments: None)
                if not drained:
                    break
                total += drained
        received.append(total)

    consumer = JThread(target=consume, group=root)
    consumer.start()
    start = time.perf_counter()
    for _ in range(CHUNKS):
        writer.write(PAYLOAD)
    writer.close()
    consumer.join(30)
    elapsed = time.perf_counter() - start
    assert received == [len(PAYLOAD) * CHUNKS]
    return len(PAYLOAD) * CHUNKS / (1024 * 1024) / elapsed


def test_ring_vs_legacy_within_ratio():
    """Within-run gate: ring data plane >= 1.3x the legacy channel."""
    best_ratio = 0.0
    for _ in range(RETRIES):
        legacy_mb_s = _transfer_mb_s(legacy=True)
        ring_mb_s = _transfer_mb_s(legacy=False)
        best_ratio = max(best_ratio, ring_mb_s / legacy_mb_s)
        if best_ratio >= 1.3:
            break
    assert best_ratio >= 1.3, (
        f"ring pipe no longer beats the legacy channel: "
        f"x{best_ratio:.2f} < 1.3x")


def test_ring_throughput_vs_recorded_baseline():
    """Cross-run gate: today's ring MB/s vs the best full-run record."""
    baseline_mb_s = bench_baseline("ipc", "ring_mb_s", best="max")
    if baseline_mb_s is None:
        pytest.skip("no non-smoke baseline in BENCH_ipc.json yet "
                    "(run benchmarks/bench_ipc_pipes.py once)")
    measured_mb_s = max(
        _transfer_mb_s(legacy=False) for _ in range(RETRIES))
    # 0.4x of the best-ever record: in-process gate transfers are 8x
    # smaller than the bench's and share the suite's scheduler noise.
    assert measured_mb_s >= baseline_mb_s * 0.4, (
        f"ring pipe throughput collapsed: {measured_mb_s:.0f} MB/s vs "
        f"recorded best {baseline_mb_s:.0f} MB/s (0.4x gate)")
