"""Perf gates for the security fast path (the ``perf`` marker).

Two gates keep the PR-5 cached ``check_permission`` walk honest against
the execution-state MAC machinery:

* a within-run ratio gate — phase-conditioned grants must stay within
  10% of the phase-free cached walk, measured back to back in this very
  process;
* a cross-run gate — the cached-walk latency must stay within 10% (plus
  a small absolute guard for scheduler noise) of the best non-smoke
  ``cached_us`` recorded in ``BENCH_security.json`` by full benchmark
  runs.  Skipped until a full run has seeded a baseline.
"""

import contextlib
import sys
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from _common import bench_baseline  # noqa: E402

from repro.core.launcher import DEFAULT_POLICY  # noqa: E402
from repro.security import access, cache  # noqa: E402
from repro.security.codesource import CodeSource  # noqa: E402
from repro.security.permissions import FilePermission  # noqa: E402
from repro.security.policy import parse_policy  # noqa: E402

pytestmark = pytest.mark.perf

PERM = FilePermission("/home/alice/notes.txt", "read")
LOOP_N = 2000
ROUNDS = 5

PLAIN_TEXT = DEFAULT_POLICY + "\n".join(
    f'grant codeBase "file:/gate/d{i}/*" {{\n'
    f'    permission FilePermission "/home/alice/-", "read,write";\n'
    f'}};'
    for i in range(8))

PHASED_TEXT = DEFAULT_POLICY + "\n".join(
    f'grant codeBase "file:/gate/p{i}/*", phase "steady" {{\n'
    f'    permission FilePermission "/home/alice/-", "read,write";\n'
    f'}};'
    for i in range(8))


def _domains(policy, prefix):
    return [policy.domain_for_code_source(
        CodeSource(f"file:/gate/{prefix}{i}/Cls{i}.class"))
        for i in range(8)]


def _cached_us(domains) -> float:
    """Best-of-ROUNDS mean latency of the warmed cached walk, in us."""
    best = float("inf")
    with contextlib.ExitStack() as stack:
        for domain in domains:
            stack.enter_context(access.stack_frame(domain))
        access.check_permission(PERM)  # warm the memos
        check = access.check_permission
        for _ in range(ROUNDS):
            start = time.perf_counter()
            for _ in range(LOOP_N):
                check(PERM)
            best = min(best, time.perf_counter() - start)
    return best / LOOP_N * 1e6


@pytest.fixture
def pristine_phase_state():
    """Measure against the plain fast path regardless of what earlier
    tests did to the (deliberately sticky) process-wide latch."""
    saved_aware = cache.PHASE_AWARE
    saved_resolver = cache.phase_resolver
    cache.PHASE_AWARE = False
    cache.phase_resolver = None
    yield
    cache.PHASE_AWARE = saved_aware
    cache.phase_resolver = saved_resolver


def test_phase_aware_walk_within_ratio(pristine_phase_state):
    """Within-run gate: phased cached walk <= 1.10x plain cached walk."""
    best_ratio = float("inf")
    for _ in range(3):  # retries absorb scheduler noise
        cache.PHASE_AWARE = False
        cache.phase_resolver = None
        plain_us = _cached_us(_domains(parse_policy(PLAIN_TEXT), "d"))
        cache.phase_resolver = lambda: "steady"
        phased_policy = parse_policy(PHASED_TEXT)  # flips the latch
        assert cache.PHASE_AWARE
        phased_us = _cached_us(_domains(phased_policy, "p"))
        best_ratio = min(best_ratio, phased_us / plain_us)
        if best_ratio <= 1.10:
            break
    assert best_ratio <= 1.10, (
        f"phase-aware cached walk regressed: {best_ratio:.3f}x > 1.10x")


def test_cached_walk_vs_recorded_baseline(pristine_phase_state):
    """Cross-run gate: today's cached walk vs the best full-run record."""
    baseline_us = bench_baseline("security", "cached_us")
    if baseline_us is None:
        pytest.skip("no non-smoke baseline in BENCH_security.json yet "
                    "(run benchmarks/bench_security.py once)")
    measured_us = min(
        _cached_us(_domains(parse_policy(PLAIN_TEXT), "d"))
        for _ in range(3))
    # 10% relative plus 2us absolute: tiny in-process loops see
    # scheduler noise full benchmark runs average away.
    assert measured_us <= baseline_us * 1.10 + 2.0, (
        f"cached check_permission regressed: {measured_us:.2f}us vs "
        f"recorded baseline {baseline_us:.2f}us (+10% gate)")
