"""Perf gates for the event-loop scheduler (the ``perf`` marker).

Two gates keep the continuation-task fast path honest:

* a within-run ratio gate — task switches on one scheduler must clearly
  beat OS-thread condvar hand-offs at the same worker count, measured
  back to back in this very process;
* a cross-run gate — task-switch throughput must stay within a generous
  factor of the best non-smoke ``task_switches_per_s`` recorded in
  ``BENCH_sched.json`` by full benchmark runs.  Skipped until a full
  run has seeded a baseline.

Margins are loose on purpose (the bench itself asserts the x10 claim;
these gates watch for integer-factor collapses like a lost fast path or
an accidental lock in the switch loop).
"""

import sys
import threading
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from _common import bench_baseline  # noqa: E402

from repro.jvm.threads import JThread, ThreadGroup  # noqa: E402
from repro.sched import Scheduler, sched_yield  # noqa: E402

pytestmark = pytest.mark.perf

WORKERS = 8
ROUNDS = 500
RETRIES = 3


def _task_switches_per_s() -> float:
    """WORKERS tasks round-robining ROUNDS yields each; switches/s."""
    scheduler = Scheduler(name="gate-sched")
    scheduler.start()
    try:
        def body():
            for _ in range(ROUNDS):
                yield sched_yield()

        start = time.perf_counter()
        tasks = [scheduler.spawn(body) for _ in range(WORKERS)]
        assert all(task.join(30) for task in tasks)
        elapsed = time.perf_counter() - start
    finally:
        scheduler.shutdown()
    return WORKERS * ROUNDS / elapsed


def _thread_switches_per_s() -> float:
    """WORKERS/2 condvar ping-pong pairs doing the same switch count."""
    root = ThreadGroup(None, "system")

    class Game:
        def __init__(self):
            self.cond = threading.Condition()
            self.turn = 0
            self.rounds = 0

        def run(self, me, other):
            with self.cond:
                while self.rounds < ROUNDS:
                    while self.turn != me and self.rounds < ROUNDS:
                        self.cond.wait(1.0)
                    if self.rounds >= ROUNDS:
                        break
                    self.turn = other
                    self.rounds += 1
                    self.cond.notify_all()

    games = [Game() for _ in range(WORKERS // 2)]
    threads = []
    for game in games:
        threads.append(JThread(target=game.run, args=(0, 1), group=root))
        threads.append(JThread(target=game.run, args=(1, 0), group=root))
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(30)
    elapsed = time.perf_counter() - start
    assert all(game.rounds >= ROUNDS for game in games)
    return (WORKERS // 2) * ROUNDS * 2 / elapsed


def test_task_vs_thread_switch_within_ratio():
    """Within-run gate: task switching >= 4x OS-thread hand-offs."""
    best_ratio = 0.0
    for _ in range(RETRIES):
        thread_rate = _thread_switches_per_s()
        task_rate = _task_switches_per_s()
        best_ratio = max(best_ratio, task_rate / thread_rate)
        if best_ratio >= 4.0:
            break
    assert best_ratio >= 4.0, (
        f"the scheduler no longer clearly beats OS-thread hand-offs: "
        f"x{best_ratio:.2f} < 4x")


def test_task_switch_throughput_vs_recorded_baseline():
    """Cross-run gate: today's switches/s vs the best full-run record."""
    baseline = bench_baseline("sched", "task_switches_per_s", best="max")
    if baseline is None:
        pytest.skip("no non-smoke baseline in BENCH_sched.json yet "
                    "(run benchmarks/bench_context_switch.py once)")
    measured = max(_task_switches_per_s() for _ in range(RETRIES))
    # 0.4x of the best-ever record: gate batches are 4x smaller than the
    # bench's and share the suite's scheduler noise.
    assert measured >= baseline * 0.4, (
        f"task-switch throughput collapsed: {measured:.0f}/s vs "
        f"recorded best {baseline:.0f}/s (0.4x gate)")
