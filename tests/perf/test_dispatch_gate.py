"""Perf gates for batched AWT dispatch (the ``perf`` marker).

* a within-run gate — a paint storm aimed at a handful of components
  must coalesce repaints (last-writer-wins per component), the directly
  observable effect of batched drain;
* a cross-run gate — burst dispatch throughput must stay within a
  generous factor of the best non-smoke ``events_s`` recorded in
  ``BENCH_dispatch.json`` by full benchmark runs.  Skipped until a full
  run has seeded a baseline.
"""

import sys
import threading
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from _common import bench_baseline  # noqa: E402

from repro.awt.dispatch import EventDispatchThread  # noqa: E402
from repro.awt.events import (  # noqa: E402
    ActionEvent,
    EventQueue,
    PaintEvent,
)
from repro.jvm.threads import ThreadGroup  # noqa: E402

pytestmark = pytest.mark.perf

BURST_EVENTS = 2000
RETRIES = 3


class _CountingComponent:
    def __init__(self):
        self.paints = 0
        self.done = threading.Event()

    def process_event(self, event):
        if isinstance(event, PaintEvent):
            self.paints += 1
        if getattr(event, "command", None) == "sentinel":
            self.done.set()


def _burst() -> tuple[float, int, int]:
    """(events/s, repaints posted, repaints executed) for one storm."""
    root = ThreadGroup(None, "system")
    queue = EventQueue("gate-burst")
    components = [_CountingComponent() for _ in range(4)]
    edt = EventDispatchThread(queue, root, "gate-edt", daemon=True)
    edt.start()
    repaints = 0
    start = time.perf_counter()
    for index in range(BURST_EVENTS):
        component = components[index % len(components)]
        if index % 4:
            queue.post_event(PaintEvent(component))
            repaints += 1
        else:
            queue.post_event(ActionEvent(component, "go"))
    sentinel = components[0]
    queue.post_event(ActionEvent(sentinel, "sentinel"))
    assert sentinel.done.wait(30)
    elapsed = time.perf_counter() - start
    edt.shutdown()
    edt.join(5)
    executed = sum(component.paints for component in components)
    return (BURST_EVENTS + 1) / elapsed, repaints, executed


def test_paint_storm_coalesces():
    """Within-run gate: batched drain must drop superseded repaints."""
    for _ in range(RETRIES):
        _, posted, executed = _burst()
        if executed < posted:
            return
    pytest.fail(
        f"no repaint coalescing observed: {executed}/{posted} executed "
        f"across {RETRIES} paint storms at 4 components")


def test_burst_dispatch_vs_recorded_baseline():
    """Cross-run gate: today's events/s vs the best full-run record."""
    baseline = bench_baseline("dispatch", "events_s", best="max")
    if baseline is None:
        pytest.skip("no non-smoke baseline in BENCH_dispatch.json yet "
                    "(run benchmarks/bench_dispatch.py once)")
    measured = max(_burst()[0] for _ in range(RETRIES))
    # 0.4x of the best-ever record: same rationale as the ipc gate.
    assert measured >= baseline * 0.4, (
        f"burst dispatch throughput collapsed: {measured:.0f} events/s "
        f"vs recorded best {baseline:.0f} events/s (0.4x gate)")
