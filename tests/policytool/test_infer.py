"""Inference: least-privilege policies out of audit slices.

The two property-style obligations from the issue:

* **sufficiency** — re-running the recorded workload under the inferred
  policy produces zero denials;
* **minimality** — removing any single inferred grant breaks the
  workload (a would-deny appears).
"""

import pytest

from repro.core.execspec import ExecSpec
from repro.core.launcher import MultiProcVM
from repro.io.file import read_text, write_text
from repro.policytool.diff import diff_policies, render_diff
from repro.policytool.infer import (
    infer_policy,
    needed_permissions,
    unsatisfied_records,
)
from repro.policytool.lint import lint_policy
from repro.policytool.recorder import recorder_for
from repro.security.policy import Policy, parse_policy
from tests.conftest import make_app

pytestmark = pytest.mark.policy

APP_BASE = "file:/usr/local/java/apps/demo/Demo.class"


def synthetic(ptype, target, actions, *, granted=True, phase=None,
              stack=(APP_BASE,)):
    return {"granted": granted, "ptype": ptype, "target": target,
            "actions": actions, "phase": phase, "stack": stack,
            "domain": stack[0] if stack else None,
            "permission": f"({ptype} {target} {actions})"}


def workload_records(host, register_app):
    """Run a small file workload in learning mode; return its slice."""
    def main(jclass, ctx, args):
        read_text(ctx, "/etc/motd")
        write_text(ctx, "/tmp/infer-probe.txt", "hello")
        read_text(ctx, "/tmp/infer-probe.txt")
        return 0

    class_name = register_app("Inferee", main)
    app = host.launch(ExecSpec(class_name, (), record_policy=True))
    assert app.wait_for(10) == 0
    return recorder_for(host.vm).slice_for(app.app_id).snapshot(), \
        class_name


class TestInference:
    def test_inferred_policy_is_sufficient(self, host, register_app):
        records, __ = workload_records(host, register_app)
        inferred = infer_policy(records)
        assert unsatisfied_records(inferred, records) == []

    def test_inferred_policy_is_minimal(self, host, register_app):
        """Dropping any one inferred permission produces a would-deny."""
        records, __ = workload_records(host, register_app)
        inferred = infer_policy(records)
        entries = inferred.entries()
        assert entries
        total = sum(len(entry.permissions) for entry in entries)
        assert total >= 2
        for skip_entry in range(len(entries)):
            for skip_perm in range(len(entries[skip_entry].permissions)):
                pruned = Policy()
                for index, entry in enumerate(entries):
                    kept = [p for j, p in enumerate(entry.permissions)
                            if not (index == skip_entry
                                    and j == skip_perm)]
                    pruned.add_grant(
                        kept,
                        code_base=entry.code_source.url
                        if entry.code_source else None,
                        user=entry.user, phase=entry.phase)
                assert unsatisfied_records(pruned, records), \
                    "every inferred grant must be load-bearing"

    def test_workload_reruns_cleanly_under_inferred_policy(
            self, host, register_app):
        """End-to-end sufficiency: boot a VM whose *entire* policy is the
        inferred one and run the same workload — zero denials."""
        records, __ = workload_records(host, register_app)
        inferred = infer_policy(records)
        replay = MultiProcVM.boot(policy=parse_policy(inferred.render()))
        try:
            def main(jclass, ctx, args):
                read_text(ctx, "/etc/motd")
                write_text(ctx, "/tmp/infer-probe.txt", "hello")
                read_text(ctx, "/tmp/infer-probe.txt")
                return 0

            class_name = make_app(replay.vm, "Inferee", main)
            with replay.host_session():
                app = replay.launch(ExecSpec(class_name, ()))
                assert app.wait_for(10) == 0
            assert replay.vm.telemetry.audit.denials(
                app_id=app.app_id) == []
        finally:
            replay.shutdown()

    def test_denials_never_become_grants(self):
        records = [synthetic("FilePermission", "/secret", "read",
                             granted=False)]
        assert infer_policy(records).entries() == []

    def test_system_domains_receive_nothing(self):
        records = [synthetic("FilePermission", "/etc/motd", "read",
                             stack=("<system>", "<ancestry>"))]
        assert infer_policy(records).entries() == []

    def test_actions_union_per_target(self):
        records = [
            synthetic("FilePermission", "/tmp/f", "read"),
            synthetic("FilePermission", "/tmp/f", "write"),
        ]
        needs = needed_permissions(records)
        assert needs[(APP_BASE, None)][("FilePermission", "/tmp/f")] == \
            {"read", "write"}
        entries = infer_policy(records).entries()
        assert len(entries) == 1
        [permission] = entries[0].permissions
        assert permission.actions() == "read,write"

    def test_generalizes_same_directory_files_to_glob(self):
        records = [synthetic("FilePermission", f"/data/f{i}.txt", "read")
                   for i in range(3)]
        [entry] = infer_policy(records).entries()
        [permission] = entry.permissions
        assert permission.name == "/data/*"
        assert permission.actions() == "read"

    def test_generalization_respects_threshold_and_root(self):
        below = [synthetic("FilePermission", f"/data/f{i}.txt", "read")
                 for i in range(2)]
        [entry] = infer_policy(below).entries()
        assert sorted(p.name for p in entry.permissions) == \
            ["/data/f0.txt", "/data/f1.txt"]
        # Files directly under / never collapse to "/*".
        top = [synthetic("FilePermission", f"/f{i}", "read")
               for i in range(5)]
        [entry] = infer_policy(top).entries()
        assert all(p.name != "/*" for p in entry.permissions)

    def test_phase_aware_buckets_split_by_phase(self):
        records = [
            synthetic("FilePermission", "/boot.cfg", "read",
                      phase="init"),
            synthetic("FilePermission", "/data.txt", "read",
                      phase="steady"),
        ]
        flat = infer_policy(records)
        assert [entry.phase for entry in flat.entries()] == [None]
        phased = infer_policy(records, phase_aware=True)
        assert [entry.phase for entry in phased.entries()] == \
            ["init", "steady"]
        assert phased.phase_sensitive

    def test_implied_permissions_are_dropped(self):
        records = [
            synthetic("FilePermission", "/data/-", "read"),
            synthetic("FilePermission", "/data/inner.txt", "read"),
        ]
        [entry] = infer_policy(records).entries()
        assert [p.name for p in entry.permissions] == ["/data/-"]


class TestDiff:
    def test_missing_and_unused_directions(self):
        live = parse_policy("""
        grant codeBase "file:/usr/local/java/apps/demo/*" {
            permission FilePermission "/etc/motd", "read";
            permission SocketPermission "evil.example.com", "connect";
        };
        """)
        records = [
            synthetic("FilePermission", "/etc/motd", "read"),
            synthetic("FilePermission", "/tmp/new.txt", "write"),
        ]
        inferred = infer_policy(records)
        diff = diff_policies(live, inferred)
        assert not diff.is_clean()
        assert [entry.permission.name for entry in diff.missing] == \
            ["/tmp/new.txt"]
        assert [entry.permission.name for entry in diff.unused] == \
            ["evil.example.com"]
        text = render_diff(diff)
        assert "+ missing" in text and "- unused" in text

    def test_agreeing_policies_diff_clean(self):
        records = [synthetic("FilePermission", "/etc/motd", "read")]
        inferred = infer_policy(records)
        diff = diff_policies(parse_policy(inferred.render()), inferred)
        assert diff.is_clean()
        assert "agree" in render_diff(diff)

    def test_grants_to_unobserved_code_are_not_unused(self):
        live = parse_policy("""
        grant codeBase "file:/usr/local/java/apps/other/*" {
            permission FilePermission "/var/other", "read";
        };
        """)
        records = [synthetic("FilePermission", "/etc/motd", "read")]
        diff = diff_policies(live, infer_policy(records))
        assert diff.unused == []

    def test_inferred_policy_round_trips_through_text(self, host,
                                                      register_app):
        records, __ = workload_records(host, register_app)
        inferred = infer_policy(records)
        reparsed = parse_policy(inferred.render())
        assert diff_policies(reparsed, inferred).is_clean()
        assert unsatisfied_records(reparsed, records) == []


class TestLint:
    def find(self, policy_text, code):
        findings = lint_policy(parse_policy(policy_text))
        return [f for f in findings if f.code == code]

    def test_unknown_phase_is_an_error(self):
        found = self.find("""
        grant codeBase "file:/a/*", phase "turbo" {
            permission FilePermission "/x", "read";
        };
        """, "unknown-phase")
        assert found and found[0].severity == "error"

    def test_dead_user_selector_is_an_error(self):
        found = self.find("""
        grant codeBase "file:/a/*", user "alice" {
            permission FilePermission "/x", "read";
        };
        """, "dead-user-selector")
        assert found and found[0].severity == "error"

    def test_duplicate_selector_warns_once(self):
        found = self.find("""
        grant codeBase "file:/a/*" {
            permission FilePermission "/x", "read";
        };
        grant codeBase "file:/a/*" {
            permission FilePermission "/y", "read";
        };
        """, "duplicate-selector")
        assert len(found) == 1
        assert found[0].severity == "warn"

    def test_shadowed_phase_grant_warns(self):
        found = self.find("""
        grant codeBase "file:/a/*" {
            permission FilePermission "/data/-", "read";
        };
        grant codeBase "file:/a/*", phase "steady" {
            permission FilePermission "/data/x.txt", "read";
        };
        """, "shadowed-phase-grant")
        assert found and found[0].severity == "warn"

    def test_all_permission_outside_system_warns(self):
        found = self.find("""
        grant codeBase "file:/opt/thing/*" {
            permission AllPermission;
        };
        """, "all-permission")
        assert found and found[0].severity == "warn"
        assert self.find("""
        grant codeBase "file:/system/*" {
            permission AllPermission;
        };
        """, "all-permission") == []

    def test_redundant_permission_and_empty_grant_are_info(self):
        found = self.find("""
        grant codeBase "file:/a/*" {
            permission FilePermission "/data/-", "read";
            permission FilePermission "/data/x", "read";
        };
        grant codeBase "file:/b/*" {
        };
        """, "redundant-permission")
        assert found and found[0].severity == "info"

    def test_findings_sort_errors_first(self):
        findings = lint_policy(parse_policy("""
        grant codeBase "file:/b/*" {
        };
        grant codeBase "file:/a/*", phase "turbo" {
            permission FilePermission "/x", "read";
        };
        """))
        assert findings[0].severity == "error"
        assert findings[-1].severity == "info"

    def test_clean_policy_has_no_findings(self):
        assert lint_policy(parse_policy("""
        grant codeBase "file:/a/*" {
            permission FilePermission "/x", "read";
        };
        """)) == []
