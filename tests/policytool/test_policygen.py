"""The ``policygen`` tool, ``/proc/policy``, and the dist wire."""

import time

import pytest

from repro.core.context import current_application
from repro.core.execspec import ExecSpec
from repro.io.file import read_text, write_text
from repro.policytool.recorder import recorder_for

pytestmark = pytest.mark.policy


def run_tool(mvm, args, capture, user=None):
    out = capture()
    kwargs = {"stdout": out.stream, "stderr": out.stream}
    if user is not None:
        kwargs["user"] = mvm.vm.user_database.lookup(user)
    app = mvm.exec("tools.Policygen", args, **kwargs)
    return app.wait_for(10), out.text


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


@pytest.fixture
def learner(host, register_app):
    """A recorded app that works, then lingers until recording stops."""
    def main(jclass, ctx, args):
        read_text(ctx, "/etc/motd")
        write_text(ctx, "/tmp/policygen-probe.txt", "x")
        app = current_application()
        deadline = time.monotonic() + 10
        while app.policy_recording and time.monotonic() < deadline:
            time.sleep(0.01)
        return 0

    class_name = register_app("Pglearner", main)
    app = host.launch(ExecSpec(class_name, (), record_policy=True))
    assert wait_until(
        lambda: len(recorder_for(host.vm).slice_for(app.app_id) or ()) >= 2)
    yield app
    recorder_for(host.vm).stop(app)
    app.wait_for(10)


class TestRecordVerb:
    def test_record_on_then_off(self, host, register_app, capture):
        def main(jclass, ctx, args):
            app = current_application()
            deadline = time.monotonic() + 10
            while not app.policy_recording \
                    and time.monotonic() < deadline:
                time.sleep(0.01)
            read_text(ctx, "/etc/motd")
            return 0

        class_name = register_app("Toggled", main)
        app = host.exec(class_name, [], name="toggled")
        code, text = run_tool(host, [
            "record", str(app.app_id), "on"], capture)
        assert code == 0 and "recording on" in text
        assert app.wait_for(10) == 0
        records = recorder_for(host.vm).slice_for(app.app_id).snapshot()
        assert any(r.get("target") == "/etc/motd" for r in records)

    def test_status_verb(self, host, capture, learner):
        code, text = run_tool(host, [
            "record", str(learner.app_id), "status"], capture)
        assert code == 0
        assert "recording on" in text
        code, text = run_tool(host, [
            "record", str(learner.app_id), "off"], capture)
        assert code == 0
        code, text = run_tool(host, [
            "record", str(learner.app_id), "status"], capture)
        assert "recording off" in text

    def test_stranger_cannot_toggle(self, host, capture, learner):
        """Bob lacks standing over another user's application — the
        ``kill`` rule guards learning mode too."""
        code, text = run_tool(host, [
            "record", str(learner.app_id), "off"], capture, user="bob")
        assert code == 1
        assert "policygen:" in text
        assert recorder_for(host.vm).is_recording(learner.app_id)

    def test_unknown_application(self, host, capture):
        code, text = run_tool(host, ["record", "99999", "on"], capture)
        assert code == 1
        assert "no such application" in text


class TestInferDiffLintVerbs:
    def test_infer_prints_a_policy(self, host, capture, learner):
        code, text = run_tool(host, [
            "infer", str(learner.app_id)], capture)
        assert code == 0
        assert "grant codeBase" in text
        assert "/etc/motd" in text
        assert "pglearner" in text  # the app's own code base

    def test_infer_writes_a_file(self, host, capture, learner):
        code, text = run_tool(host, [
            "infer", str(learner.app_id), "-o", "/tmp/inferred.policy"],
            capture)
        assert code == 0 and "wrote" in text
        saved = read_text(host.initial.context(), "/tmp/inferred.policy")
        assert "grant codeBase" in saved

    def test_diff_reports_over_privilege(self, host, capture, learner):
        """The default policy grants local code far more than the
        workload used: diff flags the surplus as unused."""
        code, text = run_tool(host, [
            "diff", str(learner.app_id)], capture)
        assert code == 0
        assert "- unused" in text

    def test_lint_a_file(self, host, capture):
        write_text(host.initial.context(), "/tmp/bad.policy", """
        grant codeBase "file:/a/*", phase "turbo" {
            permission FilePermission "/x", "read";
        };
        """)
        code, text = run_tool(host, ["lint", "/tmp/bad.policy"], capture)
        assert code == 1
        assert "unknown-phase" in text

    def test_lint_live_policy(self, host, capture):
        code, text = run_tool(host, ["lint"], capture)
        assert code == 0  # the default policy has no error findings

    def test_usage_on_nonsense(self, host, capture):
        code, text = run_tool(host, ["frobnicate"], capture)
        assert code == 2
        assert "usage:" in text


class TestProcPolicy:
    def test_policy_dir_lists_applications(self, host, capture, learner):
        out = capture()
        app = host.exec("tools.Ls", ["/proc/policy"],
                        stdout=out.stream, stderr=out.stream)
        assert app.wait_for(10) == 0
        assert str(learner.app_id) in out.text.split()
        out = capture()
        app = host.exec("tools.Ls", ["/proc"],
                        stdout=out.stream, stderr=out.stream)
        assert app.wait_for(10) == 0
        assert "policy" in out.text.split()

    def test_policy_file_shows_phase_and_delta(self, host, learner):
        ctx = host.initial.context()
        text = read_text(ctx, "/proc/policy/%d" % learner.app_id)
        fields = dict(line.split("\t") for line in text.splitlines())
        assert fields["Phase:"] == "init"
        assert fields["Recording:"] == "on"
        assert int(fields["Records:"]) >= 2
        assert int(fields["InferredGrants:"]) >= 1
        assert "MissingGrants:" in fields and "UnusedGrants:" in fields
        assert int(fields["MissingGrants:"]) == 0  # live policy suffices

    def test_recording_off_after_stop(self, host, learner):
        recorder_for(host.vm).stop(learner)
        text = read_text(host.initial.context(),
                         "/proc/policy/%d" % learner.app_id)
        assert "Recording:\tdone" in text

    def test_vmstat_exports_drop_counter(self, host):
        text = read_text(host.initial.context(), "/proc/vmstat")
        assert "security.audit.dropped" in text

    def test_unknown_app_is_not_found(self, host):
        from repro.jvm.errors import IOException
        with pytest.raises(IOException):
            read_text(host.initial.context(), "/proc/policy/99999")


class TestDistWire:
    HOST_A = "ctl.example.com"
    HOST_B = "wrk.example.com"
    PORT = 7100

    @pytest.fixture
    def pair(self):
        from repro.core.launcher import MultiProcVM
        from repro.net.fabric import NetworkFabric
        from repro.unixfs.machine import standard_process

        fabric = NetworkFabric()
        mvm_a = MultiProcVM.boot(
            os_context=standard_process(hostname=self.HOST_A),
            network=fabric)
        mvm_b = MultiProcVM.boot(
            os_context=standard_process(hostname=self.HOST_B),
            network=fabric)
        with mvm_b.host_session():
            mvm_b.exec("dist.RexecDaemon", [str(self.PORT)])
        assert wait_until(lambda: fabric.resolve(
            self.HOST_B)._listener(self.PORT) is not None)
        yield mvm_a, mvm_b
        mvm_a.shutdown()
        mvm_b.shutdown()

    def test_record_and_phase_travel_the_request(self, pair):
        """Satellite: learning mode and the launch phase cross the wire
        like limits — enforced by the *executing* VM."""
        from repro.dist.client import RemoteApplication

        mvm_a, mvm_b = pair
        with mvm_a.host_session():
            ctx = mvm_a.initial.context()
            remote = RemoteApplication(
                ctx, self.HOST_B, self.PORT, "alice", "wonderland",
                "tools.Cat", ["/etc/motd"], record=True, phase="steady")
            assert remote.wait_for(10) == 0
        recorder = mvm_b.vm.policy_recorder
        assert recorder is not None
        slices = recorder.slices()
        assert slices, "the worker VM recorded the remote launch"
        records = slices[-1].snapshot()
        assert any(r.get("target") == "/etc/motd" for r in records)
        assert all(r.get("phase") == "steady" for r in records)

    def test_junk_phase_is_dropped_not_fatal(self, pair):
        from repro.dist.client import RemoteApplication

        mvm_a, mvm_b = pair
        with mvm_a.host_session():
            ctx = mvm_a.initial.context()
            remote = RemoteApplication(
                ctx, self.HOST_B, self.PORT, "alice", "wonderland",
                "tools.Echo", ["ok"], phase="turbo")
            assert remote.wait_for(10) == 0
        assert remote.output_text() == "ok\n"
