"""Learning mode, audit retention, and the consumption hooks."""

import io
import json

import pytest

from repro.core.execspec import ExecSpec
from repro.io.file import read_text, write_text
from repro.policytool.recorder import RecordingSlice, recorder_for
from repro.telemetry.audit import (
    AuditLog,
    KNOWN_MANAGERS,
    normalize_manager,
)

pytestmark = pytest.mark.policy


class TestRecorder:
    def test_execspec_record_policy_captures_a_slice(self, host,
                                                     register_app):
        def main(jclass, ctx, args):
            read_text(ctx, "/etc/motd")
            return 0

        class_name = register_app("Learner", main)
        app = host.launch(ExecSpec(class_name, (), record_policy=True))
        assert app.wait_for(10) == 0
        slice_ = recorder_for(host.vm).slice_for(app.app_id)
        assert slice_ is not None
        assert not slice_.active  # the exit hook froze it
        records = slice_.snapshot()
        assert any("/etc/motd" in (r.get("target") or "")
                   for r in records)

    def test_recorded_checks_carry_structure_and_stack(self, host,
                                                       register_app):
        def main(jclass, ctx, args):
            read_text(ctx, "/etc/motd")
            return 0

        class_name = register_app("Structured", main)
        app = host.launch(ExecSpec(class_name, (), record_policy=True))
        assert app.wait_for(10) == 0
        records = recorder_for(host.vm).slice_for(app.app_id).snapshot()
        motd = [r for r in records
                if r.get("target") == "/etc/motd" and r["granted"]]
        assert motd
        record = motd[-1]
        assert record["ptype"] == "FilePermission"
        assert record["actions"] == "read"
        assert record["phase"] == "init"
        # The walk's protection-domain context was captured: the app's
        # own (URL-named) domain is on it.
        assert any("structured" in name for name in record["stack"])

    def test_parallel_recordings_never_interleave(self, host,
                                                  register_app):
        """Two applications learning at once: each slice holds only its
        own application's records (satellite c)."""
        def main(jclass, ctx, args):
            for index in range(20):
                write_text(ctx, f"/tmp/{args[0]}-{index}.txt", "x")
            return 0

        class_a = register_app("Parallela", main)
        class_b = register_app("Parallelb", main)
        app_a = host.launch(ExecSpec(class_a, ("a",), record_policy=True))
        app_b = host.launch(ExecSpec(class_b, ("b",), record_policy=True))
        assert app_a.wait_for(10) == 0
        assert app_b.wait_for(10) == 0
        recorder = recorder_for(host.vm)
        for app in (app_a, app_b):
            records = recorder.slice_for(app.app_id).snapshot()
            assert records
            assert all(r["app_id"] == app.app_id for r in records)

    def test_slice_capacity_counts_drops(self, host, register_app,
                                         monkeypatch):
        monkeypatch.setattr("repro.policytool.recorder.SLICE_CAPACITY", 5)

        def main(jclass, ctx, args):
            for index in range(10):
                read_text(ctx, "/etc/motd")
            return 0

        class_name = register_app("Chatty", main)
        app = host.launch(ExecSpec(class_name, (), record_policy=True))
        assert app.wait_for(10) == 0
        slice_ = recorder_for(host.vm).slice_for(app.app_id)
        assert len(slice_) == 5
        assert slice_.dropped > 0

    def test_policygen_can_stop_and_freeze(self, host, register_app):
        import time

        def main(jclass, ctx, args):
            deadline = time.monotonic() + 5
            from repro.core.context import current_application
            while (current_application().policy_recording
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            return 0

        class_name = register_app("Stoppable", main)
        app = host.launch(ExecSpec(class_name, (), record_policy=True))
        recorder = recorder_for(host.vm)
        assert recorder.is_recording(app.app_id)
        recorder.stop(app)
        assert not recorder.is_recording(app.app_id)
        assert app.wait_for(10) == 0


class TestAuditRetention:
    def test_set_capacity_keeps_newest(self):
        log = AuditLog(capacity=10)
        for index in range(10):
            log.record(check="c", permission=f"p{index}", granted=True)
        log.set_capacity(3)
        assert log.capacity == 3
        assert [r["permission"] for r in log.records()] == \
            ["p7", "p8", "p9"]

    def test_overwrites_are_counted_and_mirrored(self):
        class Counter:
            value = 0

            def inc(self, amount=1):
                self.value += amount

        log = AuditLog(capacity=2)
        counter = Counter()
        log.bind_drop_counter(counter)
        for index in range(5):
            log.record(check="c", permission=f"p{index}", granted=True)
        assert len(log) == 2
        assert log.dropped == 3
        assert counter.value == 3

    def test_vm_mirrors_drops_into_metrics(self, host):
        audit = host.vm.telemetry.audit
        audit.set_capacity(2)
        baseline = audit.dropped
        for index in range(4):
            audit.record(check="c", permission=f"p{index}", granted=True)
        assert audit.dropped - baseline >= 2
        assert host.vm.telemetry.metrics.total(
            "security.audit.dropped") >= 2

    def test_jsonl_stream_hook(self):
        log = AuditLog(capacity=4)
        sink = io.StringIO()
        hook = log.stream_jsonl(sink)
        log.record(check="c", permission="p1", granted=True)
        log.record(check="c", permission="p2", granted=False)
        log.unstream(hook)
        log.record(check="c", permission="p3", granted=True)
        lines = [json.loads(line) for line in
                 sink.getvalue().strip().splitlines()]
        assert [entry["permission"] for entry in lines] == ["p1", "p2"]
        assert hook.written == 2

    def test_listener_exceptions_are_swallowed(self):
        log = AuditLog(capacity=4)

        def bomb(entry):
            raise RuntimeError("listener bug")

        log.add_listener(bomb)
        record = log.record(check="c", permission="p", granted=True)
        assert record["permission"] == "p"


class TestManagerNormalization:
    def test_subclass_and_qualified_labels_fold(self):
        assert normalize_manager("MySystemSecurityManager") == \
            "SystemSecurityManager"
        assert normalize_manager(
            "repro.security.manager.SecurityManager") == "SecurityManager"
        assert normalize_manager("SystemSecurityManager") == \
            "SystemSecurityManager"
        assert normalize_manager("WeirdThing") == "WeirdThing"
        assert normalize_manager(None) is None

    def test_live_trail_uses_the_two_real_managers_only(self, host,
                                                        register_app):
        """Satellite b: every record the kernel writes names one of the
        two manager classes of Section 5.6 — no free-form drift."""
        from repro.jvm.errors import IOException, SecurityException

        def main(jclass, ctx, args):
            read_text(ctx, "/etc/motd")
            try:
                read_text(ctx, "/home/alice/notes.txt")
            except (IOException, SecurityException):
                pass
            return 0

        bob = host.vm.user_database.lookup("bob")
        app = host.exec(register_app("Mixed", main), [], user=bob,
                        name="mixed")
        assert app.wait_for(10) == 0
        records = host.vm.telemetry.audit.records(app_id=app.app_id)
        assert records
        managers = {r["manager"] for r in records}
        assert managers <= set(KNOWN_MANAGERS)

    def test_record_normalizes_on_write(self):
        log = AuditLog(capacity=4)
        entry = log.record(check="c", permission="p", granted=True,
                           manager="CustomSystemSecurityManager")
        assert entry["manager"] == "SystemSecurityManager"


class TestSliceBasics:
    def test_frozen_slice_ignores_appends(self, host, register_app):
        def main(jclass, ctx, args):
            return 0

        class_name = register_app("Frozen", main)
        app = host.launch(ExecSpec(class_name, (), record_policy=True))
        assert app.wait_for(10) == 0
        slice_ = recorder_for(host.vm).slice_for(app.app_id)
        count = len(slice_)
        slice_.append({"app_id": app.app_id, "granted": True})
        assert len(slice_) == count
        assert isinstance(slice_, RecordingSlice)
