"""Execution-state MAC: phase-conditioned grants in the policy walk.

Phases only advance (``init`` → ``steady`` → ``shutdown``), so a
phase-conditioned grant is a privilege an application can *drop* but
never regain — TOMOYO-style state-dependent access control layered on
the paper's Section 5.3 policy engine.
"""

import pytest

from repro.core.context import current_application
from repro.jvm.errors import (
    IllegalArgumentException,
    IllegalStateException,
    SecurityException,
)
from repro.security import cache
from repro.security.permissions import FilePermission
from repro.security.policy import (
    PHASE_INIT,
    PHASE_SHUTDOWN,
    PHASE_STEADY,
    PHASES,
    parse_policy,
)

pytestmark = pytest.mark.policy

PHASED_TEXT = """
grant codeBase "file:/usr/local/java/apps/staged/*", phase "init" {
    permission FilePermission "/zone/bootstrap.cfg", "read";
};
grant codeBase "file:/usr/local/java/apps/staged/*" {
    permission FilePermission "/zone/data.txt", "read";
};
"""


class TestPhaseGrammar:
    def test_parse_render_round_trip(self):
        policy = parse_policy(PHASED_TEXT)
        assert policy.phase_sensitive
        phases = [entry.phase for entry in policy.entries()]
        assert phases == ["init", None]
        reparsed = parse_policy(policy.render())
        assert [entry.phase for entry in reparsed.entries()] == \
            ["init", None]

    def test_phase_selector_fails_closed(self):
        """A phase-conditioned grant matches only its phase — never the
        phaseless (host-thread) context."""
        policy = parse_policy(PHASED_TEXT)
        from repro.security.codesource import CodeSource
        source = CodeSource("file:/usr/local/java/apps/staged/Staged.class")
        conditional = FilePermission("/zone/bootstrap.cfg", "read")
        unconditional = FilePermission("/zone/data.txt", "read")
        assert policy.permissions_for_code_source(
            source, "init").implies(conditional)
        assert not policy.permissions_for_code_source(
            source, "steady").implies(conditional)
        assert not policy.permissions_for_code_source(
            source, None).implies(conditional)
        # The unconditional grant holds in every phase.
        for phase in (None, "init", "steady", "shutdown"):
            assert policy.permissions_for_code_source(
                source, phase).implies(unconditional)

    def test_phase_free_policy_ignores_phase_argument(self):
        policy = parse_policy(
            'grant { permission FilePermission "/x", "read"; };')
        assert not policy.phase_sensitive
        assert policy.permissions_for_code_source(None, "steady").implies(
            FilePermission("/x", "read"))


class TestLifecycle:
    def test_launch_starts_in_init_and_exit_reaches_shutdown(
            self, host, register_app):
        def main(jclass, ctx, args):
            ctx.stdout.println(current_application().phase)
            return 0

        app = host.exec(register_app("Phaseprobe", main), [],
                        name="phaseprobe")
        assert app.wait_for(10) == 0
        assert app.phase == PHASE_SHUTDOWN

    def test_phases_only_advance(self, host, register_app):
        def main(jclass, ctx, args):
            app = current_application()
            assert app.advance_phase(PHASE_STEADY) is True
            assert app.advance_phase(PHASE_STEADY) is False  # idempotent
            try:
                app.advance_phase(PHASE_INIT)
            except IllegalStateException:
                return 0
            return 1

        app = host.exec(register_app("Forward", main), [], name="forward")
        assert app.wait_for(10) == 0

    def test_unknown_phase_rejected(self, host, register_app):
        def main(jclass, ctx, args):
            try:
                current_application().advance_phase("turbo")
            except IllegalArgumentException:
                return 0
            return 1

        app = host.exec(register_app("Turbo", main), [], name="turbo")
        assert app.wait_for(10) == 0

    def test_execspec_phase_override(self, host, register_app, capture):
        from repro.core.execspec import ExecSpec

        def main(jclass, ctx, args):
            ctx.stdout.println(current_application().phase)
            return 0

        out = capture()
        class_name = register_app("Presteady", main)
        app = host.launch(ExecSpec(class_name, (), stdout=out.stream,
                                   phase=PHASE_STEADY))
        assert app.wait_for(10) == 0
        assert out.text.strip() == PHASE_STEADY
        assert PHASE_STEADY in PHASES

    def test_stranger_needs_standing_to_advance(self, host, register_app):
        """Another user's application cannot push our phase forward
        without ``modifyApplication`` — the ``destroy`` rule."""
        import time

        def victim_main(jclass, ctx, args):
            deadline = time.monotonic() + 5
            while (current_application().phase == PHASE_INIT
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            return 0

        bob = host.vm.user_database.lookup("bob")
        victim = host.exec(register_app("Victim", victim_main), [],
                           name="victim")

        def attacker_main(jclass, ctx, args):
            try:
                victim.advance_phase(PHASE_STEADY)
            except SecurityException:
                victim._advance_phase(PHASE_STEADY)  # unblock the victim
                return 0
            return 1

        attacker = host.exec(register_app("Attacker", attacker_main), [],
                             user=bob, name="attacker")
        assert attacker.wait_for(10) == 0
        assert victim.wait_for(10) == 0


class TestPhaseEnforcement:
    def test_grant_dropped_on_phase_advance(self, host, register_app):
        """The tentpole behaviour: an init-only grant works during init
        and is gone the moment the application advances — enforced inside
        the cached check_permission walk."""
        host.vm.policy.add_grant(
            [FilePermission("/zone/bootstrap.cfg", "read")],
            code_base="file:/usr/local/java/apps/staged/*",
            phase=PHASE_INIT)
        probe = FilePermission("/zone/bootstrap.cfg", "read")

        def main(jclass, ctx, args):
            sm = ctx.vm.security_manager
            sm.check_permission(probe)  # init: granted
            current_application().advance_phase(PHASE_STEADY)
            try:
                sm.check_permission(probe)
            except SecurityException:
                return 0
            return 1

        app = host.exec(register_app("Staged", main), [], name="staged")
        assert app.wait_for(10) == 0

    def test_phase_transition_never_bumps_the_epoch(self, host,
                                                    register_app):
        """The PR-5 fast path survives: advancing a phase costs no global
        invalidation — per-phase memos coexist instead."""
        policy = host.vm.policy
        policy.add_grant(
            [FilePermission("/zone/epoch.cfg", "read")],
            code_base="file:/usr/local/java/apps/epochy/*",
            phase=PHASE_INIT)
        epoch_before = policy.epoch

        def main(jclass, ctx, args):
            sm = ctx.vm.security_manager
            sm.check_permission(FilePermission("/zone/epoch.cfg", "read"))
            current_application().advance_phase(PHASE_STEADY)
            current_application().advance_phase(PHASE_SHUTDOWN)
            return 0

        app = host.exec(register_app("Epochy", main), [], name="epochy")
        assert app.wait_for(10) == 0
        assert policy.epoch == epoch_before

    def test_phase_aware_flag_is_sticky(self, host):
        host.vm.policy.add_grant(
            [FilePermission("/zone/sticky", "read")],
            code_base="file:/opt/sticky/*", phase=PHASE_STEADY)
        assert cache.PHASE_AWARE is True
        assert host.vm.policy.phase_sensitive
