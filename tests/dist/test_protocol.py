"""Unit tests for the distributed-execution wire protocol."""

import base64

import pytest
from hypothesis import given, settings, strategies as st

from repro.dist.protocol import (
    MAX_FRAME_PAYLOAD,
    TAG_JSON,
    TAG_STDERR,
    TAG_STDOUT,
    FrameChannel,
    FrameOutputStream,
    encode_binary_frame,
    recv_frame,
    recv_frame_auto,
    send_binary_frame,
    send_frame,
)
from repro.io.streams import (
    BufferedInputStream,
    ByteArrayInputStream,
    ByteArrayOutputStream,
)
from repro.jvm.errors import IOException


def roundtrip(*frames):
    sink = ByteArrayOutputStream()
    for frame in frames:
        send_frame(sink, frame)
    source = ByteArrayInputStream(sink.to_bytes())
    received = []
    while True:
        frame = recv_frame(source)
        if frame is None:
            return received
        received.append(frame)


class TestFrames:
    def test_single_frame(self):
        assert roundtrip({"t": "x", "code": 0}) == [{"t": "x", "code": 0}]

    def test_multiple_frames_in_order(self):
        frames = [{"t": "o", "d": "one"}, {"t": "o", "d": "two"},
                  {"t": "x", "code": 3}]
        assert roundtrip(*frames) == frames

    def test_newlines_inside_payload_survive(self):
        frame = {"t": "o", "d": "line1\nline2\n"}
        assert roundtrip(frame) == [frame]

    def test_unicode_payload(self):
        frame = {"t": "o", "d": "héllo — ünïcode"}
        assert roundtrip(frame) == [frame]

    def test_eof_returns_none(self):
        assert recv_frame(ByteArrayInputStream(b"")) is None

    def test_malformed_json_raises(self):
        with pytest.raises(IOException):
            recv_frame(ByteArrayInputStream(b"not json\n"))

    def test_non_object_frame_raises(self):
        with pytest.raises(IOException):
            recv_frame(ByteArrayInputStream(b"[1,2,3]\n"))

    def test_base64_escape_restores_exact_bytes(self):
        # The JSON fallback for non-UTF-8 stdout: "b" wins over lossy "d".
        raw = b"\xff\xfe binary \x00 tail"
        escaped = base64.b64encode(raw).decode("ascii")
        sink = ByteArrayOutputStream()
        send_frame(sink, {"t": "o",
                          "d": raw.decode("utf-8", errors="replace"),
                          "b": escaped})
        frame = recv_frame(ByteArrayInputStream(sink.to_bytes()))
        assert frame["d"] == raw

    def test_bad_base64_escape_raises(self):
        sink = ByteArrayOutputStream()
        sink.write(b'{"t":"o","d":"x","b":"%%%not-base64"}\n')
        with pytest.raises(IOException):
            recv_frame(ByteArrayInputStream(sink.to_bytes()))


def recv_auto(data: bytes):
    return recv_frame_auto(BufferedInputStream(ByteArrayInputStream(data)))


class TestBinaryFrames:
    def test_stdout_frame_carries_raw_bytes(self):
        payload = b"\x00\xff raw \n bytes \xfe"
        encoded = encode_binary_frame({"t": "o", "d": payload})
        assert encoded[0] == TAG_STDOUT
        frame = recv_auto(encoded)
        assert frame == {"t": "o", "d": payload, "_binary": True}

    def test_stderr_frame_tag(self):
        encoded = encode_binary_frame({"t": "e", "d": b"oops"})
        assert encoded[0] == TAG_STDERR
        assert recv_auto(encoded)["t"] == "e"

    def test_control_frames_travel_as_json_payload(self):
        encoded = encode_binary_frame({"t": "x", "code": 7})
        assert encoded[0] == TAG_JSON
        frame = recv_auto(encoded)
        assert frame == {"t": "x", "code": 7, "_binary": True}

    def test_back_to_back_frames(self):
        sink = ByteArrayOutputStream()
        send_binary_frame(sink, {"t": "o", "d": b"one\n"})
        send_binary_frame(sink, {"t": "e", "d": b"two"})
        send_binary_frame(sink, {"t": "x", "code": 0})
        source = BufferedInputStream(ByteArrayInputStream(sink.to_bytes()))
        kinds = []
        while True:
            frame = recv_frame_auto(source)
            if frame is None:
                break
            kinds.append(frame["t"])
        assert kinds == ["o", "e", "x"]

    def test_sniffing_mixes_json_lines_and_binary(self):
        # One connection, both encodings: the first byte decides.
        sink = ByteArrayOutputStream()
        send_frame(sink, {"t": "o", "d": "json line"})
        send_binary_frame(sink, {"t": "o", "d": b"binary"})
        send_frame(sink, {"t": "x", "code": 0})
        source = BufferedInputStream(ByteArrayInputStream(sink.to_bytes()))
        first = recv_frame_auto(source)
        second = recv_frame_auto(source)
        third = recv_frame_auto(source)
        assert first == {"t": "o", "d": "json line"}
        assert second == {"t": "o", "d": b"binary", "_binary": True}
        assert third["t"] == "x"

    def test_eof_returns_none(self):
        assert recv_auto(b"") is None

    def test_unknown_tag_raises(self):
        with pytest.raises(IOException, match="unknown tag"):
            recv_auto(b"\x42\x00\x00\x00\x01x")

    def test_oversized_length_raises(self):
        import struct
        header = struct.pack(">BI", TAG_STDOUT, MAX_FRAME_PAYLOAD + 1)
        with pytest.raises(IOException, match="payload"):
            recv_auto(header)

    def test_truncated_frame_raises(self):
        encoded = encode_binary_frame({"t": "o", "d": b"full payload"})
        with pytest.raises(IOException):
            recv_auto(encoded[:-3])


class TestFrameChannel:
    def make_pair(self, binary=False):
        sink = ByteArrayOutputStream()
        channel = FrameChannel(None, sink, binary=binary)
        return sink, channel

    def test_json_mode_sends_lines(self):
        sink, channel = self.make_pair(binary=False)
        channel.send_data("o", b"hello")
        assert sink.to_bytes().startswith(b"{")

    def test_binary_mode_sends_frames(self):
        sink, channel = self.make_pair(binary=True)
        channel.send_data("o", b"hello")
        assert sink.to_bytes()[0] == TAG_STDOUT

    def test_json_mode_escapes_non_utf8(self):
        sink, channel = self.make_pair(binary=False)
        raw = b"\xff\x00 not utf-8"
        channel.send_data("o", raw)
        frame = recv_frame(ByteArrayInputStream(sink.to_bytes()))
        assert frame["d"] == raw  # restored via the "b" escape

    def test_recv_flips_peer_binary(self):
        sink = ByteArrayOutputStream()
        send_binary_frame(sink, {"t": "x", "code": 0})
        channel = FrameChannel(ByteArrayInputStream(sink.to_bytes()), None)
        assert not channel.peer_binary
        frame = channel.recv()
        assert frame == {"t": "x", "code": 0}  # _binary popped
        assert channel.peer_binary

    def test_json_recv_leaves_peer_binary_false(self):
        sink = ByteArrayOutputStream()
        send_frame(sink, {"t": "x", "code": 0})
        channel = FrameChannel(ByteArrayInputStream(sink.to_bytes()), None)
        channel.recv()
        assert not channel.peer_binary

    def _drain_frames(self, payload: bytes) -> list:
        channel = FrameChannel(ByteArrayInputStream(payload), None)
        frames = []
        while True:
            frame = channel.recv()
            if frame is None:
                return frames
            frames.append(frame)

    def test_send_many_json_round_trips_in_order(self):
        sink, channel = self.make_pair(binary=False)
        channel.send_many([{"t": "o", "d": "first"},
                           {"t": "e", "d": "second"},
                           {"t": "x", "code": 3}])
        assert self._drain_frames(sink.to_bytes()) == [
            {"t": "o", "d": "first"},
            {"t": "e", "d": "second"},
            {"t": "x", "code": 3}]

    def test_send_many_binary_round_trips_in_order(self):
        sink, channel = self.make_pair(binary=True)
        channel.send_many([{"t": "o", "d": b"raw\x00bytes"},
                           {"t": "hello", "proto": 2}])
        assert self._drain_frames(sink.to_bytes()) == [
            {"t": "o", "d": b"raw\x00bytes"},
            {"t": "hello", "proto": 2}]

    def test_send_many_matches_sequential_sends_on_the_wire(self):
        frames = [{"t": "o", "d": b"a" * 10}, {"t": "e", "d": b"b"},
                  {"t": "x", "code": 0}]
        vector_sink, vector_channel = self.make_pair(binary=True)
        vector_channel.send_many(frames)
        seq_sink, seq_channel = self.make_pair(binary=True)
        for frame in frames:
            seq_channel.send(frame)
        assert vector_sink.to_bytes() == seq_sink.to_bytes()

    def test_send_many_empty_vector_is_a_noop(self):
        sink, channel = self.make_pair(binary=True)
        channel.send_many([])
        assert sink.to_bytes() == b""

    def test_send_many_interleaves_atomically_with_send(self):
        """Concurrent send/send_many never split a frame on the wire."""
        from repro.io.streams import make_pipe
        from repro.jvm.threads import JThread, ThreadGroup

        root = ThreadGroup(None, "system")
        reader, writer = make_pipe()
        channel = FrameChannel(None, writer, binary=True)

        def burst():
            for _ in range(50):
                channel.send_many(
                    [{"t": "o", "d": b"vec"}] * 4, flush=False)
            channel.flush()

        def single():
            for _ in range(200):
                channel.send({"t": "e", "d": b"one"}, flush=False)
            channel.flush()

        threads = [JThread(target=burst, group=root),
                   JThread(target=single, group=root)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10)
        channel.flush()
        writer.close()
        received = FrameChannel(reader, None)
        counts = {"o": 0, "e": 0}
        while True:
            frame = received.recv()
            if frame is None:
                break
            counts[frame["t"]] += 1
            assert frame["d"] in (b"vec", b"one")
        assert counts == {"o": 200, "e": 200}


class TestFrameOutputStream:
    def test_line_writes_become_one_frame_each(self):
        transport = ByteArrayOutputStream()
        stream = FrameOutputStream(transport, "o")
        stream.write(b"line one\n")
        stream.write(b"line two\n")
        source = ByteArrayInputStream(transport.to_bytes())
        assert recv_frame(source) == {"t": "o", "d": "line one\n"}
        assert recv_frame(source) == {"t": "o", "d": "line two\n"}

    def test_small_writes_coalesce_until_flush(self):
        transport = ByteArrayOutputStream()
        stream = FrameOutputStream(transport, "o")
        stream.write(b"payload ")
        stream.write(b"bytes")
        assert transport.to_bytes() == b""  # nothing on the wire yet
        stream.flush()
        source = ByteArrayInputStream(transport.to_bytes())
        assert recv_frame(source) == {"t": "o", "d": "payload bytes"}
        assert recv_frame(source) is None  # one frame, not two

    def test_byte_at_a_time_costs_one_frame_per_line(self):
        transport = ByteArrayOutputStream()
        stream = FrameOutputStream(transport, "o")
        for byte in b"abc\n":
            stream.write(bytes([byte]))
        source = ByteArrayInputStream(transport.to_bytes())
        assert recv_frame(source) == {"t": "o", "d": "abc\n"}
        assert recv_frame(source) is None

    def test_size_threshold_forces_emit(self):
        transport = ByteArrayOutputStream()
        stream = FrameOutputStream(transport, "o", coalesce_bytes=8)
        stream.write(b"0123456789")  # >= threshold, no newline
        frame = recv_frame(ByteArrayInputStream(transport.to_bytes()))
        assert frame == {"t": "o", "d": "0123456789"}

    def test_stderr_kind(self):
        transport = ByteArrayOutputStream()
        stream = FrameOutputStream(transport, "e")
        stream.write(b"oops")
        stream.flush()
        assert recv_frame(
            ByteArrayInputStream(transport.to_bytes())) == \
            {"t": "e", "d": "oops"}

    def test_close_flushes_but_does_not_close_transport(self):
        transport = ByteArrayOutputStream()
        stream = FrameOutputStream(transport)
        stream.write(b"tail")
        stream.close()
        assert not transport.closed  # shared with the exit frame
        frame = recv_frame(ByteArrayInputStream(transport.to_bytes()))
        assert frame == {"t": "o", "d": "tail"}

    def test_print_stream_over_frames(self):
        from repro.io.streams import PrintStream
        transport = ByteArrayOutputStream()
        printer = PrintStream(FrameOutputStream(transport))
        printer.println("hello")
        frame = recv_frame(ByteArrayInputStream(transport.to_bytes()))
        assert frame == {"t": "o", "d": "hello\n"}

    def test_binary_channel_frames_raw_bytes(self):
        sink = ByteArrayOutputStream()
        channel = FrameChannel(None, sink, binary=True)
        stream = FrameOutputStream(channel, "o")
        raw = b"\xde\xad\xbe\xef"
        stream.write(raw)
        stream.flush()
        frame = recv_auto(sink.to_bytes())
        assert frame["d"] == raw


json_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=60)


@given(frames=st.lists(
    st.fixed_dictionaries({"t": st.sampled_from(["o", "e"]),
                           "d": json_text}), max_size=10))
@settings(max_examples=80, deadline=None)
def test_arbitrary_frame_sequences_roundtrip(frames):
    assert roundtrip(*frames) == frames


@given(payload=st.binary(min_size=1, max_size=120))
@settings(max_examples=80, deadline=None)
def test_frame_stream_is_lossless_for_utf8_payloads(payload):
    text = payload.decode("utf-8", errors="replace")
    transport = ByteArrayOutputStream()
    stream = FrameOutputStream(transport)
    stream.write(text.encode("utf-8"))
    stream.flush()
    frame = recv_frame(ByteArrayInputStream(transport.to_bytes()))
    assert frame["d"] == text


@given(payload=st.binary(min_size=1, max_size=200))
@settings(max_examples=80, deadline=None)
def test_binary_framing_is_lossless_for_arbitrary_bytes(payload):
    sink = ByteArrayOutputStream()
    channel = FrameChannel(None, sink, binary=True)
    stream = FrameOutputStream(channel)
    stream.write(payload)
    stream.flush()
    frame = recv_auto(sink.to_bytes())
    assert frame["d"] == payload


@given(payload=st.binary(min_size=1, max_size=200))
@settings(max_examples=80, deadline=None)
def test_json_fallback_is_lossless_for_arbitrary_bytes(payload):
    # Even protocol-1 framing round-trips bytes now, via the "b" escape.
    sink = ByteArrayOutputStream()
    channel = FrameChannel(None, sink, binary=False)
    channel.send_data("o", payload)
    frame = recv_frame(ByteArrayInputStream(sink.to_bytes()))
    got = frame["d"]
    if isinstance(got, str):
        got = got.encode("utf-8")
    assert got == payload
