"""Unit tests for the distributed-execution wire protocol."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dist.protocol import FrameOutputStream, recv_frame, send_frame
from repro.io.streams import (
    ByteArrayInputStream,
    ByteArrayOutputStream,
)
from repro.jvm.errors import IOException


def roundtrip(*frames):
    sink = ByteArrayOutputStream()
    for frame in frames:
        send_frame(sink, frame)
    source = ByteArrayInputStream(sink.to_bytes())
    received = []
    while True:
        frame = recv_frame(source)
        if frame is None:
            return received
        received.append(frame)


class TestFrames:
    def test_single_frame(self):
        assert roundtrip({"t": "x", "code": 0}) == [{"t": "x", "code": 0}]

    def test_multiple_frames_in_order(self):
        frames = [{"t": "o", "d": "one"}, {"t": "o", "d": "two"},
                  {"t": "x", "code": 3}]
        assert roundtrip(*frames) == frames

    def test_newlines_inside_payload_survive(self):
        frame = {"t": "o", "d": "line1\nline2\n"}
        assert roundtrip(frame) == [frame]

    def test_unicode_payload(self):
        frame = {"t": "o", "d": "héllo — ünïcode"}
        assert roundtrip(frame) == [frame]

    def test_eof_returns_none(self):
        assert recv_frame(ByteArrayInputStream(b"")) is None

    def test_malformed_json_raises(self):
        with pytest.raises(IOException):
            recv_frame(ByteArrayInputStream(b"not json\n"))

    def test_non_object_frame_raises(self):
        with pytest.raises(IOException):
            recv_frame(ByteArrayInputStream(b"[1,2,3]\n"))


class TestFrameOutputStream:
    def test_writes_become_o_frames(self):
        transport = ByteArrayOutputStream()
        stream = FrameOutputStream(transport, "o")
        stream.write(b"payload ")
        stream.write(b"bytes")
        source = ByteArrayInputStream(transport.to_bytes())
        assert recv_frame(source) == {"t": "o", "d": "payload "}
        assert recv_frame(source) == {"t": "o", "d": "bytes"}

    def test_stderr_kind(self):
        transport = ByteArrayOutputStream()
        FrameOutputStream(transport, "e").write(b"oops")
        assert recv_frame(
            ByteArrayInputStream(transport.to_bytes())) == \
            {"t": "e", "d": "oops"}

    def test_close_does_not_close_transport(self):
        transport = ByteArrayOutputStream()
        stream = FrameOutputStream(transport)
        stream.close()
        assert not transport.closed  # shared with the exit frame

    def test_print_stream_over_frames(self):
        from repro.io.streams import PrintStream
        transport = ByteArrayOutputStream()
        printer = PrintStream(FrameOutputStream(transport))
        printer.println("hello")
        frame = recv_frame(ByteArrayInputStream(transport.to_bytes()))
        assert frame == {"t": "o", "d": "hello\n"}


json_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=60)


@given(frames=st.lists(
    st.fixed_dictionaries({"t": st.sampled_from(["o", "e"]),
                           "d": json_text}), max_size=10))
@settings(max_examples=80, deadline=None)
def test_arbitrary_frame_sequences_roundtrip(frames):
    assert roundtrip(*frames) == frames


@given(payload=st.binary(max_size=120))
@settings(max_examples=80, deadline=None)
def test_frame_stream_is_lossless_for_utf8_payloads(payload):
    text = payload.decode("utf-8", errors="replace")
    transport = ByteArrayOutputStream()
    FrameOutputStream(transport).write(text.encode("utf-8"))
    frame = recv_frame(ByteArrayInputStream(transport.to_bytes()))
    assert frame["d"] == text
