"""Distributed applications: threads of other JVMs (Section 8 future work).

Two multi-processing JVMs on two simulated hosts share one network fabric;
JVM B runs the rexec daemon, JVM A launches remote work on it.
"""

import time

import pytest

from repro.core.launcher import MultiProcVM
from repro.dist.client import (
    DistributedApplication,
    RemoteApplication,
    remote_exec,
)
from repro.io.streams import ByteArrayOutputStream, PrintStream
from repro.jvm.errors import RemoteException, SecurityException
from repro.net.fabric import NetworkFabric
from repro.unixfs.machine import standard_process

HOST_A = "vm-a.example.com"
HOST_B = "vm-b.example.com"
PORT = 7100


@pytest.fixture
def cluster():
    """Two booted MPJVMs on one fabric; B runs the rexec daemon."""
    fabric = NetworkFabric()
    mvm_a = MultiProcVM.boot(
        os_context=standard_process(hostname=HOST_A), network=fabric)
    mvm_b = MultiProcVM.boot(
        os_context=standard_process(hostname=HOST_B), network=fabric)
    with mvm_b.host_session():
        daemon = mvm_b.exec("dist.RexecDaemon", [str(PORT)])
    deadline = time.monotonic() + 5
    while time.monotonic() < deadline:
        if fabric.resolve(HOST_B)._listener(PORT) is not None:
            break
        time.sleep(0.01)
    assert fabric.resolve(HOST_B)._listener(PORT) is not None
    yield mvm_a, mvm_b, daemon
    mvm_a.shutdown()
    mvm_b.shutdown()


class TestRemoteExec:
    def test_remote_command_runs_on_other_jvm(self, cluster):
        mvm_a, mvm_b, __ = cluster
        with mvm_a.host_session():
            ctx = mvm_a.initial.context()
            remote = remote_exec(ctx, HOST_B, "tools.Echo",
                                 ["hello", "from", "afar"],
                                 user="alice", password="wonderland")
            assert remote.wait_for(10) == 0
        assert remote.output_text() == "hello from afar\n"

    def test_remote_application_runs_as_authenticated_user(self, cluster):
        mvm_a, mvm_b, __ = cluster
        with mvm_a.host_session():
            ctx = mvm_a.initial.context()
            remote = remote_exec(ctx, HOST_B, "tools.Whoami", [],
                                 user="bob", password="builder")
            assert remote.wait_for(10) == 0
        assert remote.output_text().strip() == "bob"

    def test_remote_identity_controls_remote_files(self, cluster):
        """User-based access control holds *on the remote JVM*."""
        mvm_a, mvm_b, __ = cluster
        with mvm_a.host_session():
            ctx = mvm_a.initial.context()
            allowed = remote_exec(ctx, HOST_B, "tools.Cat",
                                  ["/home/alice/notes.txt"],
                                  user="alice", password="wonderland")
            assert allowed.wait_for(10) == 0
            denied = remote_exec(ctx, HOST_B, "tools.Cat",
                                 ["/home/bob/todo.txt"],
                                 user="alice", password="wonderland")
            assert denied.wait_for(10) == 1
        assert "private notes" in allowed.output_text()
        assert "AccessControlException" in denied.output_text()

    def test_bad_credentials_rejected(self, cluster):
        mvm_a, __, ___ = cluster
        with mvm_a.host_session():
            ctx = mvm_a.initial.context()
            remote = remote_exec(ctx, HOST_B, "tools.Echo", ["x"],
                                 user="alice", password="wrong")
            with pytest.raises(RemoteException):
                remote.wait_for(10)

    def test_unknown_class_reported(self, cluster):
        mvm_a, __, ___ = cluster
        with mvm_a.host_session():
            ctx = mvm_a.initial.context()
            remote = remote_exec(ctx, HOST_B, "no.Such", [],
                                 user="alice", password="wonderland")
            with pytest.raises(RemoteException):
                remote.wait_for(10)

    def test_remote_exit_code_propagates(self, cluster):
        mvm_a, __, ___ = cluster
        with mvm_a.host_session():
            ctx = mvm_a.initial.context()
            remote = remote_exec(ctx, HOST_B, "tools.False", [],
                                 user="alice", password="wonderland")
            assert remote.wait_for(10) == 1

    def test_destroy_reaches_the_remote_jvm(self, cluster):
        mvm_a, mvm_b, __ = cluster
        with mvm_a.host_session():
            ctx = mvm_a.initial.context()
            remote = remote_exec(ctx, HOST_B, "tools.Sleep", ["30"],
                                 user="alice", password="wonderland")
            assert remote.wait_for(0.3) is None  # still running over there
            remote.destroy()
            code = remote.wait_for(10)
        assert code is not None and code != 0  # killed


class TestDistributedApplication:
    def test_threads_span_two_jvms(self, cluster):
        """The §8 sentence, literally: one application notion covering a
        local part and a remote part."""
        mvm_a, mvm_b, __ = cluster
        with mvm_a.host_session():
            ctx = mvm_a.initial.context()
            local = mvm_a.exec("tools.Sleep", ["30"])
            distributed = DistributedApplication(local=local)
            distributed.add_remote(remote_exec(
                ctx, HOST_B, "tools.Sleep", ["30"],
                user="alice", password="wonderland"))
            assert not distributed.terminated
            distributed.destroy_all()
            codes = distributed.wait_all(10)
        assert len(codes) == 2
        assert all(code is not None for code in codes)
        assert distributed.terminated

    def test_collective_wait_collects_all_codes(self, cluster):
        mvm_a, __, ___ = cluster
        with mvm_a.host_session():
            ctx = mvm_a.initial.context()
            distributed = DistributedApplication(
                local=mvm_a.exec("tools.True", []))
            distributed.add_remote(remote_exec(
                ctx, HOST_B, "tools.False", [],
                user="alice", password="wonderland"))
            codes = distributed.wait_all(10)
        assert codes == [0, 1]


class TestRshTool:
    def test_rsh_from_shell(self, cluster):
        mvm_a, __, ___ = cluster
        with mvm_a.host_session():
            sink = ByteArrayOutputStream()
            alice = mvm_a.vm.user_database.lookup("alice")
            shell = mvm_a.exec(
                "tools.Shell",
                ["-c", "setprop rsh.password wonderland",
                 f"rsh {HOST_B} whoami",
                 f"rsh {HOST_B} echo remote says hi"],
                user=alice,
                stdout=PrintStream(sink), stderr=PrintStream(sink))
            assert shell.wait_for(15) == 0
        text = sink.to_text()
        assert "alice" in text
        assert "remote says hi" in text

    def test_rsh_bad_password_fails_cleanly(self, cluster):
        mvm_a, __, ___ = cluster
        with mvm_a.host_session():
            sink = ByteArrayOutputStream()
            alice = mvm_a.vm.user_database.lookup("alice")
            shell = mvm_a.exec(
                "tools.Shell",
                ["-c", "setprop rsh.password nope",
                 f"rsh {HOST_B} whoami", "echo rc=$?"],
                user=alice,
                stdout=PrintStream(sink), stderr=PrintStream(sink))
            assert shell.wait_for(15) == 0
        assert "rsh:" in sink.to_text()
        assert "rc=1" in sink.to_text()

    def test_rsh_usage_error(self, cluster):
        mvm_a, __, ___ = cluster
        with mvm_a.host_session():
            sink = ByteArrayOutputStream()
            shell = mvm_a.exec("tools.Shell", ["-c", "rsh onlyhost"],
                               stdout=PrintStream(sink),
                               stderr=PrintStream(sink))
            # sh -c reports the last command's status: rsh's usage error.
            assert shell.wait_for(15) == 2
        assert "usage:" in sink.to_text()


class TestDaemonRobustness:
    def test_daemon_survives_garbage_connection(self, cluster):
        mvm_a, mvm_b, daemon = cluster
        fabric = mvm_a.vm.network
        endpoint = fabric.connect(HOST_A, HOST_B, PORT)
        endpoint.output.write(b"this is not json\n")
        endpoint.close()
        # The daemon keeps serving proper requests afterwards.
        with mvm_a.host_session():
            ctx = mvm_a.initial.context()
            remote = remote_exec(ctx, HOST_B, "tools.Echo", ["ok"],
                                 user="alice", password="wonderland")
            assert remote.wait_for(10) == 0
        assert daemon.running

    def test_daemon_dies_cleanly_with_its_vm(self, cluster):
        __, mvm_b, daemon = cluster
        daemon.destroy()
        assert daemon.wait_for(10) is not None
        assert daemon.terminated
