"""The transport fast path: pooling, binary framing, cross-version interop.

Same two-JVM setup as ``test_remote_exec`` — these tests pin down the
*new* transport behaviours: connections outlive one exec and come back
from the per-VM pool, remote stdout is byte-exact in both encodings,
small writes coalesce into few frames, and a protocol-2 peer still
interoperates with a JSON-lines (protocol 1) peer in either direction.
"""

import json
import time

import pytest

from repro.core.launcher import MultiProcVM
from repro.dist.client import remote_exec
from repro.dist.pool import pool_for
from repro.jvm.errors import RemoteException, SecurityException
from repro.jvm.threads import JThread
from repro.net.fabric import NetworkFabric
from repro.unixfs.machine import standard_process

from tests.conftest import make_app

HOST_A = "vm-a.example.com"
HOST_B = "vm-b.example.com"
LEGACY_HOST = "legacy.example.com"
PORT = 7100


@pytest.fixture
def pair():
    """Two booted MPJVMs on one fabric; B runs the rexec daemon."""
    fabric = NetworkFabric()
    mvm_a = MultiProcVM.boot(
        os_context=standard_process(hostname=HOST_A), network=fabric)
    mvm_b = MultiProcVM.boot(
        os_context=standard_process(hostname=HOST_B), network=fabric)
    with mvm_b.host_session():
        mvm_b.exec("dist.RexecDaemon", [str(PORT)])
    deadline = time.monotonic() + 5
    while time.monotonic() < deadline:
        if fabric.resolve(HOST_B)._listener(PORT) is not None:
            break
        time.sleep(0.01)
    assert fabric.resolve(HOST_B)._listener(PORT) is not None
    yield mvm_a, mvm_b, fabric
    mvm_a.shutdown()
    mvm_b.shutdown()


def wait_for_idle(pool, count, timeout=5.0):
    """Parking happens on the reader thread; give it a moment."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if pool.stats()["idle"] == count:
            return
        time.sleep(0.01)
    assert pool.stats()["idle"] == count


class TestConnectionPool:
    def test_clean_exit_parks_the_connection(self, pair):
        mvm_a, __, ___ = pair
        with mvm_a.host_session():
            ctx = mvm_a.initial.context()
            remote = remote_exec(ctx, HOST_B, "tools.Echo", ["one"],
                                 user="alice", password="wonderland")
            assert remote.wait_for(10) == 0
            assert remote.transport_binary  # protocol 2 negotiated
            pool = pool_for(mvm_a.vm)
            wait_for_idle(pool, 1)
            assert pool.idle_counts() == {f"{HOST_B}:{PORT}": 1}

    def test_second_exec_is_a_pool_hit(self, pair):
        mvm_a, __, ___ = pair
        with mvm_a.host_session():
            ctx = mvm_a.initial.context()
            pool = pool_for(mvm_a.vm)
            first = remote_exec(ctx, HOST_B, "tools.Echo", ["one"],
                                user="alice", password="wonderland")
            assert first.wait_for(10) == 0
            wait_for_idle(pool, 1)
            hits_before = pool.stats()["hits"]
            second = remote_exec(ctx, HOST_B, "tools.Echo", ["two"],
                                 user="alice", password="wonderland")
            assert second.wait_for(10) == 0
        assert second.output_text() == "two\n"
        assert pool.stats()["hits"] == hits_before + 1

    def test_proto1_connection_is_not_pooled(self, pair):
        mvm_a, __, ___ = pair
        with mvm_a.host_session():
            ctx = mvm_a.initial.context()
            remote = remote_exec(ctx, HOST_B, "tools.Echo", ["legacy"],
                                 user="alice", password="wonderland",
                                 proto=1)
            assert remote.wait_for(10) == 0
        assert remote.output_text() == "legacy\n"
        assert not remote.transport_binary  # daemon answered in JSON lines
        assert pool_for(mvm_a.vm).stats()["idle"] == 0

    def test_node_death_invalidates_idle_channels(self, pair):
        mvm_a, mvm_b, __ = pair
        with mvm_a.host_session():
            ctx = mvm_a.initial.context()
            warm = remote_exec(ctx, HOST_B, "tools.Echo", ["warm"],
                               user="alice", password="wonderland")
            assert warm.wait_for(10) == 0
            pool = pool_for(mvm_a.vm)
            wait_for_idle(pool, 1)
            victim = remote_exec(ctx, HOST_B, "tools.Sleep", ["30"],
                                 user="alice", password="wonderland")
            assert victim.wait_for(0.3) is None  # running over there
            # Sever the victim's transport abruptly — the network died,
            # not the remote application.
            victim._conn.endpoint.close()
            with pytest.raises(RemoteException):
                victim.wait_for(10)
            assert victim.transport_lost
            # transport_lost dropped the parked channel too: a retry will
            # never be handed a connection to the dead node.
            assert pool.stats()["idle"] == 0

    def test_check_connect_applies_to_pool_hits(self, pair):
        """A parked channel never launders connect permission: an
        application without a socket grant is denied on acquire even
        though an idle channel to that exact endpoint exists."""
        mvm_a, __, ___ = pair
        with mvm_a.host_session():
            ctx = mvm_a.initial.context()
            warm = remote_exec(ctx, HOST_B, "tools.Echo", ["warm"],
                               user="alice", password="wonderland")
            assert warm.wait_for(10) == 0
            pool = pool_for(mvm_a.vm)
            wait_for_idle(pool, 1)
            outcome = {}

            def main(jclass, app_ctx, args):
                try:
                    pool_for(app_ctx.vm).acquire(app_ctx, HOST_B, PORT)
                    outcome["result"] = "acquired"
                except SecurityException:
                    outcome["result"] = "denied"
                return 0

            app = mvm_a.exec(make_app(mvm_a.vm, "PoolSnoop", main))
            assert app.wait_for(10) == 0
            assert outcome["result"] == "denied"
            assert pool.stats()["idle"] == 1  # the denial consumed nothing


class TestByteExactOutput:
    RAW = b"\xff\xfe raw \x00 bytes \x80\n"

    def register_binary_writer(self, mvm):
        raw = self.RAW

        def main(jclass, ctx, args):
            ctx.stdout.write(raw)
            return 0

        return make_app(mvm.vm, "BinaryWriter", main)

    def test_binary_framing_preserves_non_utf8_stdout(self, pair):
        mvm_a, mvm_b, __ = pair
        class_name = self.register_binary_writer(mvm_b)
        with mvm_a.host_session():
            ctx = mvm_a.initial.context()
            remote = remote_exec(ctx, HOST_B, class_name, [],
                                 user="alice", password="wonderland")
            assert remote.wait_for(10) == 0
        assert remote.output_bytes() == self.RAW

    def test_json_fallback_preserves_non_utf8_stdout(self, pair):
        # Protocol 1 framing round-trips bytes too, via the base64 "b"
        # escape a new receiver decodes (an old one shows lossy text).
        mvm_a, mvm_b, __ = pair
        class_name = self.register_binary_writer(mvm_b)
        with mvm_a.host_session():
            ctx = mvm_a.initial.context()
            remote = remote_exec(ctx, HOST_B, class_name, [],
                                 user="alice", password="wonderland",
                                 proto=1)
            assert remote.wait_for(10) == 0
        assert remote.output_bytes() == self.RAW


class TestCoalescing:
    def test_byte_at_a_time_stdout_costs_one_frame_per_line(self, pair):
        mvm_a, mvm_b, __ = pair
        line = b"coalesced hello\n"

        def main(jclass, ctx, args):
            for byte in line:
                ctx.stdout.write(bytes([byte]))
            return 0

        class_name = make_app(mvm_b.vm, "ByteAtATime", main)
        metrics = mvm_b.vm.telemetry.metrics
        frames_before = metrics.total("dist.frames.sent", type="o")
        coalesced_before = metrics.total("dist.frames.coalesced")
        with mvm_a.host_session():
            ctx = mvm_a.initial.context()
            remote = remote_exec(ctx, HOST_B, class_name, [],
                                 user="alice", password="wonderland")
            assert remote.wait_for(10) == 0
        assert remote.output_bytes() == line
        frames = metrics.total("dist.frames.sent", type="o") - frames_before
        coalesced = metrics.total("dist.frames.coalesced") - coalesced_before
        assert frames == 1  # 16 writes, one frame
        assert coalesced == len(line) - 1


class TestCrossVersion:
    def test_new_client_against_json_lines_daemon(self, pair):
        """A protocol-2 client run against a peer that only speaks the
        original JSON-lines protocol: the exec succeeds, the output
        arrives, and the (non-reusable) connection stays out of the
        pool."""
        mvm_a, __, fabric = pair
        legacy = fabric.add_host(LEGACY_HOST)
        listener = legacy.listen(PORT)

        def old_daemon():
            endpoint = listener.accept(timeout=5)
            if endpoint is None:
                return
            request = json.loads(endpoint.input.read_line())
            assert request["class_name"] == "tools.Echo"
            # An old daemon ignores the unknown "proto" key and answers
            # in JSON lines, then hangs up after the exit frame.
            for frame in ({"t": "o", "d": "legacy says hi\n"},
                          {"t": "x", "code": 0}):
                line = json.dumps(frame) + "\n"
                endpoint.output.write(line.encode("utf-8"))
            endpoint.close()

        thread = JThread(target=old_daemon, name="legacy-daemon",
                         group=mvm_a.vm.root_group, daemon=True)
        thread.start()
        with mvm_a.host_session():
            ctx = mvm_a.initial.context()
            remote = remote_exec(ctx, LEGACY_HOST, "tools.Echo", ["hi"],
                                 user="alice", password="wonderland")
            assert remote.wait_for(10) == 0
        thread.join(5)
        assert remote.output_text() == "legacy says hi\n"
        assert not remote.transport_binary
        assert pool_for(mvm_a.vm).idle_counts().get(
            f"{LEGACY_HOST}:{PORT}") is None

    def test_json_lines_client_against_new_daemon(self, pair):
        """An old client (no "proto" key, expects JSON lines) against the
        new daemon: every reply frame is a JSON line and the daemon
        hangs up after the exit frame — the protocol-1 lifecycle."""
        mvm_a, __, fabric = pair
        endpoint = fabric.connect(HOST_A, HOST_B, PORT)
        request = {"user": "alice", "password": "wonderland",
                   "class_name": "tools.Echo", "args": ["from", "the", "past"]}
        endpoint.output.write(
            (json.dumps(request) + "\n").encode("utf-8"))
        frames = []
        while True:
            line = endpoint.input.read_line()
            if line is None:
                break  # daemon hung up — expected after the exit frame
            assert line[:1] == b"{"  # JSON lines only, never binary
            frames.append(json.loads(line))
        endpoint.close()
        kinds = [frame["t"] for frame in frames]
        assert kinds[-1] == "x" and frames[-1]["code"] == 0
        stdout = "".join(f["d"] for f in frames if f["t"] == "o")
        assert stdout == "from the past\n"
