"""Property-based tests on VFS path handling and content integrity."""

import posixpath

from hypothesis import given, settings, strategies as st

from repro.unixfs.users import OsUser
from repro.unixfs.vfs import VirtualFileSystem

ROOT = OsUser("root", 0, 0, "/root")

name = st.text(
    alphabet=st.sampled_from("abcdefghij"),
    min_size=1, max_size=8)
segments = st.lists(name, min_size=1, max_size=4)


@given(parts=segments)
@settings(max_examples=60, deadline=None)
def test_normalize_is_idempotent(parts):
    path = "/" + "/".join(parts)
    once = VirtualFileSystem.normalize(path)
    assert VirtualFileSystem.normalize(once) == once


@given(parts=segments, cwd_parts=st.lists(name, max_size=3))
@settings(max_examples=60, deadline=None)
def test_relative_equals_joined_absolute(parts, cwd_parts):
    cwd = "/" + "/".join(cwd_parts) if cwd_parts else "/"
    relative = "/".join(parts)
    assert VirtualFileSystem.normalize(relative, cwd) == \
        VirtualFileSystem.normalize(posixpath.join(cwd, relative))


@given(parts=segments, payload=st.binary(max_size=300))
@settings(max_examples=40, deadline=None)
def test_create_then_read_roundtrip(parts, payload):
    fs = VirtualFileSystem()
    directory = "/" + "/".join(parts[:-1]) if len(parts) > 1 else "/"
    if directory != "/":
        fs.makedirs(directory, ROOT)
    path = posixpath.join(directory, parts[-1])
    fs.write_file(path, payload, ROOT)
    assert fs.read_file(path, ROOT) == payload
    assert fs.stat(path, ROOT).size == len(payload)


@given(parts=segments)
@settings(max_examples=40, deadline=None)
def test_makedirs_then_listdir_consistent(parts):
    fs = VirtualFileSystem()
    path = "/" + "/".join(parts)
    fs.makedirs(path, ROOT)
    # Every prefix exists and contains its successor.
    prefix = ""
    for index, part in enumerate(parts):
        parent = prefix or "/"
        assert part in fs.listdir(parent, ROOT)
        prefix = f"{prefix}/{part}"
        assert fs.is_dir(prefix, ROOT)


@given(appends=st.lists(st.binary(min_size=1, max_size=50),
                        min_size=1, max_size=10))
@settings(max_examples=40, deadline=None)
def test_appends_concatenate(appends):
    fs = VirtualFileSystem()
    for chunk in appends:
        fs.write_file("/f", chunk, ROOT, mode="a")
    assert fs.read_file("/f", ROOT) == b"".join(appends)
