"""The standard simulated machine layout and OS accounts."""

import pytest

from repro.jvm.errors import IllegalArgumentException
from repro.unixfs.machine import standard_machine, standard_process
from repro.unixfs.users import OsUser, OsUserTable, standard_user_table
from repro.unixfs.vfs import VfsPermissionDenied


class TestUserTable:
    def test_standard_accounts(self):
        table = standard_user_table()
        assert table.lookup("root").is_superuser
        assert not table.lookup("jvm").is_superuser
        assert table.lookup_uid(1001).name == "alice"
        assert "bob" in table
        assert "eve" not in table

    def test_duplicates_rejected(self):
        table = OsUserTable()
        table.add(OsUser("x", 1, 1, "/x"))
        with pytest.raises(IllegalArgumentException):
            table.add(OsUser("x", 2, 2, "/x2"))
        with pytest.raises(IllegalArgumentException):
            table.add(OsUser("y", 1, 1, "/y"))

    def test_unknown_lookup(self):
        table = standard_user_table()
        with pytest.raises(IllegalArgumentException):
            table.lookup("nobody-here")
        with pytest.raises(IllegalArgumentException):
            table.lookup_uid(9999)

    def test_group_membership(self):
        user = OsUser("g", 5, 10, "/g", groups=frozenset({20, 30}))
        assert user.in_group(10)
        assert user.in_group(20)
        assert not user.in_group(40)


class TestStandardMachine:
    def test_layout(self):
        machine = standard_machine()
        jvm = machine.users.lookup("jvm")
        vfs = machine.vfs
        for path in ("/tmp", "/etc", "/home/alice", "/home/bob",
                     "/usr/local/java/tools", "/var/backup",
                     "/usr/lib/fonts"):
            assert vfs.is_dir(path, jvm), path
        assert vfs.read_file("/etc/motd", jvm).startswith(b"Welcome")
        assert b"FONT" in vfs.read_file("/usr/lib/fonts/default.fnt", jvm)

    def test_shadow_hidden_from_jvm_process(self):
        machine = standard_machine()
        jvm = machine.users.lookup("jvm")
        root = machine.users.lookup("root")
        with pytest.raises(VfsPermissionDenied):
            machine.vfs.read_file("/etc/shadow", jvm)
        assert machine.vfs.read_file("/etc/shadow", root)

    def test_home_files_visible_to_jvm_process(self):
        """The Java layer, not the OS, isolates users (Section 5.3)."""
        machine = standard_machine()
        jvm = machine.users.lookup("jvm")
        assert b"private notes" in \
            machine.vfs.read_file("/home/alice/notes.txt", jvm)
        assert b"todo" in machine.vfs.read_file("/home/bob/todo.txt", jvm)

    def test_pids_increment(self):
        machine = standard_machine()
        assert machine.next_pid() < machine.next_pid()

    def test_standard_process_defaults(self):
        process = standard_process()
        assert process.user.name == "jvm"
        assert process.cwd == "/"
        assert process.env["USER"] == "jvm"
        assert process.vfs is process.machine.vfs
