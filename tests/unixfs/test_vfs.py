"""The virtual Unix file system: inodes, modes, owners, symlinks."""

import pytest

from repro.unixfs.users import OsUser
from repro.unixfs.vfs import (
    VfsDirectoryNotEmpty,
    VfsExists,
    VfsIsADirectory,
    VfsNotADirectory,
    VfsNotFound,
    VfsPermissionDenied,
    VfsSymlinkLoop,
    VirtualFileSystem,
)

ROOT = OsUser("root", 0, 0, "/root")
ALICE = OsUser("alice", 1001, 1001, "/home/alice")
BOB = OsUser("bob", 1002, 1002, "/home/bob")
GROUPIE = OsUser("groupie", 1003, 1001, "/home/groupie")  # alice's group


@pytest.fixture
def fs():
    fs = VirtualFileSystem()
    fs.mkdir("/home", ROOT)
    fs.mkdir("/home/alice", ROOT)
    fs.chown("/home/alice", ALICE.uid, ALICE.gid, ROOT)
    fs.mkdir("/tmp", ROOT, mode=0o777)
    return fs


class TestPaths:
    def test_normalize(self):
        normalize = VirtualFileSystem.normalize
        assert normalize("/a/b") == "/a/b"
        assert normalize("b", "/a") == "/a/b"
        assert normalize("../x", "/a/b") == "/a/x"
        assert normalize("/a/./b/../c") == "/a/c"
        assert normalize(".", "/a") == "/a"
        assert normalize("/") == "/"
        assert normalize("..", "/") == "/"

    def test_missing_component(self, fs):
        with pytest.raises(VfsNotFound):
            fs.stat("/home/alice/nope", ALICE)
        with pytest.raises(VfsNotFound):
            fs.stat("/nowhere/deep/path", ALICE)

    def test_file_as_directory(self, fs):
        fs.write_file("/tmp/f", b"x", ALICE)
        with pytest.raises(VfsNotADirectory):
            fs.stat("/tmp/f/child", ALICE)


class TestFilesAndDirectories:
    def test_create_write_read(self, fs):
        fs.write_file("/home/alice/doc.txt", b"hello", ALICE)
        assert fs.read_file("/home/alice/doc.txt", ALICE) == b"hello"
        stat = fs.stat("/home/alice/doc.txt", ALICE)
        assert stat.kind == "file"
        assert stat.size == 5
        assert stat.uid == ALICE.uid

    def test_append_mode(self, fs):
        fs.write_file("/tmp/log", b"a", ALICE)
        fs.write_file("/tmp/log", b"b", ALICE, mode="a")
        assert fs.read_file("/tmp/log", ALICE) == b"ab"

    def test_truncate_on_w(self, fs):
        fs.write_file("/tmp/t", b"longer", ALICE)
        fs.write_file("/tmp/t", b"s", ALICE)
        assert fs.read_file("/tmp/t", ALICE) == b"s"

    def test_handle_seek_tell_truncate(self, fs):
        fs.write_file("/tmp/h", b"0123456789", ALICE)
        handle = fs.open("/tmp/h", ALICE, "r+")
        handle.seek(5)
        assert handle.tell() == 5
        assert handle.read(2) == b"56"
        handle.seek(0)
        handle.write(b"AB")
        handle.truncate(4)
        handle.close()
        assert fs.read_file("/tmp/h", ALICE) == b"AB23"

    def test_open_directory_fails(self, fs):
        with pytest.raises(VfsIsADirectory):
            fs.open("/tmp", ALICE, "r")

    def test_mkdir_exists(self, fs):
        with pytest.raises(VfsExists):
            fs.mkdir("/home/alice", ALICE)

    def test_makedirs(self, fs):
        fs.makedirs("/tmp/a/b/c", ALICE)
        assert fs.is_dir("/tmp/a/b/c", ALICE)
        fs.makedirs("/tmp/a/b/c", ALICE)  # idempotent

    def test_listdir_sorted(self, fs):
        fs.write_file("/tmp/z", b"", ALICE)
        fs.write_file("/tmp/a", b"", ALICE)
        assert fs.listdir("/tmp", ALICE) == ["a", "z"]

    def test_unlink_and_rmdir(self, fs):
        fs.write_file("/tmp/gone", b"x", ALICE)
        fs.unlink("/tmp/gone", ALICE)
        assert not fs.exists("/tmp/gone", ALICE)
        fs.mkdir("/tmp/d", ALICE)
        fs.rmdir("/tmp/d", ALICE)
        assert not fs.exists("/tmp/d", ALICE)

    def test_rmdir_non_empty(self, fs):
        fs.mkdir("/tmp/d", ALICE)
        fs.write_file("/tmp/d/f", b"", ALICE)
        with pytest.raises(VfsDirectoryNotEmpty):
            fs.rmdir("/tmp/d", ALICE)

    def test_unlink_directory_fails(self, fs):
        fs.mkdir("/tmp/d", ALICE)
        with pytest.raises(VfsIsADirectory):
            fs.unlink("/tmp/d", ALICE)

    def test_rename(self, fs):
        fs.write_file("/tmp/old", b"v", ALICE)
        fs.rename("/tmp/old", "/tmp/new", ALICE)
        assert fs.read_file("/tmp/new", ALICE) == b"v"
        assert not fs.exists("/tmp/old", ALICE)

    def test_mtime_monotonic(self, fs):
        fs.write_file("/tmp/m", b"1", ALICE)
        first = fs.stat("/tmp/m", ALICE).mtime
        fs.write_file("/tmp/m", b"2", ALICE, mode="a")
        assert fs.stat("/tmp/m", ALICE).mtime > first

    def test_walk(self, fs):
        fs.makedirs("/tmp/w/x", ALICE)
        fs.write_file("/tmp/w/f", b"", ALICE)
        walked = dict(fs.walk("/tmp/w", ALICE))
        assert walked["/tmp/w"] == ["f", "x"]
        assert "/tmp/w/x" in walked


class TestPermissions:
    def test_owner_group_other_bits(self, fs):
        fs.write_file("/tmp/shared", b"data", ALICE)
        fs.chmod("/tmp/shared", 0o640, ALICE)
        assert fs.read_file("/tmp/shared", ALICE) == b"data"   # owner
        assert fs.read_file("/tmp/shared", GROUPIE) == b"data"  # group
        with pytest.raises(VfsPermissionDenied):
            fs.read_file("/tmp/shared", BOB)                   # other

    def test_write_denied_without_bit(self, fs):
        fs.write_file("/tmp/ro", b"data", ALICE)
        fs.chmod("/tmp/ro", 0o444, ALICE)
        with pytest.raises(VfsPermissionDenied):
            fs.write_file("/tmp/ro", b"nope", BOB)

    def test_search_permission_on_path(self, fs):
        fs.mkdir("/tmp/private", ALICE, mode=0o700)
        fs.write_file("/tmp/private/f", b"x", ALICE)
        with pytest.raises(VfsPermissionDenied):
            fs.read_file("/tmp/private/f", BOB)

    def test_parent_write_needed_to_create(self, fs):
        fs.mkdir("/tmp/theirs", ALICE, mode=0o755)
        with pytest.raises(VfsPermissionDenied):
            fs.create_file("/tmp/theirs/mine", BOB)

    def test_root_bypasses_everything(self, fs):
        fs.mkdir("/tmp/locked", ALICE, mode=0o700)
        fs.write_file("/tmp/locked/f", b"x", ALICE)
        assert fs.read_file("/tmp/locked/f", ROOT) == b"x"

    def test_chmod_only_owner_or_root(self, fs):
        fs.write_file("/tmp/c", b"", ALICE)
        with pytest.raises(VfsPermissionDenied):
            fs.chmod("/tmp/c", 0o777, BOB)
        fs.chmod("/tmp/c", 0o600, ROOT)

    def test_chown_only_root(self, fs):
        fs.write_file("/tmp/o", b"", ALICE)
        with pytest.raises(VfsPermissionDenied):
            fs.chown("/tmp/o", BOB.uid, BOB.gid, ALICE)
        fs.chown("/tmp/o", BOB.uid, BOB.gid, ROOT)
        assert fs.stat("/tmp/o", ROOT).uid == BOB.uid

    def test_listdir_requires_read(self, fs):
        fs.mkdir("/tmp/noread", ALICE, mode=0o311)
        with pytest.raises(VfsPermissionDenied):
            fs.listdir("/tmp/noread", BOB)


class TestSymlinks:
    def test_follow(self, fs):
        fs.write_file("/tmp/target", b"real", ALICE)
        fs.symlink("/tmp/target", "/tmp/link", ALICE)
        assert fs.read_file("/tmp/link", ALICE) == b"real"
        assert fs.readlink("/tmp/link", ALICE) == "/tmp/target"

    def test_relative_target(self, fs):
        fs.write_file("/tmp/target", b"real", ALICE)
        fs.symlink("target", "/tmp/rel", ALICE)
        assert fs.read_file("/tmp/rel", ALICE) == b"real"

    def test_intermediate_symlinked_dir(self, fs):
        fs.makedirs("/tmp/real/dir", ALICE)
        fs.write_file("/tmp/real/dir/f", b"deep", ALICE)
        fs.symlink("/tmp/real", "/tmp/alias", ALICE)
        assert fs.read_file("/tmp/alias/dir/f", ALICE) == b"deep"

    def test_loop_detected(self, fs):
        fs.symlink("/tmp/b", "/tmp/a", ALICE)
        fs.symlink("/tmp/a", "/tmp/b", ALICE)
        with pytest.raises(VfsSymlinkLoop):
            fs.read_file("/tmp/a", ALICE)
