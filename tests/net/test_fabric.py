"""The simulated network: hosts, listeners, connections, served code."""

import pytest

from repro.jvm.classloading import ClassMaterial
from repro.jvm.errors import (
    BindException,
    ClassNotFoundException,
    ConnectException,
    UnknownHostException,
)
from repro.jvm.threads import JThread, ThreadGroup
from repro.net.fabric import NetworkFabric
from repro.security.codesource import CodeSource


@pytest.fixture
def fabric():
    fabric = NetworkFabric()
    fabric.add_host("server.example.com")
    fabric.add_host("client.example.com")
    return fabric


class TestResolution:
    def test_resolve(self, fabric):
        assert fabric.resolve("server.example.com").name \
            == "server.example.com"
        assert fabric.hosts() == ["client.example.com",
                                  "server.example.com"]

    def test_unknown_host(self, fabric):
        with pytest.raises(UnknownHostException):
            fabric.resolve("nowhere.example.com")

    def test_add_host_idempotent(self, fabric):
        first = fabric.add_host("x.example.com")
        assert fabric.add_host("x.example.com") is first


class TestConnections:
    def test_data_flows_both_ways(self, fabric):
        server = fabric.resolve("server.example.com")
        listener = server.listen(7)
        client_end = fabric.connect("client.example.com",
                                    "server.example.com", 7)
        server_end = listener.accept(timeout=2)
        assert server_end is not None
        client_end.output.write(b"ping")
        assert server_end.input.read(4) == b"ping"
        server_end.output.write(b"pong")
        assert client_end.input.read(4) == b"pong"
        assert server_end.remote_host == "client.example.com"
        client_end.close()
        server_end.close()

    def test_connection_refused_without_listener(self, fabric):
        with pytest.raises(ConnectException):
            fabric.connect("client.example.com", "server.example.com", 99)

    def test_double_bind_rejected(self, fabric):
        server = fabric.resolve("server.example.com")
        server.listen(80)
        with pytest.raises(BindException):
            server.listen(80)

    def test_close_frees_the_port(self, fabric):
        server = fabric.resolve("server.example.com")
        listener = server.listen(80)
        listener.close()
        server.listen(80)

    def test_accept_timeout(self, fabric):
        listener = fabric.resolve("server.example.com").listen(5)
        assert listener.accept(timeout=0.1) is None

    def test_backlog_limit(self, fabric):
        server = fabric.resolve("server.example.com")
        server.listen(9, backlog=1)
        fabric.connect("client.example.com", "server.example.com", 9)
        with pytest.raises(ConnectException, match="backlog full"):
            fabric.connect("client.example.com", "server.example.com", 9)

    def test_accept_drains_a_backlog_slot(self, fabric):
        server = fabric.resolve("server.example.com")
        listener = server.listen(10, backlog=1)
        fabric.connect("client.example.com", "server.example.com", 10)
        with pytest.raises(ConnectException):
            fabric.connect("client.example.com", "server.example.com", 10)
        assert listener.accept(timeout=1) is not None
        # The accepted connection freed its slot: the next connect lands.
        fabric.connect("client.example.com", "server.example.com", 10)

    def test_closed_listener_refuses_not_backlog(self, fabric):
        server = fabric.resolve("server.example.com")
        listener = server.listen(11, backlog=1)
        stale = listener  # closing unbinds the port...
        stale.closed = True  # ...so force the racy closed-but-bound state
        with pytest.raises(ConnectException, match="connection refused"):
            fabric.connect("client.example.com", "server.example.com", 11)

    def test_blocking_accept_from_thread(self, fabric):
        root = ThreadGroup(None, "system")
        listener = fabric.resolve("server.example.com").listen(21)
        results = []

        def acceptor():
            endpoint = listener.accept(timeout=5)
            results.append(endpoint.input.read(5))

        thread = JThread(target=acceptor, group=root)
        thread.start()
        client = fabric.connect("client.example.com",
                                "server.example.com", 21)
        client.output.write(b"hello")
        thread.join(5)
        assert results == [b"hello"]

    def test_request_log_records_connects(self, fabric):
        server = fabric.resolve("server.example.com")
        server.listen(23)
        fabric.connect("client.example.com", "server.example.com", 23)
        assert ("connect", "client.example.com", 23) in server.request_log


class TestServedCode:
    def test_publish_and_fetch(self, fabric):
        server = fabric.resolve("server.example.com")
        material = ClassMaterial(
            "applets.Demo",
            code_source=CodeSource(server.code_base() + "applets.Demo"))
        server.publish_class(material)
        assert server.fetch_class("applets.Demo") is material
        assert ("fetch", "applets.Demo") in server.request_log

    def test_fetch_missing_class(self, fabric):
        server = fabric.resolve("server.example.com")
        with pytest.raises(ClassNotFoundException):
            server.fetch_class("applets.Nope")

    def test_code_base_url(self, fabric):
        assert fabric.resolve("server.example.com").code_base() \
            == "http://server.example.com/classes/"
