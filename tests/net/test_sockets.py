"""Security-checked sockets: SocketPermission enforcement end-to-end."""

import pytest

from repro.jvm.errors import SecurityException, SocketException
from repro.jvm.threads import JThread
from repro.net.sockets import ServerSocket, Socket
from repro.security.permissions import SocketPermission


@pytest.fixture
def remote(mvm):
    """A remote host with an echo listener on port 7."""
    host = mvm.vm.network.add_host("remote.example.com")
    listener = host.listen(7)

    def echo_loop():
        endpoint = listener.accept(timeout=5)
        if endpoint is None:
            return
        data = endpoint.input.read(1024)
        endpoint.output.write(b"echo:" + data)
        endpoint.close()

    thread = JThread(target=echo_loop, name="echo-server",
                     group=mvm.vm.root_group, daemon=True)
    thread.start()
    return host


def socket_policy_grant(mvm, host_spec):
    mvm.vm.policy.add_grant(
        [SocketPermission(host_spec, "connect,resolve")],
        code_base="file:/usr/local/java/-")


class TestClientSocket:
    def test_connect_denied_without_permission(self, host, register_app,
                                               remote):
        outcome = {}

        def main(jclass, ctx, args):
            try:
                Socket(ctx, "remote.example.com", 7)
                outcome["result"] = "connected"
            except SecurityException:
                outcome["result"] = "denied"
            return 0

        app = host.exec(register_app("NetDenied", main))
        assert app.wait_for(5) == 0
        assert outcome["result"] == "denied"

    def test_connect_allowed_with_grant(self, host, register_app, remote):
        socket_policy_grant(host, "remote.example.com:1-1023")
        outcome = {}

        def main(jclass, ctx, args):
            socket = Socket(ctx, "remote.example.com", 7)
            socket.send_text("hi")
            outcome["reply"] = socket.receive_text(7)
            socket.close()
            return 0

        app = host.exec(register_app("NetAllowed", main))
        assert app.wait_for(5) == 0
        assert outcome["reply"] == "echo:hi"

    def test_grant_is_host_specific(self, host, register_app, remote):
        socket_policy_grant(host, "other.example.com")
        outcome = {}

        def main(jclass, ctx, args):
            try:
                Socket(ctx, "remote.example.com", 7)
                outcome["result"] = "connected"
            except SecurityException:
                outcome["result"] = "denied"
            return 0

        app = host.exec(register_app("WrongHost", main))
        assert app.wait_for(5) == 0
        assert outcome["result"] == "denied"

    def test_host_code_connects_freely(self, host, remote):
        ctx = host.initial.context()
        socket = Socket(ctx, "remote.example.com", 7)
        socket.send_text("root")
        assert socket.receive_text(9) == "echo:root"
        socket.close()


class TestServerSocket:
    def test_listen_accept_roundtrip(self, host):
        ctx = host.initial.context()
        server = ServerSocket(ctx, 2000)
        fabric = host.vm.network
        client_end = fabric.connect("elsewhere",
                                    host.vm.machine.hostname, 2000)
        accepted = server.accept(timeout=2)
        client_end.output.write(b"msg")
        assert accepted.input.read(3) == b"msg"
        accepted.close()
        client_end.close()
        server.close()

    def test_accept_timeout_raises(self, host):
        ctx = host.initial.context()
        server = ServerSocket(ctx, 2001)
        with pytest.raises(SocketException):
            server.accept(timeout=0.1)
        server.close()

    def test_app_listen_denied_without_permission(self, host,
                                                  register_app):
        outcome = {}

        def main(jclass, ctx, args):
            try:
                ServerSocket(ctx, 2002)
                outcome["result"] = "listening"
            except SecurityException:
                outcome["result"] = "denied"
            return 0

        app = host.exec(register_app("Listener", main))
        assert app.wait_for(5) == 0
        assert outcome["result"] == "denied"
