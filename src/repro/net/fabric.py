"""The simulated network: named hosts, ports, and downloadable code.

The paper's mobile-code experiments (Sections 3.3 and 6.3) need a network
origin for applets ("foreign code that is downloaded over the network") and
a way for sandboxed applets to "connect back" to their own host.  The
fabric provides both without touching a real network:

* :class:`Host` — a named machine that can *publish class material* (the
  HTTP server an applet is downloaded from) and *listen on ports*.
* :class:`NetworkFabric` — name resolution and connection establishment.

Connections are symmetric byte channels built from two in-memory pipes.
Java-side socket objects with security-manager checks live in
:mod:`repro.net.sockets`; the fabric itself is OS-level machinery and does
no Java security checks.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.io.streams import (
    InputStream,
    OutputStream,
    make_pipe,
)
from repro.jvm.classloading import ClassMaterial
from repro.jvm.errors import (
    BindException,
    ClassNotFoundException,
    ConnectException,
    UnknownHostException,
)
from repro.sched.timers import wait_until
from repro.sched.waitobj import WaitPoint


class Endpoint:
    """One side of an established connection."""

    def __init__(self, local_host: str, remote_host: str, remote_port: int,
                 reader: InputStream, writer: OutputStream):
        self.local_host = local_host
        self.remote_host = remote_host
        self.remote_port = remote_port
        self.input = reader
        self.output = writer

    def writev(self, segments) -> None:
        """Gather-write ``segments`` onto the wire in one call.

        The fabric's syscall-analogue for vectored I/O: the underlying
        pipe consumes the whole vector in a single lock session, so a
        frame burst costs one writer/reader handoff instead of one per
        segment.
        """
        self.output.writev(segments)

    def close(self) -> None:
        self.output.close()
        self.input.close()


class Listener:
    """A bound port: a queue of not-yet-accepted endpoints."""

    def __init__(self, host: "Host", port: int, backlog: int = 16):
        self.host = host
        self.port = port
        self.backlog = backlog
        self._pending: list[Endpoint] = []
        self._cond = WaitPoint()
        self.closed = False

    def _offer(self, endpoint: Endpoint) -> bool:
        with self._cond:
            if self.closed or len(self._pending) >= self.backlog:
                return False
            self._pending.append(endpoint)
            self._cond.notify_all()
            return True

    def accept(self, timeout: Optional[float] = None) -> Optional[Endpoint]:
        """Block for the next incoming connection (a stop point)."""
        with self._cond:
            got = wait_until(self._cond,
                             lambda: self._pending or self.closed,
                             timeout=timeout)
            if not got or self.closed and not self._pending:
                return None
            return self._pending.pop(0)

    def try_accept(self) -> Optional[Endpoint]:
        """Non-blocking accept; None when no connection is pending.

        Task-side servers loop on this plus :meth:`wait_point` (via
        ``repro.sched.ops.accept``) instead of blocking the event loop.
        """
        with self._cond:
            if self._pending:
                return self._pending.pop(0)
            return None

    def acceptable_hint(self) -> bool:
        """True when ``accept`` would not block (pending or closed)."""
        return bool(self._pending) or self.closed

    def wait_point(self) -> WaitPoint:
        return self._cond

    def close(self) -> None:
        with self._cond:
            self.closed = True
            self._cond.notify_all()
        self.host._unbind(self.port)


class Host:
    """A machine on the simulated network."""

    def __init__(self, fabric: "NetworkFabric", name: str):
        self.fabric = fabric
        self.name = name
        self._published: dict[str, ClassMaterial] = {}
        self._listeners: dict[int, Listener] = {}
        self._lock = threading.RLock()
        #: Per-host request log: every class fetch and connection attempt,
        #: so tests can assert what actually crossed the "network".
        self.request_log: list[tuple] = []

    # -- serving code (the applet HTTP server) -----------------------------------

    def publish_class(self, material: ClassMaterial) -> ClassMaterial:
        """Make class material downloadable from this host (Section 6.3)."""
        with self._lock:
            self._published[material.name] = material
        return material

    def published_names(self) -> list[str]:
        """The class names this host serves (the cluster locality signal)."""
        with self._lock:
            return sorted(self._published)

    def fetch_class(self, name: str) -> ClassMaterial:
        """Download class material (what an AppletClassLoader does)."""
        with self._lock:
            self.request_log.append(("fetch", name))
            material = self._published.get(name)
        if material is None:
            raise ClassNotFoundException(f"http://{self.name}/{name}")
        return material

    def code_base(self) -> str:
        """The code-base URL applets from this host carry."""
        return f"http://{self.name}/classes/"

    # -- listening -----------------------------------------------------------------

    def listen(self, port: int, backlog: int = 16) -> Listener:
        with self._lock:
            if port in self._listeners:
                raise BindException(f"{self.name}:{port} already bound")
            listener = Listener(self, port, backlog)
            self._listeners[port] = listener
            return listener

    def _unbind(self, port: int) -> None:
        with self._lock:
            self._listeners.pop(port, None)

    def _listener(self, port: int) -> Optional[Listener]:
        with self._lock:
            return self._listeners.get(port)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Host({self.name!r})"


class NetworkFabric:
    """All hosts, plus name resolution and connection establishment."""

    def __init__(self):
        self._hosts: dict[str, Host] = {}
        self._lock = threading.RLock()

    def add_host(self, name: str) -> Host:
        with self._lock:
            if name in self._hosts:
                return self._hosts[name]
            host = Host(self, name)
            self._hosts[name] = host
            return host

    def resolve(self, name: str) -> Host:
        with self._lock:
            host = self._hosts.get(name)
        if host is None:
            raise UnknownHostException(name)
        return host

    def hosts(self) -> list[str]:
        with self._lock:
            return sorted(self._hosts)

    def connect(self, from_host: str, to_host: str, port: int) -> Endpoint:
        """Establish a connection; returns the *client* endpoint."""
        target = self.resolve(to_host)
        listener = target._listener(port)
        target.request_log.append(("connect", from_host, port))
        if listener is None:
            raise ConnectException(f"{to_host}:{port} connection refused")
        client_to_server_r, client_to_server_w = make_pipe()
        server_to_client_r, server_to_client_w = make_pipe()
        server_side = Endpoint(to_host, from_host, port,
                               client_to_server_r, server_to_client_w)
        if not listener._offer(server_side):
            # A closed listener is "refused", a full accept queue is
            # "backlog full" — callers back off differently (a dead
            # server vs. an overloaded one).
            reason = "connection refused" if listener.closed \
                else "backlog full"
            raise ConnectException(f"{to_host}:{port} {reason}")
        return Endpoint(from_host, to_host, port,
                        server_to_client_r, client_to_server_w)
