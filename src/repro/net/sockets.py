"""Java-side sockets: the security-checked face of the network fabric.

These are the objects application and applet code use.  Every operation
first consults the system security manager (``checkConnect`` /
``checkListen`` / ``checkAccept``), which funnels into the access
controller's :class:`~repro.security.permissions.SocketPermission` checks —
so an applet can connect back to its own host (the permission its
``AppletClassLoader`` delegated to it, Section 6.3) but nowhere else.
"""

from __future__ import annotations

from typing import Optional

from repro.io.streams import InputStream, OutputStream
from repro.jvm.errors import IllegalStateException, SocketException
from repro.net.fabric import Endpoint, Listener, NetworkFabric


def _fabric(ctx) -> NetworkFabric:
    fabric = ctx.vm.network
    if fabric is None:
        raise IllegalStateException("this VM has no network attached")
    return fabric


def _local_host(ctx) -> str:
    return ctx.vm.machine.hostname


class Socket:
    """A connected client socket."""

    def __init__(self, ctx, host: str, port: int):
        sm = ctx.vm.security_manager
        if sm is not None:
            sm.check_connect(host, port)
        self._endpoint: Endpoint = _fabric(ctx).connect(
            _local_host(ctx), host, port)
        self.remote_host = host
        self.remote_port = port
        self.closed = False
        if ctx.app is not None:
            ctx.app.register_opened_stream(self._endpoint.input)
            ctx.app.register_opened_stream(self._endpoint.output)
            self._endpoint.input.owner = ctx.app
            self._endpoint.output.owner = ctx.app

    @classmethod
    def _from_endpoint(cls, endpoint: Endpoint) -> "Socket":
        socket = cls.__new__(cls)
        socket._endpoint = endpoint
        socket.remote_host = endpoint.remote_host
        socket.remote_port = endpoint.remote_port
        socket.closed = False
        return socket

    @property
    def input(self) -> InputStream:
        return self._endpoint.input

    @property
    def output(self) -> OutputStream:
        return self._endpoint.output

    def send_text(self, text: str) -> None:
        self.output.write(text.encode("utf-8"))

    def receive_text(self, size: int = -1) -> str:
        return self.input.read(size).decode("utf-8", errors="replace")

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._endpoint.close()

    def __enter__(self) -> "Socket":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ServerSocket:
    """A listening socket bound on this VM's own host."""

    def __init__(self, ctx, port: int, backlog: int = 16):
        sm = ctx.vm.security_manager
        if sm is not None:
            sm.check_listen(port)
        self._ctx = ctx
        host = _fabric(ctx).resolve(_local_host(ctx))
        self._listener: Listener = host.listen(port, backlog)
        self.port = port

    def accept(self, timeout: Optional[float] = None) -> Socket:
        endpoint = self._listener.accept(timeout)
        if endpoint is None:
            raise SocketException("accept timed out or socket closed")
        sm = self._ctx.vm.security_manager
        if sm is not None:
            sm.check_accept(endpoint.remote_host, endpoint.remote_port)
        return Socket._from_endpoint(endpoint)

    def close(self) -> None:
        self._listener.close()

    def __enter__(self) -> "ServerSocket":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
