"""Cost model for the Section 2 comparison: N JVM processes vs one MPJVM.

Section 2 argues for running multiple applications in one JVM:

* "a small device or an old computer system may be under-powered and
  equipped with inadequate memory such that it is crippling to try to start
  multiple JVMs";
* "Context switching ... is much less expensive if performed within one
  address space, because caches need not be cleared, page-table pointers
  don't have to be adjusted";
* "Inter-process communication is also much cheaper in a single address
  space."

The paper gives no numbers (it is an experience paper), so the benchmarks
pair *real measurements* of the single-VM path (our applications, threads,
and pipes) with this *calibrated analytic model* of the multi-process path.
Parameter defaults are era-plausible magnitudes for a late-90s workstation
running a JDK-class VM (JVM startup on the order of a second, a
several-megabyte base image, tens-of-microseconds process switches
dominated by cache/TLB refill); every parameter is explicit so a user can
re-calibrate for modern hardware and re-run the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class ProcessCostModel:
    """Calibrated costs of the multiple-OS-process deployment."""

    #: Time to start one JVM process (exec + class loading), seconds.
    jvm_startup_s: float = 1.2
    #: Resident memory of one idle JVM process, kilobytes.
    jvm_base_memory_kb: int = 4096
    #: Extra memory a single additional *application* costs inside an
    #: already-running JVM (thread stacks + loader + per-app state), KB.
    per_app_memory_kb: int = 256
    #: Time to launch an application inside a running JVM, seconds.  By
    #: default taken from measurement; this is the modelled fallback.
    in_vm_launch_s: float = 0.005
    #: Direct cost of an OS process context switch, microseconds.
    process_switch_us: float = 12.0
    #: Indirect cost: cache + TLB refill after an address-space switch, us.
    cache_refill_penalty_us: float = 30.0
    #: Direct cost of a same-address-space thread switch, microseconds.
    thread_switch_us: float = 4.0
    #: Cross-process pipe bandwidth (two kernel copies), MB/s.
    process_pipe_mb_s: float = 25.0
    #: Single-address-space channel bandwidth (one copy), MB/s.  By default
    #: taken from measurement; this is the modelled fallback.
    in_vm_pipe_mb_s: float = 50.0

    # -- Section 2, memory and startup (experiment C1) -------------------------

    def multi_jvm_memory_kb(self, n_apps: int) -> int:
        """Memory to run ``n_apps`` applications as N separate JVMs."""
        return n_apps * self.jvm_base_memory_kb

    def single_jvm_memory_kb(self, n_apps: int) -> int:
        """Memory to run ``n_apps`` applications in one MPJVM."""
        return self.jvm_base_memory_kb + n_apps * self.per_app_memory_kb

    def memory_saving_factor(self, n_apps: int) -> float:
        return (self.multi_jvm_memory_kb(n_apps)
                / self.single_jvm_memory_kb(n_apps))

    def multi_jvm_startup_s(self, n_apps: int) -> float:
        return n_apps * self.jvm_startup_s

    def single_jvm_startup_s(self, n_apps: int,
                             measured_launch_s: Optional[float] =
                             None) -> float:
        launch = measured_launch_s if measured_launch_s is not None \
            else self.in_vm_launch_s
        return self.jvm_startup_s + n_apps * launch

    # -- Section 2, context switching (experiment C2) -----------------------------

    def process_context_switch_us(self) -> float:
        """Full cost of switching between two JVM processes."""
        return self.process_switch_us + self.cache_refill_penalty_us

    def switch_speedup(self, measured_thread_switch_us: Optional[float] =
                       None) -> float:
        thread = measured_thread_switch_us \
            if measured_thread_switch_us is not None \
            else self.thread_switch_us
        return self.process_context_switch_us() / thread

    # -- Section 2, IPC (experiment C2) ---------------------------------------------

    def ipc_speedup(self, measured_in_vm_mb_s: Optional[float] =
                    None) -> float:
        in_vm = measured_in_vm_mb_s if measured_in_vm_mb_s is not None \
            else self.in_vm_pipe_mb_s
        return in_vm / self.process_pipe_mb_s


@dataclass
class ComparisonRow:
    """One row of a Section 2 comparison table."""

    metric: str
    multi_process: float
    single_vm: float
    unit: str

    @property
    def advantage(self) -> float:
        """How many times better the single-VM figure is (>1 favours it).

        For cost-like units (lower is better) this is multi/single; for
        rate-like units (higher is better) callers should pass the values
        accordingly — every row in this module is cost-like except
        bandwidth, which is handled by :func:`section2_table`.
        """
        if self.single_vm == 0:
            return float("inf")
        return self.multi_process / self.single_vm

    def format(self) -> str:
        return (f"{self.metric:<38s} {self.multi_process:>12.3f} "
                f"{self.single_vm:>12.3f} {self.unit:<8s} "
                f"x{self.advantage:0.1f}")


def section2_table(n_apps: int,
                   model: Optional[ProcessCostModel] = None,
                   measured_launch_s: Optional[float] = None,
                   measured_thread_switch_us: Optional[float] = None,
                   measured_in_vm_pipe_mb_s: Optional[float] = None
                   ) -> list[ComparisonRow]:
    """Build the Section 2 comparison for ``n_apps`` applications.

    Measured values (from the live benchmarks) replace the model's
    single-VM fallbacks when provided.
    """
    model = model if model is not None else ProcessCostModel()
    launch = measured_launch_s if measured_launch_s is not None \
        else model.in_vm_launch_s
    thread_us = measured_thread_switch_us \
        if measured_thread_switch_us is not None else model.thread_switch_us
    in_vm_mb_s = measured_in_vm_pipe_mb_s \
        if measured_in_vm_pipe_mb_s is not None else model.in_vm_pipe_mb_s
    rows = [
        ComparisonRow(f"memory for {n_apps} apps",
                      model.multi_jvm_memory_kb(n_apps),
                      model.single_jvm_memory_kb(n_apps), "KB"),
        ComparisonRow(f"startup for {n_apps} apps",
                      model.multi_jvm_startup_s(n_apps),
                      model.single_jvm_startup_s(n_apps, launch), "s"),
        ComparisonRow("context switch",
                      model.process_context_switch_us(), thread_us, "us"),
        # Bandwidth is rate-like: invert into per-MB cost so "advantage"
        # keeps its lower-is-better meaning.
        ComparisonRow("IPC cost per MB",
                      1000.0 / model.process_pipe_mb_s,
                      1000.0 / in_vm_mb_s, "ms/MB"),
    ]
    return rows


def format_table(rows: list[ComparisonRow], title: str) -> str:
    header = (f"{'metric':<38s} {'N processes':>12s} "
              f"{'one MPJVM':>12s} {'unit':<8s} advantage")
    lines = [title, header, "-" * len(header)]
    lines.extend(row.format() for row in rows)
    return "\n".join(lines)
