"""Resolving the current application from the current thread.

Section 5.1: "threads provide a natural ground for the notion of an
application.  By the same token, threads give us a convenient way to
distinguish two instances of the same program running inside a single JVM."

Any piece of code can ask *which application am I running in?* — the answer
is derived from the calling thread's thread-group ancestry, never from the
code's identity (which is what code sources are for).
"""

from __future__ import annotations

from typing import Optional

from repro.jvm.errors import IllegalStateException
from repro.jvm.threads import JThread, owning_application


def current_application_or_none():
    """The application owning the calling thread, or None (host/system)."""
    thread = JThread.current_or_none()
    if thread is None:
        return None
    return owning_application(thread.group)


def current_application():
    """Like :func:`current_application_or_none` but required."""
    application = current_application_or_none()
    if application is None:
        raise IllegalStateException(
            "calling thread does not belong to any application")
    return application


def current_user() -> Optional[object]:
    """The Java-level running user of the current application, if any."""
    application = current_application_or_none()
    return application.user if application is not None else None
