"""The multi-processing VM launcher: wires every piece together.

Boots a :class:`~repro.jvm.vm.VirtualMachine` and installs the paper's
architecture on it:

* an :class:`~repro.core.application.ApplicationRegistry` with its reaper
  (Section 5.1);
* the :class:`~repro.security.sysmanager.SystemSecurityManager`
  (Section 5.6);
* a policy combining code-source and user grants (Section 5.3) — the
  default policy embeds the paper's Section 5.3 example verbatim;
* the user database and the null bootstrap user (Section 5.2);
* the AWT :class:`~repro.awt.toolkit.Toolkit` in per-application dispatch
  mode (Section 5.4) — pass ``dispatch_mode=CENTRALIZED`` to get the
  classic Figure 2 behaviour for comparison;
* the stream-ownership close rule (Section 5.1);
* the Section 5.3 user-permission resolver on the access controller;
* the demonstration tools of Section 6 on the command path.

Typical use::

    with MultiProcVM.boot() as mvm:
        with mvm.host_session():
            app = mvm.launch(ExecSpec("tools.Cat", ("/etc/motd",)))
            app.wait_for()
"""

from __future__ import annotations

import contextlib
import threading
import warnings
from typing import Optional

from repro.awt.toolkit import PER_APPLICATION, Toolkit
from repro.core.application import Application, ApplicationRegistry
from repro.core.context import current_application_or_none
from repro.core.execspec import ExecSpec
from repro.core.execspec import launch as launch_spec
from repro.io import streams as streams_mod
from repro.jvm.errors import SecurityException
from repro.jvm.threads import JThread
from repro.jvm.vm import VirtualMachine
from repro.security import access
from repro.security import cache as seccache
from repro.security.auth import (
    NULL_USER,
    UserDatabase,
    standard_user_database,
)
from repro.security.policy import PAPER_EXAMPLE_POLICY, Policy, parse_policy
from repro.security.sysmanager import SystemSecurityManager
import repro.telemetry as telemetry

#: Code base under which all locally installed Java code lives.
LOCAL_CODE_BASE = "file:/usr/local/java/-"

#: The default policy: the paper's Section 5.3 example plus the working
#: grants the demonstration tools need (ordinary application privileges for
#: local code, the setUser privilege for the login program's code source
#: only, and the table/kill privileges the ps/kill tools rely on).
DEFAULT_POLICY = PAPER_EXAMPLE_POLICY + """
// Working grants for locally installed code (Section 6 tools): read
// access to world-readable system areas (the OS layer still hides files
// like /etc/shadow — Feature 3), scratch space in /tmp, and the runtime
// permissions the shell and GUI need.
grant codeBase "file:/usr/local/java/-" {
    permission PropertyPermission "*", "read";
    permission RuntimePermission "setIO";
    permission RuntimePermission "readApplicationTable";
    permission AWTPermission "showWindow";
    permission FilePermission "/", "read";
    permission FilePermission "/etc", "read";
    permission FilePermission "/etc/-", "read";
    permission FilePermission "/usr", "read";
    permission FilePermission "/usr/-", "read";
    permission FilePermission "/var", "read";
    permission FilePermission "/home", "read";
    permission FilePermission "/tmp", "read";
    permission FilePermission "/tmp/-", "read,write,delete";
    permission FilePermission "/proc", "read";
    permission FilePermission "/proc/-", "read";
    permission SocketPermission "*", "resolve";
    permission RuntimePermission "shareObject.bind";
    permission RuntimePermission "shareObject.lookup";
};

// Section 8 (future work): the rexec daemon listens for distributed
// applications and launches work as authenticated users (the login
// pattern: the privilege belongs to the program's code source).
grant codeBase "file:/usr/local/java/tools/rexecd/*" {
    permission SocketPermission "localhost:7000-7999", "listen";
    permission SocketPermission "*", "accept,resolve";
    permission RuntimePermission "setUser";
};

// ... and rsh connects out to rexec daemons on other JVMs.
grant codeBase "file:/usr/local/java/tools/rsh/*" {
    permission SocketPermission "*:7000-7999", "connect,resolve";
};

// Cluster plumbing (the Section 8 pool): the registry server accepts
// agent heartbeats on the controller, and the agent on every worker
// connects back to it.
grant codeBase "file:/usr/local/java/tools/clusterd/*" {
    permission SocketPermission "localhost:7000-7999", "listen";
    permission SocketPermission "*", "accept,resolve";
    permission SocketPermission "*:7000-7999", "connect,resolve";
};

// The cluster control tool launches scheduled work over the dist
// protocol, exactly like rsh.
grant codeBase "file:/usr/local/java/tools/cluster/*" {
    permission SocketPermission "*:7000-7999", "connect,resolve";
};

// The Appletviewer creates AppletClassLoaders and holds the network
// permission it delegates: "an applet will get the permission FROM the
// Appletviewer to connect back to its own host" (Section 6.3).  The
// stack-walk intersects the applet's own-host-only grant with this one.
grant codeBase "file:/usr/local/java/tools/appletviewer/*" {
    permission RuntimePermission "createClassLoader";
    permission SocketPermission "*", "connect,accept,resolve";
};

// Section 5.2: "All we need to do is grant the login program the privilege
// to set its own user."
grant codeBase "file:/usr/local/java/tools/login/*" {
    permission RuntimePermission "setUser";
};

// Working grant: the backup application also needs somewhere to put the
// backups (its read-everything grant is rule 2 of the Section 5.3 policy).
grant codeBase "file:/usr/local/java/apps/backup/*" {
    permission FilePermission "/var/backup", "read";
    permission FilePermission "/var/backup/-", "read,write";
};

// The policygen tool closes the audit loop: it may toggle learning mode
// on applications (the same standing rule as kill applies on top) and
// write inferred policies anywhere the invoking user may write.
grant codeBase "file:/usr/local/java/tools/policygen/*" {
    permission RuntimePermission "controlPolicyRecording";
};
"""


def _resolve_user_permissions():
    """Section 5.3 hook: the permissions of the *running user*.

    Consulted by the access controller when a domain holding
    ``UserPermission`` fails its code-source check.
    """
    application = current_application_or_none()
    if application is None:
        return None
    policy = application.vm.policy
    if policy is None:
        return None
    if getattr(policy, "phase_sensitive", False):
        return policy.permissions_for_user(application.user.name,
                                           application.phase)
    return policy.permissions_for_user(application.user.name)


def _resolve_current_phase():
    """Execution-state MAC hook: the calling app's lifecycle phase.

    Installed as ``security.cache.phase_resolver``; host threads (no
    current application) have no phase, so phase-conditioned grants fail
    closed for them.
    """
    application = current_application_or_none()
    if application is None:
        return None
    return application.phase


def _resolve_check_stack():
    """Policy-learning hook: protection-domain names on the caller's
    access-control context, newest first.  Only consulted for apps in
    recording mode (``telemetry.stack_resolver``)."""
    return tuple(domain.name for domain in access.get_context().domains)


def _stream_close_policy(stream) -> None:
    """Section 5.1: "applications may only close streams that they opened".

    Streams record the application that opened them in ``owner``; standard
    streams handed down by the launcher are owned by the initial
    application.  Anonymous streams (owner None) are unrestricted.
    """
    owner = stream.owner
    if owner is None:
        return
    application = current_application_or_none()
    if application is None or application is owner:
        return
    if application.thread_group.parent_of(owner.thread_group):
        return  # a parent may clean up after its children
    raise SecurityException(
        "application may only close streams that it opened")


def _stream_diagnostic(stream, message: str) -> None:
    """Satellite diagnostic sink: stream-layer trouble goes to the
    *application's own* ``System.err``, never the host process's stdout.
    """
    application = current_application_or_none()
    if application is None:
        return
    sink = application.stderr
    if sink is None or sink is stream:
        return  # never report a broken stderr to itself
    try:
        sink.println(f"repro: {message}")
    except Exception:
        pass  # diagnostics must never take down the stream layer


_hooks_installed = False
_hooks_lock = threading.Lock()


def install_global_hooks() -> None:
    """Install the (VM-agnostic, thread-sensitive) global hooks once."""
    global _hooks_installed
    with _hooks_lock:
        if _hooks_installed:
            return
        access.user_permission_resolver = _resolve_user_permissions
        streams_mod.close_policy = _stream_close_policy
        streams_mod.diagnostic_sink = _stream_diagnostic
        telemetry.app_resolver = current_application_or_none
        telemetry.stack_resolver = _resolve_check_stack
        seccache.phase_resolver = _resolve_current_phase
        _hooks_installed = True


class MultiProcVM:
    """A booted multi-processing JVM and its root (initial) application."""

    def __init__(self, vm: VirtualMachine, initial: Application,
                 toolkit: Toolkit):
        self.vm = vm
        self.initial = initial
        self.toolkit = toolkit

    # ------------------------------------------------------------------
    # boot
    # ------------------------------------------------------------------

    @classmethod
    def boot(cls, os_context=None,
             policy: Optional[Policy] = None,
             users: Optional[UserDatabase] = None,
             dispatch_mode: str = PER_APPLICATION,
             legacy_thread_placement: bool = False,
             xserver=None, network=None,
             stdin=None, stdout=None, stderr=None,
             with_tools: bool = True,
             system_exit_exits_application: bool = False,
             admission=None,
             audit_capacity: Optional[int] = None) -> "MultiProcVM":
        install_global_hooks()
        vm = VirtualMachine(os_context, stdin=stdin, stdout=stdout,
                            stderr=stderr)
        vm.boot()
        if audit_capacity is not None:
            # Bound the audit ring for this deployment (learning sessions
            # can stream overflow to JSONL instead of growing memory).
            vm.telemetry.audit.set_capacity(audit_capacity)
        from repro.net.fabric import NetworkFabric
        vm.network = network if network is not None else NetworkFabric()
        vm.network.add_host(vm.machine.hostname)
        vm.policy = policy if policy is not None \
            else parse_policy(DEFAULT_POLICY)
        vm.boot_loader.policy = vm.policy
        # Re-home the security-cache counters into this VM's telemetry hub
        # so /proc/vmstat and /proc/security/cache report live values.
        bind = getattr(vm.policy, "bind_telemetry", None)
        if bind is not None:
            bind(vm.telemetry.metrics)
        vm.user_database = users if users is not None \
            else standard_user_database()
        vm.system_exit_exits_application = system_exit_exits_application
        # Feature 1: the end of an application "should not necessarily
        # cause the JVM to exit" — VM lifetime is managed by the launcher.
        vm.exit_when_last_nondaemon = False

        registry = ApplicationRegistry(vm)
        vm.application_registry = registry
        registry.start()

        # Tentpole: the read-only introspection surface.  Gating is by the
        # Java-level user model inside the provider, not by mode bits.
        from repro.unixfs.procfs import ProcFileSystem
        vm.os_context.vfs.mount(
            "/proc", ProcFileSystem(vm, current_app=current_application_or_none))

        from repro.core.sharing import SharedObjectSpace
        vm.shared_objects = SharedObjectSpace(vm)

        # Admission control is opt-in: pass an AdmissionPolicy (or a
        # ready AdmissionController) to bound the launch choke point.
        if admission is not None:
            from repro.super.admission import (
                AdmissionController,
                AdmissionPolicy,
            )
            if isinstance(admission, AdmissionPolicy):
                admission = AdmissionController(vm, admission)
            admission.install()

        toolkit = Toolkit(vm, xserver=xserver, dispatch_mode=dispatch_mode,
                          legacy_thread_placement=legacy_thread_placement)

        if with_tools:
            from repro.tools.registry import register_tools
            register_tools(vm)

        # The initial (bootstrap) application: null user, VM streams.
        initial = Application(vm, class_name=None, name="init",
                              user=NULL_USER, auto_exit=False)
        registry.initial = initial
        with initial._cond:
            initial._state = "running"
        vm.stdin.owner = initial
        vm.out.owner = initial
        vm.err.owner = initial

        vm.set_security_manager(SystemSecurityManager())
        return cls(vm, initial, toolkit)

    # ------------------------------------------------------------------
    # host-thread plumbing
    # ------------------------------------------------------------------

    @contextlib.contextmanager
    def host_session(self, name: str = "host"):
        """Attach the calling host thread to the initial application.

        Inside the block, ``current_application()`` resolves to the initial
        application, so ``exec`` launches children with inherited state —
        the same situation as the paper's login/shell bootstrap.
        """
        already = JThread.current_or_none()
        if already is not None:
            yield already
            return
        thread = JThread.attach(name, self.initial.thread_group,
                                daemon=False)
        try:
            yield thread
        finally:
            thread.detach()

    # ------------------------------------------------------------------
    # convenience API
    # ------------------------------------------------------------------

    def launch(self, spec: ExecSpec):
        """Launch an :class:`ExecSpec` (the unified entry point).

        Local placements become children of the initial application (or
        of the current one, when called from inside an app); cluster and
        remote placements route through the spec's placement hint.
        """
        parent = current_application_or_none() or self.initial
        return launch_spec(spec, vm=self.vm, parent=parent)

    def exec(self, class_name: str, args: Optional[list[str]] = None,
             **state_overrides) -> Application:
        """Deprecated shim: launch a child of the initial application.

        Prefer ``mvm.launch(ExecSpec(class_name, args, ...))``.
        """
        warnings.warn(
            "MultiProcVM.exec() is deprecated; use "
            "mvm.launch(ExecSpec(...))", DeprecationWarning, stacklevel=2)
        return self.launch(ExecSpec(class_name, tuple(args or ()),
                                    **state_overrides))

    def run(self, class_name: str, args: Optional[list[str]] = None,
            timeout: float = 10.0, **state_overrides) -> Optional[int]:
        """Launch, wait, and return the exit code."""
        application = self.launch(ExecSpec(class_name, tuple(args or ()),
                                           **state_overrides))
        return application.wait_for(timeout)

    def applications(self):
        return self.vm.application_registry.applications(check=False)

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        """Destroy all applications, stop the toolkit, stop the VM."""
        self.initial.destroy()
        self.initial.wait_for(5.0)
        self.toolkit.shutdown()
        self.vm.exit(0)
        self.vm.await_termination(5.0)

    def __enter__(self) -> "MultiProcVM":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MultiProcVM(vm={self.vm!r})"
