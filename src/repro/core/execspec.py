"""One launch description, one entry point — the unified exec surface.

The codebase grew four ways to start an application: the paper's
``Application.exec`` (Section 5.1), the launcher convenience
``MultiProcVM.exec``, the cluster's ``Cluster.exec``, and the dist
layer's ``remote_exec``.  Each took a slightly different signature and
silently dropped what the others accepted (``Cluster.exec`` had no
``limits``; ``remote_exec`` had no properties; nothing agreed on how to
name the target user).

:class:`ExecSpec` is the one description: *what* to run (class name and
argv), the Section 5.1 state overrides (user, streams, cwd, properties,
limits — everything a child may refuse to inherit), and *where* to run
it (a :class:`Placement` hint).  :func:`launch` is the one verb — it
routes a spec to the local exec path, the cluster scheduler, or the dist
client, and every legacy signature now just builds a spec and calls it.

The placement kinds:

``Placement.local()``
    A child application on this VM (the default).  Returns an
    :class:`~repro.core.application.Application`.
``Placement.cluster(policy=..., untrusted=...)``
    Hand the launch to this VM's :class:`~repro.cluster.spawn.Cluster`
    scheduler.  Returns a ``ClusterApplication``.
``Placement.remote(host, port=...)``
    A specific JVM over the dist protocol.  Returns a
    ``RemoteApplication``.

All three results honour the same lifecycle surface (``wait_for``,
``wait``, ``destroy``, ``terminated``), so call sites can stay
placement-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Optional

from repro.jvm.errors import IllegalArgumentException, IllegalStateException

LOCAL = "local"
CLUSTER = "cluster"
REMOTE = "remote"


@dataclass(frozen=True)
class Placement:
    """Where a launch should run.  Build via the classmethods."""

    kind: str = LOCAL
    host: Optional[str] = None
    port: int = 7100
    policy: str = "round-robin"
    untrusted: bool = False

    @classmethod
    def local(cls) -> "Placement":
        return cls(LOCAL)

    @classmethod
    def cluster(cls, policy: str = "round-robin",
                untrusted: bool = False) -> "Placement":
        return cls(CLUSTER, policy=policy, untrusted=untrusted)

    @classmethod
    def remote(cls, host: str, port: int = 7100) -> "Placement":
        return cls(REMOTE, host=host, port=port)


#: The state-override fields forwarded to the Application constructor.
_STATE_FIELDS = ("name", "user", "stdin", "stdout", "stderr", "cwd",
                 "properties", "limits")


@dataclass(frozen=True)
class ExecSpec:
    """A complete, placement-agnostic description of one launch.

    ``user`` is a :class:`~repro.security.auth.JavaUser` for local
    launches (inherited from the parent when None, Section 5.1); for
    cluster/remote placements it is the *username string* that travels
    with ``password`` and is re-authenticated by the target VM
    (credentials travel, identity does not — Section 5.2).  A
    ``JavaUser`` given to a non-local placement contributes its name.

    ``admission_timeout`` is how long a launch may block waiting for an
    admission slot when the target VM runs an
    :class:`~repro.super.admission.AdmissionController`: ``None`` sheds
    immediately with ``AdmissionRejected`` when the VM is saturated.
    """

    class_name: str
    args: tuple = ()
    # -- Section 5.1 state overrides (None = inherit from the parent) --
    user: object = None
    password: str = ""
    stdin: object = None
    stdout: object = None
    stderr: object = None
    cwd: Optional[str] = None
    properties: object = None
    name: Optional[str] = None
    limits: object = None
    # -- policy learning + execution-state MAC --
    #: Capture this app's audit slice for policy inference (policygen).
    record_policy: bool = False
    #: Launch-time phase override (e.g. headless services that should
    #: start straight in "steady"); None keeps the kernel's default.
    phase: Optional[str] = None
    # -- thread backing --
    #: How continuation-capable threads are backed: "sched" (generator
    #: mains become tasks on the VM's event-loop scheduler — the
    #: default) or "os" (the escape hatch: the same continuations run
    #: on dedicated OS threads through drive_inline).  Plain-callable
    #: mains always get an OS thread regardless.
    threads: str = "sched"
    # -- routing + admission --
    placement: Placement = field(default_factory=Placement)
    admission_timeout: Optional[float] = None

    def __post_init__(self):
        if not self.class_name:
            raise IllegalArgumentException("ExecSpec needs a class name")
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(self.args or ()))
        if self.threads not in ("sched", "os"):
            raise IllegalArgumentException(
                f"ExecSpec.threads must be 'sched' or 'os', "
                f"not {self.threads!r}")

    # -- adapters for the three launch paths -----------------------------------

    def state_overrides(self) -> dict:
        """The non-default Section 5.1 overrides, as constructor kwargs."""
        overrides = {}
        for name in _STATE_FIELDS:
            value = getattr(self, name)
            if value is not None:
                overrides[name] = value
        return overrides

    def user_name(self) -> str:
        """The target-side username (for cluster/remote credentials)."""
        user = self.user
        if user is None:
            return ""
        return getattr(user, "name", None) or str(user)

    def with_placement(self, placement: Placement) -> "ExecSpec":
        return replace(self, placement=placement)

    def describe(self) -> str:  # pragma: no cover - cosmetic
        argv = " ".join(str(a) for a in self.args)
        return f"{self.class_name} {argv}".strip()


def spec_fields() -> tuple:
    """The ExecSpec field names (introspection for shims and tests)."""
    return tuple(f.name for f in fields(ExecSpec))


def launch(spec: ExecSpec, *, vm=None, parent=None, ctx=None):
    """Launch ``spec`` wherever its placement points.

    The one entry point the four legacy signatures now route through.
    ``vm``/``parent`` pin the launching context for local placements
    (defaulting to the caller's current application, as
    ``Application.exec`` always did); ``ctx`` is the invocation context
    used for remote placements (defaulting to the current application's).
    """
    placement = spec.placement
    if placement.kind == LOCAL:
        from repro.core.application import Application
        return Application._exec_spec(spec, vm=vm, parent=parent)

    if placement.kind == CLUSTER:
        target_vm = _resolve_vm(vm, parent, ctx)
        cluster = getattr(target_vm, "cluster", None)
        if cluster is None:
            raise IllegalStateException(
                "cluster placement needs a Cluster on this VM "
                "(construct repro.cluster.Cluster(mvm) first)")
        return cluster._exec_spec(spec, ctx=ctx)

    if placement.kind == REMOTE:
        if placement.host is None:
            raise IllegalArgumentException(
                "remote placement needs a host (Placement.remote(host))")
        from repro.dist.client import RemoteApplication
        context = ctx if ctx is not None else _current_context()
        return RemoteApplication(
            context, placement.host, placement.port, spec.user_name(),
            spec.password, spec.class_name, list(spec.args),
            stdout=spec.stdout, stderr=spec.stderr, limits=spec.limits,
            record=spec.record_policy, phase=spec.phase)

    raise IllegalArgumentException(
        f"unknown placement kind {placement.kind!r}")


def _resolve_vm(vm, parent, ctx):
    if vm is not None:
        return vm
    if parent is not None:
        return parent.vm
    if ctx is not None:
        return ctx.vm
    from repro.core.context import current_application_or_none
    application = current_application_or_none()
    if application is None:
        raise IllegalStateException(
            "launch needs a VM: pass vm=, or call from inside an "
            "application")
    return application.vm


def _current_context():
    from repro.core.context import current_application_or_none
    application = current_application_or_none()
    if application is None:
        raise IllegalStateException(
            "remote placement needs a ctx= (or a current application)")
    return application.context()
