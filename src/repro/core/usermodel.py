"""Users running Java code (Section 5.2, Feature 3).

Thin helpers over the application model: the running user is
application-wide state, inherited by child applications, and changing it is
the privileged operation the login program performs.
"""

from __future__ import annotations

from repro.core.context import current_application
from repro.security import access
from repro.security.auth import JavaUser


def running_user() -> JavaUser:
    """The user running the current application."""
    return current_application().user


def become_user(user: JavaUser) -> None:
    """Reset the current application's running user.

    Requires the ``setUser`` privilege (enforced by
    :meth:`~repro.core.application.Application.set_user`).  The login
    program calls this inside ``do_privileged`` so that only *its own* code
    source needs the grant — "it is not necessary to have the login program
    be executed by an all-powerful superuser".
    """
    current_application().set_user(user)


def become_user_privileged(user: JavaUser) -> None:
    """``do_privileged(() -> become_user(user))`` — the login idiom."""
    access.do_privileged(lambda: become_user(user))
