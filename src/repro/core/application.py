"""The Application abstraction (Section 5.1) — the paper's core contribution.

    "We define an application to be a set of Java threads. ...  Furthermore,
    an application has the following properties:

    * It has a lifetime ...
    * It is memory-protected from other applications ...
    * It is associated with a user that is running the application.
    * It holds application-wide state that is shared among all the threads
      that comprise the application ... the user identification, distinct
      standard input, standard output, and error streams, a current working
      directory, a set of properties.
    * When an application creates a child application, the current
      application-wide state of the parent is inherited by the child."

Implementation notes, mirroring the paper's own description of
``Application.exec``:

* ``exec`` creates a fresh thread group (nested under the parent
  application's group, so the system security manager's ancestry rule lets
  parents manage their children), an
  :class:`~repro.core.reload.ApplicationClassLoader` (Section 5.5), and a
  new ``main`` thread that calls ``MyClass.main(args)`` through the
  reflection API; ``exec`` returns immediately and ``wait_for`` blocks.
* The standard streams *live in the application's own System class statics*
  — the application layer merely re-points them after the reload, exactly
  as Figure 5 shows.
* ``Application.exit`` "will find the application instance that corresponds
  to the currently running thread, schedule that application for
  destruction, and block the current thread.  A background thread will
  eventually clean up the application, stop all threads, and close all
  windows that are associated with the application."  That background
  thread is the :class:`ApplicationRegistry`'s reaper.
* If an application never calls ``exit``, it is exited automatically "as
  soon as there are only daemon threads left in the application's thread
  group".
"""

from __future__ import annotations

import itertools
import threading
import time
import warnings
from dataclasses import dataclass
from typing import Callable, Optional

from repro.jvm.errors import (
    IllegalArgumentException,
    IllegalStateException,
    IllegalThreadStateException,
)
from repro.jvm.threads import JThread, ThreadGroup
from repro.sched.timers import wait_until
from repro.sched.waitobj import WaitPoint
from repro.lang.context import InvocationContext
from repro.lang.properties import Properties
from repro.lang.reflect import invoke_main
from repro.core.context import current_application_or_none
from repro.core.execspec import ExecSpec
from repro.core.reload import ApplicationClassLoader
from repro.security.auth import NULL_USER, JavaUser
from repro.security.policy import PHASE_INIT, PHASE_SHUTDOWN, PHASES
from repro.super import faults

STATE_NEW = "new"
STATE_RUNNING = "running"
STATE_EXITING = "exiting"
STATE_TERMINATED = "terminated"

#: Exit code reported when an application is killed from outside.
KILLED_EXIT_CODE = 143


@dataclass(frozen=True)
class ResourceLimits:
    """Per-application resource ceilings.

    The paper's protection model (Section 5.6) covers *access*; a real
    multi-user deployment also needs *consumption* bounds — the follow-up
    concern that later drove the Java isolate work.  ``None`` disables a
    limit.  Limits are inherited by child applications (they are
    application-wide state in the Section 5.1 sense).
    """

    max_threads: int | None = None
    max_windows: int | None = None
    max_children: int | None = None
    max_open_streams: int | None = None


@dataclass(frozen=True)
class ExitStatus:
    """The typed result of waiting an application out.

    ``code`` is the Unix-style exit code ``waitFor`` always returned;
    ``signal_like_cause`` says *how* the application ended (``None`` for
    a normal exit, ``"killed"`` for an outside ``destroy``/teardown —
    the moral equivalent of dying to a signal); ``restarts`` is how many
    times a supervisor has respawned this service (0 for unsupervised
    applications); ``duration`` is exec-to-reap wall time in seconds.
    """

    code: int
    signal_like_cause: Optional[str] = None
    restarts: int = 0
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        return self.code == 0 and self.signal_like_cause is None


class ResourceLimitExceeded(IllegalStateException):
    """An application hit one of its resource ceilings.

    Typed (enforce-and-record): ``limit`` names the
    :class:`ResourceLimits` field that was hit (``"max_threads"``, ...)
    and ``maximum`` carries the configured ceiling.  Every rejection also
    increments the per-application ``limits.rejected`` counter.
    """

    def __init__(self, message: str | None = None,
                 limit: str | None = None,
                 maximum: int | None = None):
        super().__init__(message)
        self.limit = limit
        self.maximum = maximum


class Application:
    """A set of threads with shared application-wide state (Section 5.1)."""

    _ids = itertools.count(1)

    def __init__(self, vm, class_name: Optional[str],
                 parent: Optional["Application"] = None,
                 name: Optional[str] = None,
                 user: Optional[JavaUser] = None,
                 stdin=None, stdout=None, stderr=None,
                 cwd: Optional[str] = None,
                 properties: Optional[Properties] = None,
                 auto_exit: bool = True,
                 limits: Optional[ResourceLimits] = None):
        self.vm = vm
        self.class_name = class_name
        self.app_id = next(Application._ids)
        self.name = name or (f"{class_name.rsplit('.', 1)[-1].lower()}"
                             f"#{self.app_id}" if class_name
                             else f"app#{self.app_id}")
        self.parent = parent
        self.children: list[Application] = []
        #: Auto-exit on last non-daemon thread; disabled for the synthetic
        #: initial application that hosts the launcher.
        self.auto_exit = auto_exit

        # --- inheritable application-wide state (Section 5.1) ---
        if parent is not None:
            user = user if user is not None else parent.user
            stdin = stdin if stdin is not None else parent.stdin
            stdout = stdout if stdout is not None else parent.stdout
            stderr = stderr if stderr is not None else parent.stderr
            cwd = cwd if cwd is not None else parent.cwd
            properties = properties if properties is not None \
                else parent.properties.copy()
            limits = limits if limits is not None else parent.limits
        self._user = user if user is not None else NULL_USER
        self.limits = limits if limits is not None else ResourceLimits()
        # Launching a child as a *different* user is equivalent to setting
        # the user (Section 5.2): it needs the same privilege.
        if parent is not None and self._user != parent.user:
            sm = vm.security_manager
            if sm is not None:
                sm.check_set_user()
        self.cwd = cwd if cwd is not None else vm.os_context.cwd
        self.properties = properties if properties is not None \
            else Properties()

        # --- thread group (Figure 3) ---
        parent_group = parent.thread_group if parent is not None \
            else vm.main_group
        self.thread_group = ThreadGroup(parent_group,
                                        f"app-{self.name}")
        self.thread_group.application = self

        # --- own System copy (Section 5.5 / Figure 5) ---
        self.loader = ApplicationClassLoader(vm.boot_loader, self.name)
        self.system_class = self.loader.load_class("java.lang.System")
        self.system_class.statics["in"] = stdin if stdin is not None \
            else vm.stdin
        self.system_class.statics["out"] = stdout if stdout is not None \
            else vm.out
        self.system_class.statics["err"] = stderr if stderr is not None \
            else vm.err

        # --- lifecycle ---
        self._state = STATE_NEW
        #: Execution phase for the phase-conditioned MAC: ``init`` at
        #: construction, ``steady`` at first AWT dispatch (or by explicit
        #: :meth:`advance_phase`), ``shutdown`` once exit begins.
        self._phase = PHASE_INIT
        #: True while this application's audit slice is being captured
        #: for policy inference (set by the policy recorder).
        self.policy_recording = False
        self.exit_code: Optional[int] = None
        #: How the application ended: None (normal exit) or "killed"
        #: (destroyed from outside / torn down with its parent).
        self.exit_cause: Optional[str] = None
        #: Times respawned by a supervisor (0 for unsupervised apps).
        self.restarts = 0
        self._started_monotonic: Optional[float] = None
        self._ended_monotonic: Optional[float] = None
        self._cond = WaitPoint()
        self._non_daemon = 0
        self._threads: list[JThread] = []
        self.main_thread: Optional[JThread] = None
        #: How this application's continuation-capable threads are backed:
        #: "sched" (the default — generator mains run as tasks on the
        #: VM's event loop) or "os" (ExecSpec(threads="os"): the same
        #: continuation programs run on dedicated OS threads through
        #: drive_inline).  Plain-callable mains always get an OS thread.
        self._threads_mode = "sched"

        # --- owned resources, torn down by the reaper ---
        self.windows: list = []
        self.opened_streams: list = []
        self.event_queue = None            # set by PerApplicationDispatcher
        self.event_dispatch_thread = None  # set by PerApplicationDispatcher
        #: Run by the reaper before threads are stopped (atexit-style).
        self.exit_hooks: list[Callable[[], None]] = []
        #: Lifetime accounting (threads ever adopted, streams ever opened,
        #: windows ever shown, children ever launched) — the observability
        #: counterpart of the resource limits.
        self.stats = {"threads": 0, "streams": 0, "windows": 0,
                      "children": 0}

        #: Cross-thread lifecycle span: begun by ``_start`` on the
        #: launching thread, ended by the reaper in ``_teardown``.
        self._lifecycle_span = None

        if parent is not None:
            maximum = parent.limits.max_children
            if maximum is not None and len(parent.children) >= maximum:
                raise parent._limit_rejected("max_children", "child",
                                             maximum)
            parent.children.append(self)
            parent.stats["children"] += 1
        registry = vm.application_registry
        if registry is not None:
            registry.register(self)

    # ------------------------------------------------------------------
    # launching (the paper's usage example, Section 5.1)
    # ------------------------------------------------------------------

    @classmethod
    def exec(cls, class_name: str, args: Optional[list[str]] = None,
             vm=None, parent: Optional["Application"] = None,
             **state_overrides) -> "Application":
        """Deprecated shim: build an :class:`ExecSpec` and launch it.

        ``state_overrides`` may override any inheritable state: ``user``,
        ``stdin``/``stdout``/``stderr``, ``cwd``, ``properties``, ``name``.
        The paper::

            Application app = Application.exec("MyClass", args);
            app.waitFor();

        New code should say the same thing through the unified surface::

            from repro import ExecSpec, launch
            app = launch(ExecSpec("MyClass", args))
        """
        warnings.warn(
            "Application.exec() is deprecated; use "
            "repro.launch(ExecSpec(...))", DeprecationWarning, stacklevel=2)
        spec = ExecSpec(class_name, tuple(args or ()), **state_overrides)
        return cls._exec_spec(spec, vm=vm, parent=parent)

    @classmethod
    def _exec_spec(cls, spec: ExecSpec, vm=None,
                   parent: Optional["Application"] = None) -> "Application":
        """The local launch choke point every surface routes through.

        Resolves the launching context exactly as ``exec`` always did,
        then — in order — offers the ``app.start`` fault point, asks
        admission control (when the VM runs it) for a slot, constructs
        the application, and starts its main thread.  The admission
        ticket rides the application's exit hooks, so the slot frees
        when the reaper runs.
        """
        if parent is None:
            parent = current_application_or_none()
        if vm is None:
            if parent is None:
                raise IllegalArgumentException(
                    "exec needs a VM when no application is current")
            vm = parent.vm
        if parent is None and vm.application_registry is not None:
            parent = vm.application_registry.initial
        faults.hit(faults.POINT_APP_START, class_name=spec.class_name,
                   vm=vm)
        ticket = None
        admission = vm.admission
        if admission is not None:
            account = spec.user_name() \
                or (parent.user.name if parent is not None else "")
            ticket = admission.admit(account or "<null>",
                                     timeout=spec.admission_timeout)
        try:
            application = cls(vm, spec.class_name, parent=parent,
                              **spec.state_overrides())
            application._threads_mode = spec.threads
            if ticket is not None:
                application.add_exit_hook(ticket.release)
            if spec.phase is not None:
                # A launch-time phase override (e.g. headless services
                # started straight into "steady").
                application._advance_phase(spec.phase, strict=False)
            if spec.record_policy:
                from repro.policytool.recorder import recorder_for
                recorder_for(vm).start(application)
            application._start(list(spec.args))
        except BaseException:
            if ticket is not None:
                ticket.release()
            raise
        return application

    def _start(self, args: list[str]) -> None:
        with self._cond:
            if self._state != STATE_NEW:
                raise IllegalStateException(
                    f"application {self.name} already started")
            self._state = STATE_RUNNING
            self._started_monotonic = time.monotonic()
        tracer = self.vm.telemetry.tracer
        # The exec span lives on the *launching* thread, so a child's exec
        # nests inside the parent's app.main span; the lifecycle span
        # covers exec-to-reap and is closed by the reaper in _teardown.
        exec_span = tracer.span("app.exec", app=self.name,
                                cls=self.class_name)
        self._lifecycle_span = tracer.begin_span(
            "app.lifecycle", app=self.name, cls=self.class_name,
            user=self._user.name)
        with exec_span:
            jclass = self.loader.load_class(self.class_name)
            ctx = InvocationContext(self.vm, self.loader, jclass, app=self)
            exec_parent = exec_span.span_id

            import inspect
            main_fn = jclass.material.members.get("main")
            main_is_continuation = main_fn is not None \
                and inspect.isgeneratorfunction(main_fn)
            backing = None

            if main_is_continuation:
                # Continuation main: the body is itself a generator, so
                # the JThread facade routes it onto the VM's event loop
                # (or drives it inline on an OS thread when
                # ExecSpec(threads="os") asked for one).  The app.main
                # span is begun/ended explicitly — a ``with`` held
                # across yields would corrupt the loop thread's
                # thread-local span nesting.
                def body():
                    span = tracer.begin_span("app.main", app=self.name,
                                             parent_id=exec_parent,
                                             cls=self.class_name)
                    try:
                        result = yield from invoke_main(jclass, ctx, args)
                    finally:
                        span.end()
                    if isinstance(result, int) and result != 0:
                        self._begin_exit(result)

                if self._threads_mode == "os":
                    backing = "os"
            else:
                def body() -> None:
                    with tracer.span("app.main", app=self.name,
                                     parent_id=exec_parent,
                                     cls=self.class_name):
                        result = invoke_main(jclass, ctx, args)
                    # A non-zero integer return from main becomes the exit
                    # code (the auto-exit path reports 0 for a normal
                    # return).
                    if isinstance(result, int) and result != 0:
                        self._begin_exit(result)

            # "the main method of class MyClass is called ... within a new
            # thread in the newly-created thread group.  Since the main
            # method is executed in its own thread, the exec method returns
            # immediately."
            self.main_thread = JThread(target=body,
                                       name=f"main-{self.name}",
                                       group=self.thread_group,
                                       daemon=False,
                                       backing=backing)
            self.main_thread.start()

    def context(self) -> InvocationContext:
        """A context for host code to act inside this application."""
        return InvocationContext(self.vm, self.loader, None, app=self)

    # ------------------------------------------------------------------
    # application-wide state accessors
    # ------------------------------------------------------------------

    @property
    def user(self) -> JavaUser:
        return self._user

    def set_user(self, user: JavaUser) -> None:
        """Reset the running user (Section 5.2).

        "Special privileges are needed to set the user, and these
        privileges are not normally granted to applications."  The check is
        the system security manager's ``checkSetUser`` (a
        ``RuntimePermission("setUser")``), which the login program's code
        source is granted in the policy.
        """
        sm = self.vm.security_manager
        if sm is not None:
            sm.check_set_user()
        self._user = user

    @property
    def stdin(self):
        return self.system_class.statics["in"]

    @property
    def stdout(self):
        return self.system_class.statics["out"]

    @property
    def stderr(self):
        return self.system_class.statics["err"]

    def set_streams(self, stdin=None, stdout=None, stderr=None) -> None:
        """Repoint standard streams (the shell's redirection mechanism)."""
        if stdin is not None:
            self.system_class.statics["in"] = stdin
        if stdout is not None:
            self.system_class.statics["out"] = stdout
        if stderr is not None:
            self.system_class.statics["err"] = stderr

    def set_cwd(self, path: str) -> None:
        self.cwd = path

    # ------------------------------------------------------------------
    # thread accounting (application lifetime, Section 5.1)
    # ------------------------------------------------------------------

    def _limit_rejected(self, limit: str, kind_word: str,
                        maximum: int) -> ResourceLimitExceeded:
        """Enforce-and-record: count the rejection, build the typed error."""
        self.vm.telemetry.metrics.counter(
            "limits.rejected", app=self.name, limit=limit).inc()
        return ResourceLimitExceeded(
            f"application {self.name} reached its {kind_word} limit "
            f"({maximum})", limit=limit, maximum=maximum)

    def adopt_thread(self, thread: JThread) -> None:
        """Called when a thread starts inside this application's groups."""
        with self._cond:
            if self._state in (STATE_EXITING, STATE_TERMINATED):
                raise IllegalThreadStateException(
                    f"application {self.name} is {self._state}")
            maximum = self.limits.max_threads
            live = sum(1 for t in self._threads if t.is_alive())
            if maximum is not None and live >= maximum:
                raise self._limit_rejected("max_threads", "thread", maximum)
            self._threads.append(thread)
            self.stats["threads"] += 1
            if not thread.daemon:
                self._non_daemon += 1
        metrics = self.vm.telemetry.metrics
        metrics.counter("app.threads.started", app=self.name).inc()
        metrics.gauge("app.threads.live", app=self.name).set(live + 1)
        thread.finish_hooks.append(self._on_thread_finished)

    def _on_thread_finished(self, thread: JThread) -> None:
        auto = False
        with self._cond:
            if thread in self._threads:
                self._threads.remove(thread)
            live = sum(1 for t in self._threads if t.is_alive())
            if not thread.daemon:
                self._non_daemon -= 1
                if (self._non_daemon <= 0 and self.auto_exit
                        and self._state == STATE_RUNNING):
                    auto = True
            self._cond.notify_all()
        self.vm.telemetry.metrics.gauge(
            "app.threads.live", app=self.name).set(live)
        if auto:
            # "If the application does not explicitly call exit(), then the
            # JVM will call the exit method as soon as there are only
            # daemon threads left in the application's thread group."
            self._begin_exit(0)

    def live_threads(self) -> list[JThread]:
        with self._cond:
            return [t for t in self._threads if t.is_alive()]

    @property
    def non_daemon_count(self) -> int:
        with self._cond:
            return self._non_daemon

    # ------------------------------------------------------------------
    # owned resources
    # ------------------------------------------------------------------

    def register_window(self, window) -> None:
        with self._cond:
            maximum = self.limits.max_windows
            if (maximum is not None and window not in self.windows
                    and len(self.windows) >= maximum):
                raise self._limit_rejected("max_windows", "window", maximum)
            if window not in self.windows:
                self.windows.append(window)
                self.stats["windows"] += 1

    def unregister_window(self, window) -> None:
        with self._cond:
            if window in self.windows:
                self.windows.remove(window)

    def register_opened_stream(self, stream) -> None:
        """Track a stream this application opened (Section 5.1 close rule)."""
        with self._cond:
            maximum = self.limits.max_open_streams
            if maximum is not None:
                open_now = sum(1 for s in self.opened_streams
                               if not s.closed)
                if open_now >= maximum:
                    raise self._limit_rejected("max_open_streams",
                                               "open-stream", maximum)
            self.opened_streams.append(stream)
            self.stats["streams"] += 1

    def add_exit_hook(self, hook: Callable[[], None]) -> None:
        """Register a callback the reaper runs at application exit."""
        self.exit_hooks.append(hook)

    # ------------------------------------------------------------------
    # execution phases (the execution-state MAC)
    # ------------------------------------------------------------------

    @property
    def phase(self) -> str:
        """Current lifecycle phase: ``init``, ``steady`` or ``shutdown``."""
        return self._phase

    def advance_phase(self, phase: str) -> bool:
        """Move this application forward to ``phase``.

        Phases only advance (``init`` → ``steady`` → ``shutdown``), so an
        app can *drop* phase-conditioned privileges but never regain them.
        An application may advance itself; anyone else needs the same
        standing as for :meth:`destroy` (ancestor, same user, or the
        ``modifyApplication`` permission).  Returns True if the phase
        changed.
        """
        caller = current_application_or_none()
        if (caller is not self and not self._is_ancestor(caller)
                and caller.user != self._user):
            sm = self.vm.security_manager
            if sm is not None:
                sm.check_modify_application(self)
        return self._advance_phase(phase)

    def _advance_phase(self, phase: str, strict: bool = True) -> bool:
        """Kernel-side phase advance; with ``strict=False`` a backwards
        request is a no-op (used by kernel transition points that may race
        with shutdown)."""
        if phase not in PHASES:
            raise IllegalArgumentException(f"unknown phase {phase!r}")
        with self._cond:
            current_index = PHASES.index(self._phase)
            target_index = PHASES.index(phase)
            if target_index <= current_index:
                if target_index < current_index and strict:
                    raise IllegalStateException(
                        f"cannot move application {self.name} back from "
                        f"{self._phase} to {phase}")
                return False
            self._phase = phase
        # No cache invalidation: per-phase decision memos coexist inside
        # each protection domain, so a transition costs nothing beyond
        # first-touch misses in the new phase.
        telemetry = self.vm.telemetry
        telemetry.tracer.event("app.phase", app=self.name, phase=phase)
        telemetry.metrics.counter("app.phase.transitions",
                                  app=self.name, phase=phase).inc()
        return True

    # ------------------------------------------------------------------
    # exit (Section 5.1)
    # ------------------------------------------------------------------

    @staticmethod
    def exit(status: int = 0) -> None:
        """Exit the *current* application and never return.

        "The static exit method will find the application instance that
        corresponds to the currently running thread, schedule that
        application for destruction, and block the current thread."
        """
        application = current_application_or_none()
        if application is None:
            raise IllegalStateException(
                "Application.exit called outside any application")
        application._begin_exit(status)
        # Block until the reaper stops this thread ("we will never get
        # here" in the paper's sample code).
        while True:
            JThread.sleep(3600.0)

    def destroy(self, status: int = KILLED_EXIT_CODE) -> None:
        """Exit this application from outside (the ``kill`` utility).

        Allowed when the caller's application is an ancestor (the same
        ancestry rule the system security manager uses for threads) or
        runs as the *same user* (the Unix kill rule, the natural reading
        of the paper's user model); otherwise requires the
        ``modifyApplication`` runtime permission.
        """
        caller = current_application_or_none()
        if (caller is not self and not self._is_ancestor(caller)
                and caller.user != self._user):
            sm = self.vm.security_manager
            if sm is not None:
                sm.check_modify_application(self)
        with self._cond:
            if self._state not in (STATE_EXITING, STATE_TERMINATED):
                self.exit_cause = "killed"
        self._begin_exit(status)

    def _is_ancestor(self, caller: Optional["Application"]) -> bool:
        if caller is None:
            return True  # host / system threads are trusted
        return caller.thread_group.parent_of(self.thread_group)

    def _begin_exit(self, status: int) -> None:
        with self._cond:
            if self._state in (STATE_EXITING, STATE_TERMINATED):
                return
            self._state = STATE_EXITING
            self.exit_code = status
            self._cond.notify_all()
        self._advance_phase(PHASE_SHUTDOWN, strict=False)
        self.vm.telemetry.tracer.event("app.exit", app=self.name,
                                       code=status)
        registry = self.vm.application_registry
        if registry is not None:
            registry.schedule_destruction(self)
        else:
            self._teardown()

    def _teardown(self) -> None:
        """Reaper work: hooks, then children, windows, threads, streams."""
        for hook in list(self.exit_hooks):
            try:
                hook()
            except BaseException as exc:  # noqa: BLE001 - reaper survives
                self.vm.report_uncaught(None, exc)
        for child in list(self.children):
            if not child.terminated:
                child._begin_exit_for_teardown()
                child._teardown()
        toolkit = self.vm.toolkit
        if toolkit is not None:
            toolkit.close_windows_of(self)
        self.thread_group.stop_all()
        for thread in self.live_threads():
            thread.join(2.0)
        for stream in list(self.opened_streams):
            if not stream.closed:
                try:
                    stream._close_impl()
                finally:
                    stream.closed = True
        with self._cond:
            self._state = STATE_TERMINATED
            if self.exit_code is None:
                self.exit_code = KILLED_EXIT_CODE
                self.exit_cause = "killed"
            self._ended_monotonic = time.monotonic()
            self._cond.notify_all()
        shared = self.vm.shared_objects
        if shared is not None:
            shared.drop_bindings_of(self)
        registry = self.vm.application_registry
        if registry is not None:
            registry.unregister(self)
        if self.parent is not None and self in self.parent.children:
            self.parent.children.remove(self)
        telemetry = self.vm.telemetry
        telemetry.tracer.event("app.reaped", app=self.name,
                               code=self.exit_code)
        if self._lifecycle_span is not None:
            self._lifecycle_span.end(exit_code=self.exit_code)
        telemetry.metrics.counter("apps.reaped").inc()

    def _begin_exit_for_teardown(self) -> None:
        with self._cond:
            if self._state in (STATE_EXITING, STATE_TERMINATED):
                return
            self._state = STATE_EXITING
            if self.exit_code is None:
                self.exit_code = KILLED_EXIT_CODE
                self.exit_cause = "killed"
            self._cond.notify_all()
        self._advance_phase(PHASE_SHUTDOWN, strict=False)

    # ------------------------------------------------------------------
    # waiting and inspection
    # ------------------------------------------------------------------

    def wait_for(self, timeout: Optional[float] = None) -> Optional[int]:
        """Block until this application terminates; returns its exit code.

        The paper's ``app.waitFor()`` (line 3 of the usage example).

        Soft-deprecated: the bare int stays for compatibility, but new
        code should prefer :meth:`wait`, whose :class:`ExitStatus`
        result also says *how* the application ended.
        """
        with self._cond:
            done = wait_until(
                self._cond, lambda: self._state == STATE_TERMINATED,
                timeout=timeout)
            if not done:
                return None
            return self.exit_code

    def wait(self, timeout: Optional[float] = None) -> Optional[ExitStatus]:
        """Block like :meth:`wait_for`, but return a typed result.

        None on timeout, otherwise an :class:`ExitStatus` carrying the
        exit code, the cause (``"killed"`` vs a normal exit), the
        supervisor restart count, and exec-to-reap duration.
        """
        code = self.wait_for(timeout)
        if code is None:
            return None
        with self._cond:
            started = self._started_monotonic
            ended = self._ended_monotonic
            duration = (ended - started) if started is not None \
                and ended is not None else 0.0
            return ExitStatus(code=code,
                              signal_like_cause=self.exit_cause,
                              restarts=self.restarts,
                              duration=duration)

    @property
    def state(self) -> str:
        with self._cond:
            return self._state

    @property
    def running(self) -> bool:
        return self.state == STATE_RUNNING

    @property
    def terminated(self) -> bool:
        return self.state == STATE_TERMINATED

    def _is_terminal(self) -> bool:
        """Lock-free terminal predicate for scheduler wait-objects.

        :func:`repro.sched.ops.wait_app` parks on :attr:`_cond` with this
        predicate; the caller already holds the wait-point lock, so the
        raw field read is safe.
        """
        return self._state == STATE_TERMINATED

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Application(id={self.app_id}, name={self.name!r}, "
                f"user={self._user.name!r}, state={self.state})")


class ApplicationRegistry:
    """The VM's application table plus the background reaper (Section 5.1)."""

    def __init__(self, vm):
        self.vm = vm
        self._applications: dict[int, Application] = {}
        self._lock = threading.RLock()
        self._queue: list[Application] = []
        self._queue_cond = threading.Condition()
        self._reaper: Optional[JThread] = None
        #: Synthetic root application: the context the VM launcher itself
        #: runs in (the "null user for bootstrapping" of Section 5.2).
        self.initial: Optional[Application] = None

    def start(self) -> "ApplicationRegistry":
        self._reaper = JThread(target=self._reaper_body,
                               name="ApplicationReaper",
                               group=self.vm.root_group, daemon=True)
        self._reaper.start()
        return self

    def register(self, application: Application) -> None:
        with self._lock:
            self._applications[application.app_id] = application
            live = len(self._applications)
        metrics = self.vm.telemetry.metrics
        metrics.counter("apps.launched").inc()
        metrics.gauge("apps.live").set(live)

    def unregister(self, application: Application) -> None:
        with self._lock:
            self._applications.pop(application.app_id, None)
            live = len(self._applications)
        self.vm.telemetry.metrics.gauge("apps.live").set(live)

    def applications(self, check: bool = True) -> list[Application]:
        """A snapshot of live applications (the ``ps`` table)."""
        if check:
            sm = self.vm.security_manager
            if sm is not None:
                sm.check_read_application_table()
        with self._lock:
            return sorted(self._applications.values(),
                          key=lambda a: a.app_id)

    def find(self, app_id: int) -> Optional[Application]:
        with self._lock:
            return self._applications.get(app_id)

    def schedule_destruction(self, application: Application) -> None:
        with self._queue_cond:
            if application not in self._queue:
                self._queue.append(application)
                self._queue_cond.notify_all()

    def _reaper_body(self) -> None:
        """"A background thread will eventually clean up the application,
        stop all threads, and close all windows"."""
        while True:
            with self._queue_cond:
                wait_until(self._queue_cond,
                                   lambda: bool(self._queue))
                application = self._queue.pop(0)
            try:
                application._teardown()
            except BaseException as exc:  # noqa: BLE001 - reaper survives
                self.vm.report_uncaught(JThread.current_or_none(), exc)
