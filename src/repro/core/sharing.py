"""Shared objects between applications (Section 8, future work).

    "Moreover, in our multi-processing environment, it is very appealing to
    use shared object as an inter-application communication mechanism.
    However, such sharing of objects between different applications in
    different name spaces is still a delicate task and its impact on the
    correctness of the Java type system needs more research [2]."

This module implements that mechanism *with* the type-safety guard the
paper (via Dean's work on static typing with dynamic linking) calls for:

* a :class:`SharedObjectSpace` is a VM-wide name service where applications
  ``bind`` and ``lookup`` objects;
* *untyped* values (strings, bytes, numbers, tuples of those) are always
  safe to share;
* *typed* objects (:class:`~repro.jvm.classloading.JObject` instances of a
  registered class) are only handed out if the consumer's class loader
  resolves the class name to the **same class** the object was created
  with.  An application looking up an object whose class was re-defined in
  its own name space (e.g. anything reloadable, Section 5.5) gets a
  ``ClassCastException`` — "the different incarnations ... are just
  different classes that happen to have the same name", and mixing them
  would break the type system exactly as the paper warns.

Binding and lookup are permission-guarded (``shareObject.bind`` /
``shareObject.lookup`` runtime permissions), so the policy decides which
code may use cross-application channels at all; unbinding follows the
ownership rule used elsewhere (owner or ancestor application).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

from repro.core.context import current_application_or_none
from repro.jvm.classloading import JObject
from repro.jvm.errors import (
    ClassCastException,
    IllegalArgumentException,
    SecurityException,
)
from repro.security.permissions import RuntimePermission

#: Types that carry no class identity and are always safe to share.
UNTYPED_SAFE = (str, bytes, int, float, bool, type(None))


@dataclass
class _Binding:
    name: str
    value: object
    owner: object  # Application or None (host/system)


class SharedObjectSpace:
    """The VM-wide shared-object name service."""

    def __init__(self, vm):
        self.vm = vm
        self._bindings: dict[str, _Binding] = {}
        self._lock = threading.RLock()

    # -- security plumbing ---------------------------------------------------

    def _check(self, action: str) -> None:
        sm = self.vm.security_manager
        if sm is not None:
            sm.check_permission(RuntimePermission(f"shareObject.{action}"))

    @staticmethod
    def _is_shareable(value: object) -> bool:
        if isinstance(value, JObject):
            return True
        if isinstance(value, UNTYPED_SAFE):
            return True
        if isinstance(value, tuple):
            return all(isinstance(item, UNTYPED_SAFE) for item in value)
        return False

    # -- the API --------------------------------------------------------------

    def bind(self, name: str, value: object, replace: bool = False) -> None:
        """Publish ``value`` under ``name`` (owned by the calling app)."""
        self._check("bind")
        if not self._is_shareable(value):
            raise IllegalArgumentException(
                f"value of type {type(value).__name__} is not shareable "
                "(use JObject for typed objects)")
        owner = current_application_or_none()
        with self._lock:
            existing = self._bindings.get(name)
            if existing is not None and not replace:
                raise IllegalArgumentException(
                    f"name {name!r} is already bound")
            if existing is not None and not self._may_manage(existing):
                raise SecurityException(
                    f"only the owner may rebind {name!r}")
            self._bindings[name] = _Binding(name, value, owner)

    def lookup(self, name: str, ctx=None) -> object:
        """Retrieve the object bound to ``name`` — type-safely.

        ``ctx`` supplies the consumer's name space (its class loader); it
        defaults to the current application's.  Typed objects whose class
        resolves differently in the consumer's name space raise
        :class:`ClassCastException` instead of leaking a foreign class
        identity into the consumer.
        """
        self._check("lookup")
        with self._lock:
            binding = self._bindings.get(name)
        if binding is None:
            raise IllegalArgumentException(f"nothing bound under {name!r}")
        value = binding.value
        if isinstance(value, JObject):
            loader = self._consumer_loader(ctx)
            if loader is not None:
                resolved = loader.load_class(value.jclass.name)
                if resolved is not value.jclass:
                    raise ClassCastException(
                        f"class {value.jclass.name} is a different class "
                        f"in the consumer's name space (defining loaders: "
                        f"{value.jclass.loader.name!r} vs "
                        f"{resolved.loader.name!r})")
        return value

    def _consumer_loader(self, ctx):
        if ctx is not None:
            return ctx.loader
        application = current_application_or_none()
        if application is not None:
            return application.loader
        return None

    def unbind(self, name: str) -> None:
        """Remove a binding (owner or ancestor application only)."""
        self._check("bind")
        with self._lock:
            binding = self._bindings.get(name)
            if binding is None:
                return
            if not self._may_manage(binding):
                raise SecurityException(
                    f"only the owner may unbind {name!r}")
            del self._bindings[name]

    def _may_manage(self, binding: _Binding) -> bool:
        caller = current_application_or_none()
        owner = binding.owner
        if caller is None or owner is None:
            return True  # host/system code, or a host-owned binding
        if caller is owner:
            return True
        return caller.thread_group.parent_of(owner.thread_group)

    def names(self) -> list[str]:
        self._check("lookup")
        with self._lock:
            return sorted(self._bindings)

    def drop_bindings_of(self, application) -> None:
        """Reaper hook: re-parent a terminated application's bindings.

        Like System V IPC objects, shared bindings outlive their creator
        (otherwise the natural produce-then-exit / consume-later pattern
        would be impossible); management rights pass to the creator's
        parent application.
        """
        with self._lock:
            for binding in self._bindings.values():
                if binding.owner is application:
                    binding.owner = application.parent

    def __len__(self) -> int:
        with self._lock:
            return len(self._bindings)
