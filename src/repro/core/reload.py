"""Reloading system classes per application (Section 5.5, Figure 5).

    "We provide each application with the illusion that it has the JVM all
    for itself. ...  In our implementation, every application gets its own
    copy of the System class.  We use a special class loader to re-load and
    re-define the System class, albeit from the same class material.  Since
    we use a new class loader for every application, to the JVM, the
    different incarnations of the System class are just different classes
    that happen to have the same name."

:class:`ApplicationClassLoader` is that special loader.  Names in
:data:`RELOADABLE_CLASSES` are *defined afresh* in the application's own
name space (own statics: ``in``/``out``/``err``, the application security
manager slot); everything else — including the shared ``SystemProperties``
— delegates to the parent loader as usual.

The paper notes the list of reloadable classes is open-ended ("it is
necessary to go through the entire JDK class library and find out which of
the JVM-wide state truly is JVM-wide"); the set is therefore mutable and a
per-loader extension hook exists for experiments.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.jvm.classloading import ClassLoader, JClass
from repro.lang import system as system_mod

#: Class names re-defined per application (Section 5.5).  Extendable: the
#: paper's future work asks what else belongs here.
RELOADABLE_CLASSES: set[str] = {system_mod.CLASS_NAME}


class ApplicationClassLoader(ClassLoader):
    """One per application: re-defines the reloadable set, delegates rest."""

    def __init__(self, parent: ClassLoader, app_name: str,
                 extra_reloadable: Optional[Iterable[str]] = None):
        super().__init__(parent.registry, parent=parent,
                         name=f"app:{app_name}")
        self.app_name = app_name
        self._reloadable = set(RELOADABLE_CLASSES)
        if extra_reloadable:
            self._reloadable.update(extra_reloadable)

    @property
    def reloadable(self) -> frozenset[str]:
        return frozenset(self._reloadable)

    def load_class(self, name: str) -> JClass:
        if name in self._reloadable:
            # Hold the loader lock across the lookup *and* the define: a
            # released-and-reacquired lock let two threads of one
            # application race past the ``_defined`` check and both run
            # the define path (double-counting reload metrics, and handing
            # one of them a class whose static init had not finished).
            # The RLock makes the nested define_class acquisition, and
            # any loads the static initializer performs on this same
            # loader, re-entrant.
            with self._lock:
                already = self._defined.get(name)
                if already is not None:
                    return already
                # Re-define from the same class material, bypassing
                # delegation: the new JClass has its own statics and its
                # own identity.
                material = self.registry.get(name)
                jclass = self.define_class(material)
            vm = self.vm
            if vm is not None:
                metrics = vm.telemetry.metrics
                metrics.counter("reload.classes", app=self.app_name).inc()
                metrics.counter("reload.bytes",
                                app=self.app_name).inc(material.size())
            return jclass
        return super().load_class(name)
