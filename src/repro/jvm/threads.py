"""Threads and thread groups for the simulated JVM.

Section 5.1 of the paper defines an application as "a set of Java threads"
rooted in a per-application thread group, and Section 3.1 describes the JVM
lifetime rule (Figure 1): the JVM exits once the last *non-daemon* thread has
finished, stopping any remaining daemon threads "in the middle of whatever
they were doing".

This module supplies both primitives:

* :class:`ThreadGroup` — a tree of groups; ancestry between groups is the
  basis of the system security manager's thread-access policy (Section 5.6).
* :class:`JThread` — a Java-style thread wrapping a Python thread, with
  daemon/non-daemon accounting, interruption, cooperative stop, and an
  inherited access-control context captured at creation time (as in
  JDK 1.2's ``AccessController``).

Python threads cannot be killed asynchronously, so ``stop()`` is cooperative:
it raises :class:`~repro.jvm.errors.ThreadDeath` at the next *stop point*.
Every blocking primitive in this library (piped streams, event queues,
``sleep``, ``join``, application waits) is a stop point.  This matches the
paper's own machinery — its background reaper "will eventually clean up the
application" rather than killing threads instantaneously.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Iterable, Optional

from repro.jvm.errors import (
    IllegalArgumentException,
    IllegalStateException,
    IllegalThreadStateException,
    InterruptedException,
    JavaThrowable,
    ThreadDeath,
)

#: Granularity (seconds) at which blocking primitives re-check interruption.
POLL_INTERVAL = 0.01

# Maps live Python threads to their JThread wrapper.
_current_jthreads: dict[int, "JThread"] = {}
_registry_lock = threading.Lock()

# Single coarse lock guarding the thread-group tree.  The tree is small and
# mutations are rare (application launch/exit), so one lock keeps the
# invariants simple.
_tree_lock = threading.RLock()


class ThreadGroup:
    """A node in the thread-group tree.

    Groups form the backbone of the application model: the paper's system
    security manager allows thread ``T`` to access thread ``U`` only if
    ``T``'s group is an *ancestor* of ``U``'s group (Section 5.6), and each
    application's threads all live inside the application's own group
    (Section 5.1, Figure 3).
    """

    def __init__(self, parent: Optional["ThreadGroup"], name: str,
                 daemon: bool = False):
        if parent is None and name != "system":
            # Only the VM boot sequence creates the root group.
            raise IllegalArgumentException(
                "only the root group 'system' may have no parent")
        self.name = name
        self.parent = parent
        self.daemon = daemon
        self._subgroups: list[ThreadGroup] = []
        self._threads: list[JThread] = []
        self._destroyed = False
        self.vm = parent.vm if parent is not None else None
        if parent is not None:
            parent._add_group(self)

    # -- tree structure ----------------------------------------------------

    def _add_group(self, group: "ThreadGroup") -> None:
        with _tree_lock:
            if self._destroyed:
                raise IllegalThreadStateException(
                    f"thread group {self.name} has been destroyed")
            self._subgroups.append(group)

    def _remove_group(self, group: "ThreadGroup") -> None:
        with _tree_lock:
            if group in self._subgroups:
                self._subgroups.remove(group)

    def _add_thread(self, thread: "JThread") -> None:
        with _tree_lock:
            if self._destroyed:
                raise IllegalThreadStateException(
                    f"thread group {self.name} has been destroyed")
            self._threads.append(thread)

    def _remove_thread(self, thread: "JThread") -> None:
        with _tree_lock:
            if thread in self._threads:
                self._threads.remove(thread)

    def parent_of(self, group: Optional["ThreadGroup"]) -> bool:
        """Return True if this group is ``group`` or an ancestor of it.

        This is ``java.lang.ThreadGroup.parentOf`` and is the predicate the
        system security manager uses for its thread-access policy.
        """
        while group is not None:
            if group is self:
                return True
            group = group.parent
        return False

    @property
    def destroyed(self) -> bool:
        return self._destroyed

    def destroy(self) -> None:
        """Destroy this (empty) group and remove it from its parent."""
        with _tree_lock:
            if self._destroyed:
                raise IllegalThreadStateException(
                    f"thread group {self.name} already destroyed")
            if any(t.is_alive() for t in self._threads):
                raise IllegalThreadStateException(
                    f"thread group {self.name} still has live threads")
            for sub in list(self._subgroups):
                sub.destroy()
            self._destroyed = True
            if self.parent is not None:
                self.parent._remove_group(self)

    # -- enumeration ------------------------------------------------------

    def enumerate_threads(self, recurse: bool = True) -> list["JThread"]:
        """Return live threads in this group (and subgroups if ``recurse``)."""
        with _tree_lock:
            found = [t for t in self._threads if t.is_alive()]
            if recurse:
                for sub in self._subgroups:
                    found.extend(sub.enumerate_threads(recurse=True))
            return found

    def enumerate_groups(self, recurse: bool = True) -> list["ThreadGroup"]:
        with _tree_lock:
            found = list(self._subgroups)
            if recurse:
                for sub in self._subgroups:
                    found.extend(sub.enumerate_groups(recurse=True))
            return found

    def active_count(self) -> int:
        return len(self.enumerate_threads(recurse=True))

    def non_daemon_count(self) -> int:
        """Number of live non-daemon threads in this group's subtree.

        The application-exit rule of Section 5.1 ("as soon as there are only
        daemon threads left in the application's thread group") is evaluated
        over exactly this count.
        """
        return sum(1 for t in self.enumerate_threads(recurse=True)
                   if not t.daemon)

    # -- group-wide operations ---------------------------------------------

    def interrupt(self) -> None:
        """Interrupt every live thread in the subtree."""
        for thread in self.enumerate_threads(recurse=True):
            thread.interrupt()

    def stop_all(self) -> None:
        """Request cooperative stop of every live thread in the subtree.

        Used by the application reaper (Section 5.1): "A background thread
        will eventually clean up the application, stop all threads".
        """
        for thread in self.enumerate_threads(recurse=True):
            thread.stop()

    def uncaught_exception(self, thread: "JThread",
                           exc: BaseException) -> None:
        """Default handler for exceptions escaping a thread's run method."""
        if isinstance(exc, ThreadDeath):
            return
        handler = getattr(self.vm, "report_uncaught", None)
        if handler is not None:
            handler(thread, exc)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadGroup(name={self.name!r})"


class JThread:
    """A Java-style thread.

    Differences from a raw Python thread that the reproduction depends on:

    * membership in a :class:`ThreadGroup` (defaults to the creator's group);
    * a *daemon* flag with the Java default (inherited from the creator) and
      the Java restriction (must be set before ``start``);
    * ``interrupt()`` / ``is_interrupted()`` semantics, honoured by every
      blocking primitive in this library;
    * cooperative ``stop()`` that raises :class:`ThreadDeath` at stop points;
    * an access-control context snapshot inherited from the creating thread
      (JDK 1.2 semantics, needed for Section 5.6's security analysis).
    """

    _counter = 0
    _counter_lock = threading.Lock()

    def __init__(self, target: Optional[Callable] = None,
                 name: Optional[str] = None,
                 group: Optional[ThreadGroup] = None,
                 daemon: Optional[bool] = None,
                 args: Iterable = (),
                 backing: Optional[str] = None):
        creator = JThread.current_or_none()
        if group is None:
            if creator is not None:
                group = creator.group
            else:
                raise IllegalArgumentException(
                    "no thread group given and calling thread is not attached")
        # Security: creating a thread in a group requires access to that
        # group.  This is how the paper confines applications to their own
        # thread group (Section 5.1).
        vm = group.vm
        if vm is not None and vm.security_manager is not None:
            vm.security_manager.check_access_group(group)

        if name is None:
            with JThread._counter_lock:
                JThread._counter += 1
                name = f"Thread-{JThread._counter}"
        if daemon is None:
            daemon = creator.daemon if creator is not None else False

        if backing not in (None, "sched", "os"):
            raise IllegalArgumentException(
                f"backing must be 'sched' or 'os', not {backing!r}")
        self.name = name
        self.group = group
        self.daemon = bool(daemon)
        self._target = target
        self._args = tuple(args)
        self._started = False
        self._finished = threading.Event()
        self._finish_done = False
        self._finish_watches: list[Callable[["JThread"], None]] = []
        self._interrupted = False
        self._stop_requested = False
        self._wake = threading.Condition()
        self._python_thread: Optional[threading.Thread] = None
        #: Backing selection: None = auto (generator bodies become
        #: scheduler tasks, plain callables get an OS thread), "sched"
        #: requires a continuation body, "os" forces a dedicated OS
        #: thread (generator bodies then run under drive_inline).
        self._backing = backing
        self._task = None
        self._continuation = None
        #: callbacks run (in this thread) after the thread body finishes;
        #: the application model uses this for its exit rule.
        self.finish_hooks: list[Callable[["JThread"], None]] = []
        #: access-control context inherited from the creator (a tuple of
        #: ProtectionDomains); filled in by repro.security.access.
        self.inherited_context = None
        from repro.security import access as _access
        self.inherited_context = _access.snapshot_inherited_context()
        self._acc_stack: list = []
        group._add_thread(self)

    # -- identity ----------------------------------------------------------

    @staticmethod
    def current_or_none() -> Optional["JThread"]:
        """The JThread wrapper of the calling Python thread, or None."""
        with _registry_lock:
            return _current_jthreads.get(threading.get_ident())

    @staticmethod
    def current() -> "JThread":
        thread = JThread.current_or_none()
        if thread is None:
            raise IllegalStateException(
                "calling thread is not attached to the VM")
        return thread

    @staticmethod
    def attach(name: str, group: ThreadGroup,
               daemon: bool = False) -> "JThread":
        """Attach the calling Python thread to the VM as a JThread.

        This mirrors JNI's ``AttachCurrentThread`` and is how the host
        process's main thread becomes the thread that runs ``main()``
        (Section 3.1).
        """
        if JThread.current_or_none() is not None:
            raise IllegalStateException("thread is already attached")
        thread = JThread.__new__(JThread)
        thread.name = name
        thread.group = group
        thread.daemon = daemon
        thread._target = None
        thread._args = ()
        thread._started = True
        thread._finished = threading.Event()
        thread._finish_done = False
        thread._finish_watches = []
        thread._interrupted = False
        thread._stop_requested = False
        thread._wake = threading.Condition()
        thread._python_thread = threading.current_thread()
        thread._backing = "os"
        thread._task = None
        thread._continuation = None
        thread.finish_hooks = []
        thread.inherited_context = None
        thread._acc_stack = []
        group._add_thread(thread)
        with _registry_lock:
            _current_jthreads[threading.get_ident()] = thread
        vm = group.vm
        if vm is not None:
            vm.thread_started(thread)
        application = owning_application(group)
        if application is not None:
            application.adopt_thread(thread)
        return thread

    def detach(self) -> None:
        """Detach an attached thread (inverse of :meth:`attach`)."""
        if self._python_thread is not threading.current_thread():
            raise IllegalStateException("only the attached thread may detach")
        with _registry_lock:
            _current_jthreads.pop(threading.get_ident(), None)
        self._finish(None)

    # -- lifecycle ----------------------------------------------------------

    def set_daemon(self, daemon: bool) -> None:
        if self._started:
            raise IllegalThreadStateException(
                "cannot change daemon status of a started thread")
        self.daemon = bool(daemon)

    def _make_continuation(self):
        """The generator frame for this thread's body, or None.

        A generator-function target (or a generator-function ``run``
        override) makes this thread continuation-capable: under the
        scheduler backing the frame is multiplexed on the VM's event
        loop; under the OS backing it runs through ``drive_inline`` on a
        dedicated thread.  Creating the generator executes no body code.
        """
        import inspect
        if self._target is not None:
            if inspect.isgenerator(self._target):
                return self._target
            if inspect.isgeneratorfunction(self._target):
                return self._target(*self._args)
            return None
        run = type(self).run
        if run is not JThread.run and inspect.isgeneratorfunction(run):
            return self.run()
        return None

    def start(self) -> None:
        if self._started:
            raise IllegalThreadStateException(
                f"thread {self.name} already started")
        self._started = True
        vm = self.group.vm
        if vm is not None:
            vm.thread_started(self)
        application = owning_application(self.group)
        if application is not None:
            application.adopt_thread(self)
        self._continuation = self._make_continuation()
        if self._continuation is None and self._backing == "sched":
            raise IllegalThreadStateException(
                f"thread {self.name}: backing='sched' requires a "
                f"generator-function body (plain callables cannot be "
                f"suspended)")
        if self._continuation is not None and self._backing != "os":
            # Continuation body: no OS thread at all — the VM's event
            # loop multiplexes this JThread as a task.  Lifecycle,
            # interruption and finish hooks all flow through the same
            # _finish path the OS backing uses.
            if vm is not None:
                scheduler = vm.ensure_scheduler()
            else:
                from repro.sched import default_scheduler
                scheduler = default_scheduler()
            self._task = scheduler.spawn_task(
                self._continuation, name=self.name, jthread=self)
            return
        # The Python-level thread is always a Python daemon: VM lifetime is
        # tracked by our own accounting, never by the interpreter's.
        self._python_thread = threading.Thread(
            target=self._run_wrapper, name=self.name, daemon=True)
        self._python_thread.start()

    def _run_wrapper(self) -> None:
        with _registry_lock:
            _current_jthreads[threading.get_ident()] = self
        failure: Optional[BaseException] = None
        try:
            if self._continuation is not None:
                from repro.sched.core import drive_inline
                drive_inline(self._continuation)
            else:
                self.run()
        except ThreadDeath:
            pass
        except BaseException as exc:  # noqa: BLE001 - must not leak upward
            failure = exc
        finally:
            with _registry_lock:
                _current_jthreads.pop(threading.get_ident(), None)
            self._finish(failure)

    def _finish(self, exc: Optional[BaseException] = None) -> None:
        """The single end-of-life path for every backing — exactly once.

        Reports a non-ThreadDeath failure, marks the thread finished,
        removes it from its group, runs finish hooks (each guarded), and
        settles VM accounting.  Idempotent: the OS-thread wrapper, the
        scheduler's task-finish, ``detach()`` and scheduler teardown all
        funnel here, and only the first caller acts — which is what
        makes "finish hooks run exactly once" hold even when a stop()
        races a task death.
        """
        with self._wake:
            if self._finish_done:
                return
            self._finish_done = True
            watches, self._finish_watches = self._finish_watches, []
        if exc is not None and not isinstance(exc, ThreadDeath):
            self.group.uncaught_exception(self, exc)
        self._finished.set()
        self.group._remove_thread(self)
        for hook in list(self.finish_hooks):
            try:
                hook(self)
            except BaseException as hook_exc:  # noqa: BLE001
                self.group.uncaught_exception(self, hook_exc)
        vm = self.group.vm
        if vm is not None:
            vm.thread_finished(self)
        for watch in watches:
            try:
                watch(self)
            except BaseException as watch_exc:  # noqa: BLE001
                self.group.uncaught_exception(self, watch_exc)

    def _add_finish_watch(self, callback: Callable[["JThread"], None]) -> bool:
        """Register an internal finish callback; True if already finished.

        Unlike ``finish_hooks`` (application-visible, must be installed
        before start), watches may be added concurrently with the thread
        dying — the scheduler's join path relies on this being atomic.
        """
        with self._wake:
            if self._finish_done:
                return True
            self._finish_watches.append(callback)
            return False

    def run(self) -> None:
        """Thread body; subclasses may override instead of passing target."""
        if self._target is not None:
            self._target(*self._args)

    def is_alive(self) -> bool:
        return self._started and not self._finished.is_set()

    @property
    def started(self) -> bool:
        return self._started

    # -- interruption and stopping -------------------------------------------

    def interrupt(self) -> None:
        """Set this thread's interrupt flag and wake it from blocking waits."""
        vm = self.group.vm
        if vm is not None and vm.security_manager is not None:
            current = JThread.current_or_none()
            if current is not self:
                vm.security_manager.check_access_thread(self)
        with self._wake:
            self._interrupted = True
            self._wake.notify_all()
        task = self._task
        if task is not None:
            # A parked continuation cannot poll its flags; hand it back
            # to the ready queue so delivery happens at the next step.
            task.scheduler._kick(task)

    def is_interrupted(self, clear: bool = False) -> bool:
        with self._wake:
            value = self._interrupted
            if clear:
                self._interrupted = False
            return value

    def stop(self) -> None:
        """Request cooperative stop; takes effect at the next stop point."""
        vm = self.group.vm
        if vm is not None and vm.security_manager is not None:
            current = JThread.current_or_none()
            if current is not self:
                vm.security_manager.check_access_thread(self)
        with self._wake:
            self._stop_requested = True
            self._interrupted = True
            self._wake.notify_all()
        task = self._task
        if task is not None:
            task.scheduler._kick(task)

    @property
    def stop_requested(self) -> bool:
        return self._stop_requested

    def _check_stop_point(self) -> None:
        """Raise ThreadDeath/InterruptedException if flagged.  Stop wins."""
        with self._wake:
            if self._stop_requested:
                raise ThreadDeath(f"thread {self.name} stopped")
            if self._interrupted:
                self._interrupted = False
                raise InterruptedException(
                    f"thread {self.name} interrupted")

    # -- blocking helpers ------------------------------------------------------

    @staticmethod
    def sleep(seconds: float) -> None:
        """Interruptible sleep (a stop point)."""
        from repro.sched.core import assert_not_loop_thread
        assert_not_loop_thread("JThread.sleep")
        thread = JThread.current_or_none()
        if thread is None:
            time.sleep(seconds)
            return
        deadline = time.monotonic() + seconds
        with thread._wake:
            while True:
                thread._check_stop_point_locked()
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return
                thread._wake.wait(min(remaining, 1.0))

    def _check_stop_point_locked(self) -> None:
        """Like :meth:`_check_stop_point` but assumes ``_wake`` is held."""
        if self._stop_requested:
            raise ThreadDeath(f"thread {self.name} stopped")
        if self._interrupted:
            self._interrupted = False
            raise InterruptedException(f"thread {self.name} interrupted")

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for this thread to finish (a stop point for the waiter)."""
        from repro.sched.core import assert_not_loop_thread
        assert_not_loop_thread("JThread.join")
        waiter = JThread.current_or_none()
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if waiter is not None:
                waiter._check_stop_point()
            remaining = POLL_INTERVAL
            if deadline is not None:
                remaining = min(remaining, deadline - time.monotonic())
                if remaining <= 0:
                    return
            if self._finished.wait(remaining):
                return

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flags = "d" if self.daemon else "-"
        state = "alive" if self.is_alive() else (
            "finished" if self._started else "new")
        return f"JThread({self.name!r}, {self.group.name!r}, {flags}, {state})"


def owning_application(group: Optional[ThreadGroup]):
    """The application owning ``group``, via the nearest ancestor group
    tagged with an ``application`` attribute (set by the application layer).

    This is the paper's Section 5.1 derivation: "threads give us a
    convenient way to distinguish two instances of the same program" —
    any thread's application is found by walking its group ancestry.
    """
    while group is not None:
        application = getattr(group, "application", None)
        if application is not None:
            return application
        group = group.parent
    return None


def checkpoint() -> None:
    """Explicit stop point for long-running loops in library and app code."""
    thread = JThread.current_or_none()
    if thread is not None:
        thread._check_stop_point()


def interruptible_wait(condition: threading.Condition,
                       predicate: Callable[[], bool],
                       timeout: Optional[float] = None) -> bool:
    """Deprecated: use :func:`repro.sched.timers.wait_until`.

    The predicate-wait helper moved into the scheduler's unified timing
    API (the OS-thread half; tasks use ``repro.sched.ops.wait_on``).
    This shim forwards with identical semantics and will be removed once
    external callers have migrated.
    """
    import warnings
    warnings.warn(
        "interruptible_wait() is deprecated; use "
        "repro.sched.timers.wait_until (or repro.sched.ops.wait_on "
        "from a task)", DeprecationWarning, stacklevel=2)
    from repro.sched.timers import wait_until
    return wait_until(condition, predicate, timeout=timeout)
