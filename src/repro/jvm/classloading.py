"""Class material, class loaders, and loader-based name spaces.

Section 5.5 rests on one JVM property: *class identity is the pair (defining
loader, class name)*.  "Since we use a new class loader for every
application, to the JVM, the different incarnations of the System class are
just different classes that happen to have the same name."

We reproduce that property without bytecode:

* :class:`ClassMaterial` is the "class file" — a named bundle of member
  functions, a static initializer, and a code source.  Material lives in a
  :class:`ClassRegistry` (the class path / network, depending on the code
  source).
* :class:`ClassLoader` turns material into :class:`JClass` objects
  ("linking", Section 3.1).  Each definition gets *its own* static-state
  dict and a :class:`~repro.security.codesource.ProtectionDomain` derived
  from the material's code source and the installed policy.
* Loaders delegate parent-first; two loaders defining the same material
  yield two distinct, incompatible classes — which is exactly what gives
  every application its own ``System`` in Section 5.5.

Method invocation goes through :class:`JMethod`, which pushes the class's
protection domain onto the calling thread's access-control stack — the
Python analogue of the domain-annotated JVM stack frames that JDK 1.2's
``AccessController`` inspects.
"""

from __future__ import annotations

import inspect
import threading
from typing import Callable, Iterable, Optional

from repro.jvm.errors import (
    ClassNotFoundException,
    IllegalArgumentException,
    NoSuchMethodException,
)
from repro.security import access
from repro.security.codesource import (
    CodeSource,
    ProtectionDomain,
    system_domain,
)


class ClassMaterial:
    """The loader-independent definition of a class (its "class file").

    ``members`` maps member names to plain Python callables.  Every member
    receives its defining :class:`JClass` as first argument (so members can
    reach their own per-definition statics — essential for Section 5.5).
    By convention an application entry point is a member
    ``main(jclass, ctx, args)`` where ``ctx`` is the
    :class:`~repro.lang.context.InvocationContext` supplied by the invoker
    and ``args`` is a list of strings.

    ``static_init`` runs once per *definition* (i.e. once per loader that
    defines the class), with the new class's protection domain on the
    stack — just like a Java static initializer.
    """

    def __init__(self, name: str,
                 code_source: Optional[CodeSource] = None,
                 members: Optional[dict[str, Callable]] = None,
                 static_init: Optional[Callable[["JClass"], None]] = None,
                 doc: str = ""):
        if not name:
            raise IllegalArgumentException("class name may not be empty")
        self.name = name
        self.code_source = code_source
        self.members: dict[str, Callable] = dict(members or {})
        self.static_init = static_init
        self.doc = doc
        #: Member names that are *not* public; reflective access to them is
        #: guarded by the system security manager (Section 5.6).  By
        #: convention, members whose name starts with "_" are non-public.
        self.non_public: set[str] = {
            member for member in self.members if member.startswith("_")}

    def member(self, fn: Callable) -> Callable:
        """Decorator registering ``fn`` as a member of this class."""
        self.members[fn.__name__] = fn
        if fn.__name__.startswith("_"):
            self.non_public.add(fn.__name__)
        return fn

    def size(self) -> int:
        """Approximate "bytecode size" of this material, in bytes.

        Sums the compiled code objects of the members — the closest
        analogue of a class file's method bytecode — so telemetry can
        report bytes (re)defined per application (Section 5.5 reloads).
        """
        total = len(self.doc.encode("utf-8")) if self.doc else 0
        for fn in self.members.values():
            code = getattr(fn, "__code__", None)
            total += len(code.co_code) if code is not None else 64
        return total

    def static(self, fn: Callable) -> Callable:
        """Decorator registering ``fn`` as the static initializer."""
        self.static_init = fn
        return fn

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ClassMaterial({self.name!r}, cs={self.code_source!r})"


class ClassRegistry:
    """All class material known to the VM (class path + installed code).

    The registry is the single source of material; *which* material a given
    application sees, and with what identity and privileges, is decided by
    the class loaders.
    """

    def __init__(self):
        self._materials: dict[str, ClassMaterial] = {}
        self._lock = threading.Lock()

    def register(self, material: ClassMaterial,
                 replace: bool = False) -> ClassMaterial:
        with self._lock:
            if material.name in self._materials and not replace:
                raise IllegalArgumentException(
                    f"class material {material.name!r} already registered")
            self._materials[material.name] = material
            return material

    def register_all(self, materials: Iterable[ClassMaterial]) -> None:
        for material in materials:
            self.register(material)

    def get(self, name: str) -> ClassMaterial:
        with self._lock:
            material = self._materials.get(name)
        if material is None:
            raise ClassNotFoundException(name)
        return material

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._materials

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._materials)


class JClass:
    """A defined class: material + defining loader + its own static state.

    Identity is object identity: two definitions of the same material by
    different loaders are different classes (the heart of Section 5.5).
    """

    def __init__(self, material: ClassMaterial, loader: "ClassLoader",
                 domain: ProtectionDomain):
        self.material = material
        self.loader = loader
        self.protection_domain = domain
        #: Per-definition static fields (e.g. ``System``'s in/out/err).
        self.statics: dict[str, object] = {}
        self._initialized = False
        self._init_lock = threading.RLock()

    @property
    def name(self) -> str:
        return self.material.name

    def initialize(self) -> None:
        """Run the static initializer under this class's domain.

        Init-once and thread-safe: a second thread blocks until the first
        finishes (so it never sees a half-initialized class), while the
        defining thread may re-enter during its own static init (the JVM's
        recursive-initialization rule) thanks to the RLock plus the
        flag being set before the initializer runs.
        """
        if self._initialized:
            return
        with self._init_lock:
            if self._initialized:
                return
            self._initialized = True
            if self.material.static_init is not None:
                with access.stack_frame(self.protection_domain):
                    self.material.static_init(self)

    def has_method(self, name: str) -> bool:
        return name in self.material.members

    def method(self, name: str) -> "JMethod":
        fn = self.material.members.get(name)
        if fn is None:
            raise NoSuchMethodException(f"{self.name}.{name}")
        return JMethod(self, name, fn)

    def invoke(self, method_name: str, *args, **kwargs):
        return self.method(method_name).invoke(*args, **kwargs)

    def is_public_member(self, name: str) -> bool:
        return name not in self.material.non_public

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JClass({self.name!r}, loader={self.loader.name!r})"


class JObject:
    """An instance of a registered class: the class plus a field dict.

    Instance methods are ordinary members invoked with the object as the
    argument after the class: ``member(jclass, self, *args)``.  Object
    identity is tied to the *defining class* (and therefore to its loader),
    which is what makes cross-name-space sharing detectable
    (Section 8's type-safety concern; see :mod:`repro.core.sharing`).
    """

    __slots__ = ("jclass", "fields")

    def __init__(self, jclass: "JClass", **fields):
        self.jclass = jclass
        self.fields: dict[str, object] = dict(fields)

    def invoke(self, method_name: str, *args, **kwargs):
        return self.jclass.method(method_name).invoke(self, *args, **kwargs)

    def is_instance_of(self, jclass: "JClass") -> bool:
        """Class identity check: same definition, not just same name."""
        return self.jclass is jclass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"JObject({self.jclass.name}@"
                f"{self.jclass.loader.name}, {self.fields!r})")


class JMethod:
    """A method handle; invocation pushes the class's protection domain.

    A generator-function member (a *continuation method*, runnable as a
    scheduler task) cannot be guarded by one ``with`` around the call —
    the frame would pop before any body code runs, and holding it across
    a yield would leak it onto whatever thread resumes the generator.
    ``invoke`` therefore returns a :func:`_domain_guarded` wrapper that
    re-pushes the domain around *each resumption*, so the access-control
    stack inside every step is exactly what a plain call would see
    (Section 5.6 continuity under the event-loop scheduler).
    """

    __slots__ = ("jclass", "name", "_fn")

    def __init__(self, jclass: JClass, name: str, fn: Callable):
        self.jclass = jclass
        self.name = name
        self._fn = fn

    @property
    def is_continuation(self) -> bool:
        """True when this member is a generator function (task-capable)."""
        return inspect.isgeneratorfunction(self._fn)

    def invoke(self, *args, **kwargs):
        if inspect.isgeneratorfunction(self._fn):
            return _domain_guarded(
                self._fn(self.jclass, *args, **kwargs),
                self.jclass.protection_domain)
        with access.stack_frame(self.jclass.protection_domain):
            return self._fn(self.jclass, *args, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JMethod({self.jclass.name}.{self.name})"


def _domain_guarded(gen, domain):
    """Delegate to ``gen`` with ``domain`` pushed per resumption.

    The full generator protocol is forwarded — sends, throws (this is
    where interrupt/stop delivery enters application code), and the
    return value — but the protection-domain frame exists only *while
    the inner generator is executing*: it is pushed before each
    ``send``/``throw`` and popped before each yield travels outward, so
    the stack a scheduler loop thread carries between task steps is
    empty and per-step security checks see the right domains.
    """
    send_value = None
    throw_exc = None
    while True:
        with access.stack_frame(domain):
            try:
                if throw_exc is not None:
                    pending, throw_exc = throw_exc, None
                    out = gen.throw(pending)
                else:
                    out = gen.send(send_value)
            except StopIteration as stop:
                return stop.value
        try:
            send_value = yield out
        except BaseException as exc:  # noqa: BLE001 - forwarded inward
            throw_exc = exc
            send_value = None


_system_domain_lock = threading.Lock()
_system_domain: Optional[ProtectionDomain] = None


def _shared_system_domain() -> ProtectionDomain:
    """The one fully trusted domain all boot-class-path classes share.

    System classes dominate deep stacks; giving them a single domain
    object lets the walk's identity dedupe collapse them to one check.
    The domain is stateless (static ``AllPermission``, no policy), so
    sharing it across VMs is safe.
    """
    global _system_domain
    if _system_domain is None:
        with _system_domain_lock:
            if _system_domain is None:
                _system_domain = system_domain()
    return _system_domain


class ClassLoader:
    """Parent-first delegating class loader.

    ``load_class`` first asks the parent; only if the parent cannot find
    the class does this loader define it from registry material
    (``find_class``).  Subclasses (the application loader of Section 5.5,
    the ``AppletClassLoader`` of Section 6.3) override :meth:`load_class`
    or :meth:`find_class` to change visibility or attach extra permissions.
    """

    def __init__(self, registry: ClassRegistry,
                 parent: Optional["ClassLoader"] = None,
                 name: str = "classloader",
                 policy: Optional[object] = None):
        self.registry = registry
        self.parent = parent
        self.name = name
        self.policy = policy if policy is not None or parent is None \
            else parent.policy
        #: The VM this loader belongs to; static initializers reach the VM
        #: through their class's defining loader (set by the VM for the boot
        #: loader and inherited by child loaders).
        self.vm = parent.vm if parent is not None else None
        self._defined: dict[str, JClass] = {}
        self._lock = threading.RLock()

    def load_class(self, name: str) -> JClass:
        with self._lock:
            already = self._defined.get(name)
            if already is not None:
                return already
        if self.parent is not None:
            try:
                return self.parent.load_class(name)
            except ClassNotFoundException:
                pass
        return self.find_class(name)

    def find_class(self, name: str) -> JClass:
        material = self.registry.get(name)
        return self.define_class(material)

    def define_class(self, material: ClassMaterial) -> JClass:
        """Define (link) material in this loader's name space."""
        with self._lock:
            existing = self._defined.get(material.name)
            if existing is not None:
                return existing
            domain = self.domain_for(material)
            jclass = JClass(material, self, domain)
            self._defined[material.name] = jclass
        vm = self.vm
        if vm is not None:
            metrics = vm.telemetry.metrics
            metrics.counter("classload.defined", loader=self.name).inc()
            metrics.counter("classload.bytes",
                            loader=self.name).inc(material.size())
        jclass.initialize()
        return jclass

    def domain_for(self, material: ClassMaterial) -> ProtectionDomain:
        """Protection domain for a class this loader defines.

        Material without a code source is boot-class-path code and gets the
        fully trusted system domain; everything else gets a policy-backed
        domain for its code source (Section 3.3, JDK 1.2 model).  Plain
        policy-backed domains are *interned* per ``(code_source, policy)``
        — identical code sources share one domain (and one decision memo)
        across loaders, and the access-control walk can dedupe them by
        identity.  Loaders that attach static permissions (the
        ``AppletClassLoader``) override this method and keep building
        their own unshared domains.
        """
        if material.code_source is None:
            return _shared_system_domain()
        policy = self.policy
        interner = getattr(policy, "domain_for_code_source", None)
        if interner is not None:
            return interner(material.code_source,
                            name=material.code_source.url or material.name)
        return ProtectionDomain(material.code_source, policy=policy,
                                name=material.code_source.url or material.name)

    def defined_classes(self) -> list[JClass]:
        with self._lock:
            return list(self._defined.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"
