"""The Virtual Machine: boot, lifetime, and process-wide state.

Section 3.1 of the paper walks through the life of a JVM: the OS hands it a
process context (file descriptors, user id), it starts a set of system
threads ("a garbage collector, a thread to execute finalizers, and an idle
thread"), runs ``main`` in a non-daemon thread, and exits "once all
non-daemon threads of an application have finished ... even though daemon
threads may still be running" (Figure 1).

:class:`VirtualMachine` reproduces that lifecycle faithfully — including the
single-application behaviour the paper then sets out to fix.  The
multi-processing extensions (applications, per-app System classes, the
system security manager) are layered on top by :mod:`repro.core.launcher`
and hang off the slots declared here (``security_manager``,
``application_registry``, ``toolkit``, ...).
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.io.streams import (
    ByteArrayOutputStream,
    InputStream,
    NullInputStream,
    OutputStream,
    PrintStream,
)
from repro.jvm.classloading import ClassLoader, ClassRegistry
from repro.jvm.errors import IllegalStateException
from repro.jvm.threads import JThread, ThreadGroup
from repro.lang.properties import Properties
from repro.sched.timers import wait_until
from repro.telemetry import TelemetryHub

JAVA_VERSION = "1.2mp-proto"
JAVA_VENDOR = "repro (Balfanz & Gong multi-processing prototype)"

STATE_NEW = "new"
STATE_BOOTED = "booted"
STATE_EXITING = "exiting"
STATE_TERMINATED = "terminated"


class VirtualMachine:
    """One simulated JVM process.

    Parameters
    ----------
    os_context:
        An :class:`~repro.unixfs.machine.OsProcessContext` describing the
        process the OS created for this VM (Section 3.1).  If omitted, a
        standard machine is built.
    stdin, stdout, stderr:
        Process-level standard streams.  Default to the OS context's, or to
        in-memory streams, never to the host's real stdio (examples pass
        host adapters explicitly).
    """

    def __init__(self, os_context=None,
                 stdin: Optional[InputStream] = None,
                 stdout: Optional[OutputStream] = None,
                 stderr: Optional[OutputStream] = None):
        if os_context is None:
            from repro.unixfs.machine import standard_process
            os_context = standard_process()
        self.os_context = os_context
        self.machine = os_context.machine
        #: Always-on observability: metrics, tracer, and the audit log.
        self.telemetry = TelemetryHub(f"vm-{os_context.pid}")

        self.stdin: InputStream = stdin or os_context.stdin \
            or NullInputStream()
        raw_out = stdout or os_context.stdout or ByteArrayOutputStream()
        raw_err = stderr or os_context.stderr or ByteArrayOutputStream()
        self.out = raw_out if isinstance(raw_out, PrintStream) \
            else PrintStream(raw_out)
        self.err = raw_err if isinstance(raw_err, PrintStream) \
            else PrintStream(raw_err)

        self.registry = ClassRegistry()
        self.policy = None  # installed by the security layer
        #: The JVM-wide (system) security manager of Section 5.6.  None in a
        #: plain single-application VM.
        self.security_manager = None
        #: Paper Section 6.3: "This change will not be necessary if we
        #: change the semantics of System.exit() to only exit the current
        #: application."  False reproduces the historical semantics.
        self.system_exit_exits_application = False
        #: Figure 1: a plain JVM exits when the last non-daemon thread
        #: finishes.  The multi-processing launcher turns this off — the
        #: whole point of Feature 1 is that an application ending "should
        #: not necessarily cause the JVM to exit".
        self.exit_when_last_nondaemon = True

        # Slots filled by upper layers.
        self.application_registry = None   # repro.core.application
        self.user_database = None          # repro.security.auth
        self.toolkit = None                # repro.awt.toolkit
        self.network = None                # repro.net.fabric
        self.tool_path = {}                # command name -> class name
        self.consoles = {}                 # device name -> TerminalDevice
        self.shared_objects = None         # repro.core.sharing
        self.cluster = None                # repro.cluster.spawn
        self.dist_pool = None              # repro.dist.pool (lazy)
        self.admission = None              # repro.super.admission
        self.supervisors = {}              # name -> repro.super.Supervisor
        self.policy_recorder = None        # repro.policytool.recorder (lazy)
        #: The per-VM event-loop scheduler (repro.sched), created lazily
        #: by ensure_scheduler() the first time a continuation task or a
        #: scheduler-backed JThread starts on this VM.
        self.scheduler = None
        self._scheduler_lock = threading.Lock()

        self._state = STATE_NEW
        self._state_lock = threading.Lock()
        self._exit_code: Optional[int] = None
        self._non_daemon = 0
        self._accounting = threading.Condition()
        self._main_started = False
        self._terminated = threading.Event()
        self._shutdown_hooks: list[Callable[[], None]] = []
        self._finalizer_queue: list[Callable[[], None]] = []
        self._finalizer_cond = threading.Condition()

        self.system_properties = self._initial_properties()

        # Thread-group tree (Section 3.1 / Figure 3).
        self.root_group = ThreadGroup(None, "system")
        self.root_group.vm = self
        self.main_group = ThreadGroup(self.root_group, "main")
        self.boot_loader = ClassLoader(self.registry, parent=None,
                                       name="boot")
        self.boot_loader.vm = self

    # -- boot -------------------------------------------------------------------

    def boot(self) -> "VirtualMachine":
        """Start the VM's own daemon threads (Section 3.1).

        "Java uses either a kernel- or user-based thread library to start up
        a number of threads immediately after the JVM gains control from the
        O/S.  These threads include a garbage collector, a thread to execute
        finalizers, and an idle thread to fall back on."
        """
        with self._state_lock:
            if self._state != STATE_NEW:
                raise IllegalStateException(f"VM already {self._state}")
            self._state = STATE_BOOTED
        for name, body in (("Reference Handler", self._idle_body),
                           ("Finalizer", self._finalizer_body),
                           ("GC", self._idle_body)):
            thread = JThread(target=body, name=name, group=self.root_group,
                             daemon=True)
            thread.start()
        from repro.lang import bootstrap
        bootstrap.register_core_classes(self.registry)
        return self

    def _initial_properties(self) -> Properties:
        """System properties per Section 3.1.

        "Some of these values are taken from the respective value of the JVM
        process (e.g. the running user), some of them are hard-coded into
        the JVM (e.g. the Java version), and some of them are acquired by
        some other means (e.g. the O/S version through a system call)."
        """
        props = Properties()
        props.set_property("java.version", JAVA_VERSION)
        props.set_property("java.vendor", JAVA_VENDOR)
        props.set_property("os.name", self.machine.os_name)
        props.set_property("os.version", self.machine.os_version)
        props.set_property("os.arch", "sim")
        props.set_property("user.name", self.os_context.user.name)
        props.set_property("user.home", self.os_context.user.home)
        props.set_property("user.dir", self.os_context.cwd)
        props.set_property("file.separator", "/")
        props.set_property("path.separator", ":")
        props.set_property("line.separator", "\n")
        props.set_property("host.name", self.machine.hostname)
        return props

    # -- system daemon thread bodies -----------------------------------------------

    def _idle_body(self) -> None:
        while not self._terminated.is_set():
            JThread.sleep(0.05)

    def _finalizer_body(self) -> None:
        while not self._terminated.is_set():
            job = None
            with self._finalizer_cond:
                wait_until(self._finalizer_cond,
                           lambda: bool(self._finalizer_queue),
                           timeout=0.05)
                if self._finalizer_queue:
                    job = self._finalizer_queue.pop(0)
            if job is not None:
                try:
                    job()
                except BaseException as exc:  # noqa: BLE001
                    self.report_uncaught(JThread.current_or_none(), exc)

    def register_finalizer(self, job: Callable[[], None]) -> None:
        """Queue a finalization job for the Finalizer thread."""
        with self._finalizer_cond:
            self._finalizer_queue.append(job)
            self._finalizer_cond.notify_all()

    def drain_finalizers(self, timeout: float = 2.0) -> bool:
        """Wait until the finalizer queue is empty (test helper)."""
        import time
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._finalizer_cond:
                if not self._finalizer_queue:
                    return True
            JThread.sleep(0.01)
        return False

    # -- the event-loop scheduler (repro.sched) ---------------------------------------

    def ensure_scheduler(self):
        """The VM's event-loop scheduler, started on first use.

        One loop per VM multiplexes every continuation task (and every
        scheduler-backed JThread facade) for all applications in this
        VM — the ROADMAP's answer to one-OS-thread-per-JThread.
        """
        with self._scheduler_lock:
            if self.scheduler is None or not self.scheduler.running:
                from repro.sched import Scheduler
                self.scheduler = Scheduler(
                    name=f"sched-{self.os_context.pid}",
                    telemetry=self.telemetry)
            return self.scheduler.start()

    # -- thread accounting (Figure 1) -----------------------------------------------

    def thread_started(self, thread: JThread) -> None:
        if thread.daemon:
            return
        with self._accounting:
            self._non_daemon += 1
            self._main_started = True

    def thread_finished(self, thread: JThread) -> None:
        if thread.daemon:
            return
        trigger = False
        with self._accounting:
            self._non_daemon -= 1
            if (self._non_daemon <= 0 and self._main_started
                    and self.exit_when_last_nondaemon):
                trigger = True
            self._accounting.notify_all()
        if trigger:
            # "If all remaining threads turn out to be daemon threads, the
            # JVM exits, stopping all those daemon threads in the middle of
            # whatever they were doing."
            self._begin_shutdown(0)

    @property
    def non_daemon_count(self) -> int:
        with self._accounting:
            return self._non_daemon

    # -- running an application (single-application mode, Section 3.1) ---------------

    def run_main(self, class_name: str, args: Optional[list[str]] = None,
                 thread_name: str = "main") -> JThread:
        """``java MyClass arg1 arg2`` — start ``main`` in a non-daemon thread."""
        from repro.lang.context import InvocationContext
        jclass = self.boot_loader.load_class(class_name)
        context = InvocationContext(vm=self, loader=self.boot_loader,
                                    jclass=jclass)

        def body() -> None:
            jclass.invoke("main", context, list(args or []))

        thread = JThread(target=body, name=thread_name,
                         group=self.main_group, daemon=False)
        thread.start()
        return thread

    # -- exit (Figure 1) ----------------------------------------------------------

    def exit(self, status: int = 0) -> None:
        """``System.exit`` — stop the whole VM process."""
        if self.security_manager is not None:
            self.security_manager.check_exit(status)
        self._begin_shutdown(status)

    def add_shutdown_hook(self, hook: Callable[[], None]) -> None:
        self._shutdown_hooks.append(hook)

    def _begin_shutdown(self, status: int) -> None:
        with self._state_lock:
            if self._state in (STATE_EXITING, STATE_TERMINATED):
                return
            self._state = STATE_EXITING
            self._exit_code = status
        for hook in list(self._shutdown_hooks):
            try:
                hook()
            except BaseException as exc:  # noqa: BLE001
                self.report_uncaught(JThread.current_or_none(), exc)
        self.root_group.stop_all()
        # Stop the event loop after stop_all: parked tasks get their
        # ThreadDeath either via the stop-flag kick above or, failing
        # that, from the scheduler's own teardown — finish hooks run
        # exactly once either way.
        scheduler = self.scheduler
        if scheduler is not None:
            scheduler.shutdown()
        with self._state_lock:
            self._state = STATE_TERMINATED
        self._terminated.set()

    def await_termination(self, timeout: Optional[float] = None) -> bool:
        """Block until the VM has exited (Figure 1's end state)."""
        return self._terminated.wait(timeout)

    @property
    def terminated(self) -> bool:
        return self._terminated.is_set()

    @property
    def state(self) -> str:
        with self._state_lock:
            return self._state

    @property
    def exit_code(self) -> Optional[int]:
        return self._exit_code

    # -- diagnostics ---------------------------------------------------------------

    def report_uncaught(self, thread: Optional[JThread],
                        exc: BaseException) -> None:
        from repro.jvm.threads import owning_application
        err = self.err
        name = thread.name if thread is not None else "?"
        if thread is not None:
            application = owning_application(thread.group)
            if application is not None:
                err = application.stderr
        err.println(f'Exception in thread "{name}" '
                    f"{type(exc).__name__}: {exc}")

    def set_security_manager(self, manager) -> None:
        """Install the JVM-wide security manager (Section 5.6)."""
        if self.security_manager is not None:
            from repro.security.permissions import RuntimePermission
            self.security_manager.check_permission(
                RuntimePermission("setSecurityManager"))
        # Back-reference so the manager can attribute audit records made
        # from host threads (no current application) to this VM's hub.
        manager.vm = self
        self.security_manager = manager

    def attach_main_thread(self, name: str = "host-main") -> JThread:
        """Attach the calling host thread to the main group."""
        return JThread.attach(name, self.main_group, daemon=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"VirtualMachine(pid={self.os_context.pid}, "
                f"state={self.state})")
