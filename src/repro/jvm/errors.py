"""Java-style exception hierarchy for the simulated JVM.

The paper's architecture leans on the distinction between different kinds of
runtime failures — most importantly the distinction (Section 4, Feature 3)
between a ``FileNotFoundException`` (the underlying OS hides a file from the
JVM process user) and a ``SecurityException`` (the Java security manager
denied the operation).  We therefore reproduce the relevant slice of the
``java.lang`` / ``java.io`` / ``java.security`` exception tree as Python
exception classes.

All exceptions carry an optional message, mirroring the single-argument Java
constructors that the original code base uses.
"""

from __future__ import annotations


class JavaThrowable(Exception):
    """Root of the simulated ``java.lang.Throwable`` hierarchy."""

    def __init__(self, message: str | None = None):
        super().__init__(message or "")
        self.message = message

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        name = type(self).__name__
        return f"{name}: {self.message}" if self.message else name


class JavaError(JavaThrowable):
    """Serious problems an application should not try to catch."""


class JavaException(JavaThrowable):
    """Checked exception root (``java.lang.Exception``)."""


class RuntimeException(JavaException):
    """Unchecked exception root (``java.lang.RuntimeException``)."""


# --------------------------------------------------------------------------
# java.lang
# --------------------------------------------------------------------------

class IllegalArgumentException(RuntimeException):
    """An illegal or inappropriate argument was passed."""


class IllegalStateException(RuntimeException):
    """A method was invoked at an illegal or inappropriate time."""


class IllegalThreadStateException(IllegalArgumentException):
    """A thread is not in an appropriate state for the requested operation."""


class NullPointerException(RuntimeException):
    """A ``null`` reference was used where an object is required."""


class IndexOutOfBoundsException(RuntimeException):
    """An index is out of range."""


class ClassCastException(RuntimeException):
    """An object was cast to an incompatible class.

    Section 8 of the paper notes that sharing objects between applications in
    different name spaces "is still a delicate task"; crossing name spaces in
    this library raises this exception (see :mod:`repro.jvm.classloading`).
    """


class ClassNotFoundException(JavaException):
    """A class loader could not find the definition of a class."""


class LinkageError(JavaError):
    """A class has a dependency problem discovered at link time."""


class NoSuchMethodException(JavaException):
    """A requested method does not exist on the class."""


class NoSuchFieldException(JavaException):
    """A requested field does not exist on the class."""


class InterruptedException(JavaException):
    """A thread was interrupted while waiting, sleeping, or otherwise paused."""


class ThreadDeath(JavaError):
    """Raised in a thread that has been asked to stop.

    The paper's background reaper (Section 5.1) "will eventually clean up the
    application, stop all threads"; cooperative stop points in this library
    raise ``ThreadDeath`` in the stopping thread.
    """


class UnsupportedOperationException(RuntimeException):
    """The requested operation is not supported."""


class ArithmeticException(RuntimeException):
    """An exceptional arithmetic condition (e.g. divide by zero)."""


# --------------------------------------------------------------------------
# java.lang.SecurityException and java.security
# --------------------------------------------------------------------------

class SecurityException(RuntimeException):
    """The security manager denied an operation (Section 3.3)."""


class AccessControlException(SecurityException):
    """The :class:`~repro.security.access.AccessController` denied access.

    Carries the permission that was being checked, so callers and tests can
    see exactly which permission failed.
    """

    def __init__(self, message: str | None = None, permission=None):
        super().__init__(message)
        self.permission = permission

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__str__()
        if self.permission is not None:
            return f"{base} (denied: {self.permission})"
        return base


class AuthenticationException(SecurityException):
    """A user could not be authenticated (Section 5.2 login)."""


# --------------------------------------------------------------------------
# java.io
# --------------------------------------------------------------------------

class IOException(JavaException):
    """An I/O operation failed or was interrupted."""


class FileNotFoundException(IOException):
    """A file does not exist *as far as the JVM process can see*.

    Section 4 (Feature 3) points out that on Unix "a Java application cannot
    see files that the UNIX user who runs the JVM is not allowed to access,
    and an attempt to access those files results in a FileNotFoundException
    instead of a SecurityException".  The virtual file system in
    :mod:`repro.unixfs.vfs` reproduces exactly that behaviour.
    """


class EOFException(IOException):
    """End of stream reached unexpectedly."""


class InterruptedIOException(IOException):
    """An I/O operation was interrupted."""


class StreamClosedException(IOException):
    """The stream has been closed.

    Section 5.1 discusses the hazard of one application closing a shared
    stream; attempting I/O on such a stream raises this exception.
    """


# --------------------------------------------------------------------------
# java.net
# --------------------------------------------------------------------------

class SocketException(IOException):
    """A socket operation failed."""


class UnknownHostException(IOException):
    """A host name could not be resolved by the simulated network fabric."""


class ConnectException(SocketException):
    """A connection was refused (nothing listening on the remote port)."""


class BindException(SocketException):
    """A local port could not be bound (already in use)."""


class RemoteException(IOException):
    """A remote operation failed (Section 8's distributed applications)."""


class NodeUnavailableException(RemoteException):
    """The target node cannot be reached at all — unknown to the fabric or
    refusing connections.

    Distinct from a protocol or authentication failure on a *reachable*
    node: the cluster scheduler treats this one as "the node is dead, try
    placing the launch somewhere else" rather than "the request was bad".
    """
