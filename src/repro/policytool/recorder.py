"""Learning mode: per-application capture of the audit stream.

The recorder is an :class:`~repro.telemetry.audit.AuditLog` listener that
routes every record carrying an ``app_id`` into that application's own
:class:`RecordingSlice`.  Slices are keyed and filtered by application id
*before* anything is appended, so two applications recording in parallel
can never interleave: a record lands in exactly the slice its ``app_id``
names, or nowhere.

Recording is enabled per launch (``ExecSpec(record_policy=True)``) or at
runtime by the ``policygen record`` tool; it stops automatically when the
application exits (via an exit hook), leaving the finished slice behind
for ``policygen infer`` / ``/proc/policy/<app>``.
"""

from __future__ import annotations

import threading
from typing import Optional

#: Safety bound per slice — a runaway app in learning mode stops growing
#: its slice (and counts what it lost) instead of growing memory.
SLICE_CAPACITY = 50_000


class RecordingSlice:
    """One application's captured audit records, in arrival order."""

    __slots__ = ("app_id", "app_name", "user", "records", "active",
                 "dropped", "_lock")

    def __init__(self, application):
        self.app_id = application.app_id
        self.app_name = application.name
        self.user = application.user.name
        self.records: list[dict] = []
        self.active = True
        self.dropped = 0
        self._lock = threading.Lock()

    def append(self, entry: dict) -> None:
        with self._lock:
            if not self.active:
                return
            if len(self.records) >= SLICE_CAPACITY:
                self.dropped += 1
                return
            self.records.append(entry)

    def snapshot(self) -> list[dict]:
        with self._lock:
            return list(self.records)

    def __len__(self) -> int:
        return len(self.records)


class PolicyRecorder:
    """Routes the audit stream into per-application slices."""

    def __init__(self, hub):
        self._hub = hub
        self._lock = threading.Lock()
        self._slices: dict[int, RecordingSlice] = {}
        self._listening = False

    def _on_record(self, entry: dict) -> None:
        app_id = entry.get("app_id")
        if app_id is None:
            return
        slice_ = self._slices.get(app_id)
        if slice_ is not None:
            slice_.append(entry)

    def start(self, application) -> RecordingSlice:
        """Begin (or restart) recording ``application``'s audit slice."""
        with self._lock:
            if not self._listening:
                self._hub.audit.add_listener(self._on_record)
                self._listening = True
            slice_ = self._slices.get(application.app_id)
            if slice_ is None or not slice_.active:
                slice_ = RecordingSlice(application)
                self._slices[application.app_id] = slice_
        application.policy_recording = True
        application.add_exit_hook(lambda: self.stop(application))
        return slice_

    def stop(self, application) -> Optional[RecordingSlice]:
        """Freeze the slice (it stays readable for inference)."""
        application.policy_recording = False
        slice_ = self._slices.get(application.app_id)
        if slice_ is not None:
            slice_.active = False
        return slice_

    def slice_for(self, app_id: int) -> Optional[RecordingSlice]:
        return self._slices.get(app_id)

    def is_recording(self, app_id: int) -> bool:
        slice_ = self._slices.get(app_id)
        return slice_ is not None and slice_.active

    def discard(self, app_id: int) -> Optional[RecordingSlice]:
        with self._lock:
            return self._slices.pop(app_id, None)

    def slices(self) -> list[RecordingSlice]:
        with self._lock:
            return list(self._slices.values())


_recorder_lock = threading.Lock()


def recorder_for(vm) -> PolicyRecorder:
    """The VM's (lazily created) policy recorder."""
    recorder = getattr(vm, "policy_recorder", None)
    if recorder is None:
        with _recorder_lock:
            recorder = getattr(vm, "policy_recorder", None)
            if recorder is None:
                recorder = PolicyRecorder(vm.telemetry)
                vm.policy_recorder = recorder
    return recorder
