"""Policy inference + execution-state MAC: the audit loop, closed.

The paper's central operational cost is hand-authored per-application
policies (Section 5.3), and its audit requirement produces a trail nobody
consumes.  This package turns that trail into a least-privilege policy
engine, following the trace-to-policy direction of "Generating
Stack-based Access Control Policies" and the phase-conditioned profiles
of TOMOYO Linux (see PAPERS.md):

* :mod:`repro.policytool.recorder` — per-application *learning mode*: a
  :class:`PolicyRecorder` listens on the VM's audit log and captures one
  isolated slice per recorded application (enabled per-launch via
  ``ExecSpec(record_policy=True)`` or at runtime by the ``policygen``
  tool).
* :mod:`repro.policytool.infer` — folds a recorded slice into the
  smallest grant set that still satisfies the trace, generalizing file
  targets to directory globs where safe, and emits it in the existing
  ``security.policy`` file format (``Policy.render``).
* :mod:`repro.policytool.diff` — compares an inferred policy against the
  live one: *missing* grants would deny the observed workload, *unused*
  grants are over-privilege to retire.
* :mod:`repro.policytool.lint` — static checks on any policy (duplicate
  selectors, redundant permissions, shadowed phase grants, stray
  AllPermission, unknown phases).

The execution-state MAC itself lives in the security layer (``phase``
grant conditions in :mod:`repro.security.policy`, phase-keyed decision
memos in :mod:`repro.security.codesource`) and the application lifecycle
(:meth:`repro.core.application.Application.advance_phase`); this package
is the tooling that exploits it.
"""

from repro.policytool.diff import DiffEntry, PolicyDiff, diff_policies, render_diff
from repro.policytool.infer import (
    infer_policy,
    needed_permissions,
    unsatisfied_records,
)
from repro.policytool.lint import LintFinding, lint_policy, render_findings
from repro.policytool.recorder import PolicyRecorder, RecordingSlice, recorder_for

__all__ = [
    "DiffEntry", "LintFinding", "PolicyDiff", "PolicyRecorder",
    "RecordingSlice", "diff_policies", "infer_policy",
    "lint_policy", "needed_permissions", "recorder_for", "render_diff",
    "render_findings", "unsatisfied_records",
]
