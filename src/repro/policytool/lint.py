"""Static policy checks — the correctness tooling for hand-edited files.

Inference produces clean policies; humans then edit them.  ``policygen
lint`` catches the classes of drift that the parser happily accepts but
that silently change (or fail to change) enforcement:

* ``unknown-phase`` (error): a phase name the kernel never enters — the
  grant can never match, i.e. it silently denies.
* ``dead-user-selector`` (error): ``user`` and ``codeBase`` in the same
  grant — the code path ignores ``user`` and the user path requires
  ``codeBase`` absent, so the selector does nothing.
* ``duplicate-selector`` (warn): two grants with identical selectors;
  legal, but merge them.
* ``shadowed-phase-grant`` (warn): a phase-conditioned grant whose every
  permission is already granted unconditionally to the same code — the
  phase condition enforces nothing.
* ``all-permission`` (warn): AllPermission outside the system domain.
* ``redundant-permission`` (info): a permission implied by another in
  the same grant.
* ``empty-grant`` (info): a grant block with no permissions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.security.permissions import AllPermission
from repro.security.policy import PHASES, Policy

SEVERITIES = ("error", "warn", "info")


@dataclass(frozen=True)
class LintFinding:
    code: str
    severity: str
    message: str

    def describe(self) -> str:
        return f"{self.severity}: [{self.code}] {self.message}"


def _selector_of(entry) -> str:
    parts = []
    if entry.code_source is not None:
        if entry.code_source.url is not None:
            parts.append(f'codeBase "{entry.code_source.url}"')
        if entry.code_source.signers:
            parts.append(
                f'signedBy "{",".join(sorted(entry.code_source.signers))}"')
    if entry.user is not None:
        parts.append(f'user "{entry.user}"')
    if entry.phase is not None:
        parts.append(f'phase "{entry.phase}"')
    return ", ".join(parts) or "<all code>"


def lint_policy(policy: Policy) -> list[LintFinding]:
    """All findings for ``policy``, errors first."""
    findings: list[LintFinding] = []
    entries = policy.entries()

    seen_selectors: dict[tuple, int] = {}
    for entry in entries:
        selector = _selector_of(entry)
        key = (entry.code_source, entry.user, entry.phase)
        count = seen_selectors.get(key, 0)
        seen_selectors[key] = count + 1
        if count == 1:  # report once, on the first duplicate
            findings.append(LintFinding(
                "duplicate-selector", "warn",
                f"more than one grant for {selector}; merge them"))

        if entry.phase is not None and entry.phase not in PHASES:
            findings.append(LintFinding(
                "unknown-phase", "error",
                f'grant {selector}: phase "{entry.phase}" is not one of '
                f"{'/'.join(PHASES)} — it can never match"))

        if entry.user is not None and entry.code_source is not None:
            findings.append(LintFinding(
                "dead-user-selector", "error",
                f"grant {selector}: user and codeBase together match "
                "neither the code path nor the user path"))

        if not entry.permissions:
            findings.append(LintFinding(
                "empty-grant", "info", f"grant {selector}: no permissions"))

        for permission in entry.permissions:
            if isinstance(permission, AllPermission):
                url = entry.code_source.url if entry.code_source else None
                if url is None or not url.startswith("file:/system"):
                    findings.append(LintFinding(
                        "all-permission", "warn",
                        f"grant {selector}: AllPermission outside the "
                        "system domain defeats least privilege"))
            others = [p for p in entry.permissions if p is not permission]
            if any(other.implies(permission) for other in others):
                findings.append(LintFinding(
                    "redundant-permission", "info",
                    f"grant {selector}: {permission!r} is implied by "
                    "another permission in the same grant"))

        if entry.phase is not None and entry.permissions:
            unconditional = [
                other for other in entries
                if other is not entry and other.phase is None
                and other.user is None and entry.user is None
                and _code_covers(other, entry)]
            if unconditional and all(
                    any(granted.implies(permission)
                        for other in unconditional
                        for granted in other.permissions)
                    for permission in entry.permissions):
                findings.append(LintFinding(
                    "shadowed-phase-grant", "warn",
                    f"grant {selector}: every permission is already "
                    "granted unconditionally — the phase condition "
                    "enforces nothing"))

    findings.sort(key=lambda finding: SEVERITIES.index(finding.severity))
    return findings


def _code_covers(broader, narrower) -> bool:
    """Does ``broader``'s code selector cover ``narrower``'s?"""
    if broader.code_source is None:
        return True
    if narrower.code_source is None:
        return False
    return broader.code_source.implies(narrower.code_source) or \
        broader.code_source.url == narrower.code_source.url


def render_findings(findings: list[LintFinding]) -> str:
    if not findings:
        return "clean: no findings\n"
    return "\n".join(finding.describe() for finding in findings) + "\n"
