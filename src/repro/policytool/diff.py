"""Diff an inferred policy against the live one.

Two directions, two findings:

* **missing** — a permission the workload exercised (it is in the
  inferred policy) that the live policy does not grant to that code
  source in that phase.  Installing the live policy as-is would deny the
  recorded workload there.
* **unused** — a live code-source grant that implies *none* of the
  observed needs of any matching code source: over-privilege the trace
  says can be retired.  Only live entries that apply to an observed code
  source are judged — grants to code that never ran are out of scope of
  the trace, not "unused".

Pure user grants (Section 5.3 ``grant user`` blocks) are skipped on the
unused side: they are exercised indirectly through ``UserPermission`` and
a code-source trace cannot prove them idle.  ``UserPermission`` itself is
likewise never reported unused.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.security.permissions import Permission, UserPermission
from repro.security.policy import Policy


@dataclass(frozen=True)
class DiffEntry:
    """One divergence between live and inferred policy."""

    code_base: Optional[str]
    phase: Optional[str]
    permission: Permission

    def describe(self) -> str:
        where = self.code_base or "<all code>"
        if self.phase is not None:
            where += f' [phase "{self.phase}"]'
        return f"{where}: {self.permission!r}"


@dataclass
class PolicyDiff:
    missing: list[DiffEntry]
    unused: list[DiffEntry]

    def is_clean(self) -> bool:
        return not self.missing and not self.unused


def diff_policies(live: Policy, inferred: Policy) -> PolicyDiff:
    """Compare the live policy against an audit-inferred one."""
    missing: list[DiffEntry] = []
    observed: list[tuple] = []  # (code_source, phase, [needed permissions])
    for entry in inferred.entries():
        code_source = entry.code_source
        url = code_source.url if code_source is not None else None
        granted = live.permissions_for_code_source(code_source, entry.phase)
        for permission in entry.permissions:
            if not granted.implies(permission):
                missing.append(DiffEntry(url, entry.phase, permission))
        observed.append((code_source, entry.phase,
                         list(entry.permissions)))

    unused: list[DiffEntry] = []
    for live_entry in live.entries():
        if live_entry.code_source is None and live_entry.user is not None:
            continue  # pure user grant: exercised via UserPermission
        needed = [permission
                  for code_source, phase, permissions in observed
                  if live_entry.matches_code_source(code_source, phase)
                  for permission in permissions]
        if not needed:
            continue  # no observed code source matches this grant
        url = live_entry.code_source.url \
            if live_entry.code_source is not None else None
        for permission in live_entry.permissions:
            if isinstance(permission, UserPermission):
                continue
            if not any(permission.implies(need) for need in needed):
                unused.append(
                    DiffEntry(url, live_entry.phase, permission))
    return PolicyDiff(missing, unused)


def render_diff(diff: PolicyDiff) -> str:
    """Human-readable diff: ``+`` would-deny, ``-`` over-privilege."""
    lines: list[str] = []
    for entry in diff.missing:
        lines.append(f"+ missing  {entry.describe()}")
    for entry in diff.unused:
        lines.append(f"- unused   {entry.describe()}")
    if not lines:
        lines.append("policies agree on the observed workload")
    return "\n".join(lines) + "\n"
