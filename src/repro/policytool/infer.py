"""Inference: fold an audit slice into the smallest sufficient grant set.

The pipeline, per "Generating Stack-based Access Control Policies":

1. keep the *granted*, structured records (denials tell us what the old
   policy refused, not what the workload needs; string-only ancestry
   grants have no permission object to re-grant);
2. attribute each record to the application code sources that needed it —
   every non-system domain on the captured stack context (the walk
   required **all** of them to pass), falling back to the top-of-stack
   ``domain`` column when no stack was captured;
3. bucket by ``(code source, phase)`` and union actions per
   ``(permission type, target)``;
4. *generalize*: when at least :data:`GLOB_THRESHOLD` distinct files in
   the same directory were touched, replace them with one ``dir/*``
   grant (never at filesystem root — that would be a privilege cliff,
   not a tidy-up);
5. *minimize*: drop any permission implied by another in the same
   bucket;
6. emit exact-URL ``codeBase`` grants through the normal
   :class:`~repro.security.policy.Policy` API, so
   ``policy.render()`` round-trips through ``parse_policy``.

Generalization note: merging files unions their action sets, so a
directory where one file was read and another written becomes
``read,write`` on the glob.  That is the usual precision/size trade; pass
``glob_threshold=0`` to disable generalization entirely.
"""

from __future__ import annotations

import posixpath
from typing import Iterable, Optional

from repro.security.codesource import CodeSource
from repro.security.permissions import (
    FilePermission,
    Permission,
    make_permission,
)
from repro.security.policy import Policy

#: Distinct same-directory files needed before they collapse to ``dir/*``.
GLOB_THRESHOLD = 3

#: Domain names that never receive inferred grants: the trusted kernel
#: side of the walk, not the application under study.
_SYSTEM_DOMAIN_NAMES = {"<system>", "<ancestry>"}
_SYSTEM_URL_PREFIX = "file:/system"


def _is_grantable_domain(name: Optional[str]) -> bool:
    """True for domain names an inferred grant may target.

    Interned policy-backed domains are named by their code-source URL;
    system/boot domains carry sentinel names (or the boot URL) and stay
    out of inferred policies.
    """
    if not name or name in _SYSTEM_DOMAIN_NAMES:
        return False
    if name.startswith(_SYSTEM_URL_PREFIX):
        return False
    return ":" in name  # URL-shaped — usable as a codeBase selector


def _app_domains(record: dict) -> list[str]:
    stack = record.get("stack")
    if stack:
        return [name for name in stack if _is_grantable_domain(name)]
    domain = record.get("domain")
    if _is_grantable_domain(domain):
        return [domain]
    return []


def _record_permission(record: dict) -> Optional[Permission]:
    ptype = record.get("ptype")
    if not ptype:
        return None
    try:
        return make_permission(ptype, record.get("target"),
                               record.get("actions") or None)
    except Exception:
        return None  # foreign permission type in an imported trace


def needed_permissions(records: Iterable[dict], *,
                       phase_aware: bool = False) -> dict:
    """Step 1-3: ``(code_base, phase) -> {(ptype, target): set(actions)}``.

    With ``phase_aware`` False (the default) every bucket lands on phase
    ``None`` — an unconditional policy.  With it True, records split by
    the phase they were observed in, yielding phase-conditioned grants.
    """
    needs: dict = {}
    for record in records:
        if not record.get("granted") or not record.get("ptype"):
            continue
        phase = record.get("phase") if phase_aware else None
        for code_base in _app_domains(record):
            bucket = needs.setdefault((code_base, phase), {})
            key = (record["ptype"], record.get("target"))
            actions = bucket.setdefault(key, set())
            for action in (record.get("actions") or "").split(","):
                action = action.strip()
                if action:
                    actions.add(action)
    return needs


def _build_permissions(bucket: dict) -> list[Permission]:
    permissions = []
    for (ptype, target), actions in bucket.items():
        try:
            permissions.append(make_permission(
                ptype, target, ",".join(sorted(actions)) or None))
        except Exception:
            continue
    return permissions


def _generalize_files(permissions: list[Permission],
                      threshold: int) -> list[Permission]:
    """Step 4: ``>= threshold`` exact files in one directory → ``dir/*``."""
    if threshold <= 0:
        return permissions
    by_dir: dict[str, list[FilePermission]] = {}
    for permission in permissions:
        if not isinstance(permission, FilePermission):
            continue
        name = permission.name
        if name.endswith(("/*", "/-")) or name == "<<ALL FILES>>":
            continue  # already generalized (or maximal)
        parent = posixpath.dirname(name)
        if parent and parent != "/":
            by_dir.setdefault(parent, []).append(permission)
    out = list(permissions)
    for parent, group in by_dir.items():
        if len(group) < threshold:
            continue
        merged_actions = sorted(
            {action for permission in group
             for action in permission.actions().split(",") if action})
        out = [p for p in out if p not in group]
        out.append(FilePermission(parent + "/*", ",".join(merged_actions)))
    return out


def _drop_implied(permissions: list[Permission]) -> list[Permission]:
    """Step 5: deduplicate, then drop anything another grant implies."""
    unique = list({(type(p).__name__, p.name, p.actions()): p
                   for p in permissions}.values())
    return [p for p in unique
            if not any(q is not p and q.implies(p) for q in unique)]


def infer_policy(records: Iterable[dict], *, phase_aware: bool = False,
                 glob_threshold: int = GLOB_THRESHOLD) -> Policy:
    """The full pipeline: an audit slice in, a least-privilege policy out.

    The result renders to ``security.policy`` text via ``.render()`` and
    parses back with ``parse_policy`` (grant order and permission order
    are deterministic, so diffs are stable).
    """
    needs = needed_permissions(records, phase_aware=phase_aware)
    policy = Policy()
    for code_base, phase in sorted(needs,
                                   key=lambda k: (k[0], k[1] or "")):
        permissions = _build_permissions(needs[(code_base, phase)])
        permissions = _generalize_files(permissions, glob_threshold)
        permissions = _drop_implied(permissions)
        permissions.sort(
            key=lambda p: (type(p).__name__, p.name or "", p.actions()))
        policy.add_grant(permissions, code_base=code_base, phase=phase)
    return policy


def unsatisfied_records(policy: Policy, records: Iterable[dict], *,
                        phase_aware: bool = False) -> list[dict]:
    """The granted records ``policy`` would *deny* (the would-deny set).

    Empty means ``policy`` is sufficient for the recorded workload: every
    domain that passed a check still passes it.  Used by the sufficiency
    tests and by ``diff`` to cross-check a tightened policy before
    installing it.
    """
    missing = []
    for record in records:
        if not record.get("granted"):
            continue
        permission = _record_permission(record)
        if permission is None:
            continue
        phase = record.get("phase") if phase_aware else None
        for code_base in _app_domains(record):
            granted = policy.permissions_for_code_source(
                CodeSource(code_base), phase)
            if not granted.implies(permission):
                missing.append(record)
                break
    return missing
