"""Operating-system users for the simulated Unix underneath the JVM.

Section 3.1: before the OS transfers control to the JVM it initializes the
process with "open file descriptors for standard input and standard output,
user id's, and process id's".  These are *OS-level* users — distinct from
the paper's Java-level users (Section 5.2), which live in
:mod:`repro.security.auth`.  The distinction matters: the JVM process runs
as one OS user, and files that user cannot see produce
``FileNotFoundException`` rather than ``SecurityException`` (Feature 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.jvm.errors import IllegalArgumentException

ROOT_UID = 0


@dataclass(frozen=True)
class OsUser:
    """A Unix account: name, numeric ids, home directory, and groups."""

    name: str
    uid: int
    gid: int
    home: str
    groups: frozenset[int] = field(default_factory=frozenset)

    @property
    def is_superuser(self) -> bool:
        return self.uid == ROOT_UID

    def in_group(self, gid: int) -> bool:
        return gid == self.gid or gid in self.groups


class OsUserTable:
    """The ``/etc/passwd`` of the simulated machine."""

    def __init__(self):
        self._by_name: dict[str, OsUser] = {}
        self._by_uid: dict[int, OsUser] = {}

    def add(self, user: OsUser) -> OsUser:
        if user.name in self._by_name:
            raise IllegalArgumentException(f"duplicate OS user {user.name!r}")
        if user.uid in self._by_uid:
            raise IllegalArgumentException(f"duplicate uid {user.uid}")
        self._by_name[user.name] = user
        self._by_uid[user.uid] = user
        return user

    def lookup(self, name: str) -> OsUser:
        user = self._by_name.get(name)
        if user is None:
            raise IllegalArgumentException(f"unknown OS user {name!r}")
        return user

    def lookup_uid(self, uid: int) -> OsUser:
        user = self._by_uid.get(uid)
        if user is None:
            raise IllegalArgumentException(f"unknown uid {uid}")
        return user

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def users(self) -> list[OsUser]:
        return list(self._by_name.values())


def standard_user_table() -> OsUserTable:
    """The default accounts of the simulated machine.

    ``jvm`` is the unprivileged account the Java Virtual Machine process
    runs under in the experiments; ``root`` owns files the JVM process must
    *not* be able to see (used to reproduce the
    FileNotFound-instead-of-Security behaviour of Feature 3).
    """
    table = OsUserTable()
    table.add(OsUser("root", ROOT_UID, 0, "/root"))
    table.add(OsUser("jvm", 1000, 1000, "/home/jvm"))
    table.add(OsUser("alice", 1001, 1001, "/home/alice"))
    table.add(OsUser("bob", 1002, 1002, "/home/bob"))
    return table
