"""An in-memory Unix file system underneath the simulated JVM.

The paper's file-access experiments need a real Unix permission model below
the Java layer: owners, groups, mode bits, and the behaviour that a file the
JVM *process* user cannot reach simply looks absent (Feature 3).  This
module provides inodes, directories, symlinks, mode-bit permission checks,
and a small handle-based I/O API that :mod:`repro.io.file` wraps with the
Java security checks.

Errors are VFS-specific exceptions (not Java exceptions); the Java file
layer translates them — in particular, both :class:`VfsNotFound` and
:class:`VfsPermissionDenied` surface to Java code as
``FileNotFoundException``, exactly the asymmetry the paper points out.
"""

from __future__ import annotations

import posixpath
import threading
from typing import Iterable, NamedTuple, Optional

from repro.unixfs.users import OsUser

_MAX_SYMLINK_DEPTH = 16


class VfsError(Exception):
    """Root of the VFS error hierarchy."""

    def __init__(self, path: str, message: str):
        super().__init__(f"{message}: {path}")
        self.path = path


class VfsNotFound(VfsError):
    def __init__(self, path: str):
        super().__init__(path, "no such file or directory")


class VfsPermissionDenied(VfsError):
    def __init__(self, path: str):
        super().__init__(path, "permission denied")


class VfsExists(VfsError):
    def __init__(self, path: str):
        super().__init__(path, "file exists")


class VfsNotADirectory(VfsError):
    def __init__(self, path: str):
        super().__init__(path, "not a directory")


class VfsIsADirectory(VfsError):
    def __init__(self, path: str):
        super().__init__(path, "is a directory")


class VfsDirectoryNotEmpty(VfsError):
    def __init__(self, path: str):
        super().__init__(path, "directory not empty")


class VfsSymlinkLoop(VfsError):
    def __init__(self, path: str):
        super().__init__(path, "too many levels of symbolic links")


# Permission bit helpers -----------------------------------------------------

READ, WRITE, EXECUTE = 4, 2, 1


class Inode:
    """One file-system object: regular file, directory, or symlink."""

    _counter = 0
    _counter_lock = threading.Lock()

    def __init__(self, kind: str, mode: int, uid: int, gid: int):
        assert kind in ("file", "dir", "symlink")
        with Inode._counter_lock:
            Inode._counter += 1
            self.ino = Inode._counter
        self.kind = kind
        self.mode = mode
        self.uid = uid
        self.gid = gid
        self.mtime = 0
        self.data = bytearray() if kind == "file" else None
        self.children: Optional[dict[str, Inode]] = (
            {} if kind == "dir" else None)
        self.target: Optional[str] = None  # symlink target
        self.nlink = 1

    def permits(self, user: OsUser, want: int) -> bool:
        """Unix mode-bit check: owner, then group, then other."""
        if user.is_superuser:
            # root may do anything except execute a file with no x bits;
            # we do not model executables, so root passes everything.
            return True
        if user.uid == self.uid:
            bits = (self.mode >> 6) & 7
        elif user.in_group(self.gid):
            bits = (self.mode >> 3) & 7
        else:
            bits = self.mode & 7
        return (bits & want) == want

    @property
    def size(self) -> int:
        if self.kind == "file":
            return len(self.data)
        if self.kind == "symlink":
            return len(self.target or "")
        return len(self.children)


class VfsStat(NamedTuple):
    """Result of :meth:`VirtualFileSystem.stat`."""

    ino: int
    kind: str
    mode: int
    uid: int
    gid: int
    size: int
    mtime: int
    nlink: int


class VfsFileHandle:
    """An open file: position, access mode, and the owning inode."""

    def __init__(self, fs: "VirtualFileSystem", inode: Inode, path: str,
                 readable: bool, writable: bool, append: bool):
        self._fs = fs
        self._inode = inode
        self.path = path
        self.readable = readable
        self.writable = writable
        self._pos = len(inode.data) if append else 0
        self._append = append
        self.closed = False

    def _check_open(self) -> None:
        if self.closed:
            raise VfsError(self.path, "I/O on closed file")

    def read(self, size: int = -1) -> bytes:
        self._check_open()
        if not self.readable:
            raise VfsPermissionDenied(self.path)
        with self._fs._lock:
            data = self._inode.data
            if size is None or size < 0:
                chunk = bytes(data[self._pos:])
            else:
                chunk = bytes(data[self._pos:self._pos + size])
            self._pos += len(chunk)
            return chunk

    def write(self, payload: bytes) -> int:
        self._check_open()
        if not self.writable:
            raise VfsPermissionDenied(self.path)
        with self._fs._lock:
            data = self._inode.data
            if self._append:
                self._pos = len(data)
            end = self._pos + len(payload)
            if self._pos > len(data):
                data.extend(b"\0" * (self._pos - len(data)))
            data[self._pos:end] = payload
            self._pos = end
            self._inode.mtime = self._fs._tick()
            return len(payload)

    def seek(self, pos: int) -> None:
        self._check_open()
        if pos < 0:
            raise VfsError(self.path, "negative seek position")
        self._pos = pos

    def tell(self) -> int:
        return self._pos

    def truncate(self, size: int = 0) -> None:
        self._check_open()
        if not self.writable:
            raise VfsPermissionDenied(self.path)
        with self._fs._lock:
            del self._inode.data[size:]
            self._inode.mtime = self._fs._tick()

    def close(self) -> None:
        self.closed = True


class SyntheticFileHandle:
    """A read-only handle over a generated byte snapshot (mounted files).

    API-compatible with :class:`VfsFileHandle` for the read side; writes
    are denied — mounted trees like ``/proc`` are read-only windows onto
    kernel state.
    """

    def __init__(self, path: str, payload: bytes):
        self.path = path
        self._payload = payload
        self._pos = 0
        self.readable = True
        self.writable = False
        self.closed = False

    def read(self, size: int = -1) -> bytes:
        if self.closed:
            raise VfsError(self.path, "I/O on closed file")
        if size is None or size < 0:
            chunk = self._payload[self._pos:]
        else:
            chunk = self._payload[self._pos:self._pos + size]
        self._pos += len(chunk)
        return chunk

    def write(self, payload: bytes) -> int:
        raise VfsPermissionDenied(self.path)

    def truncate(self, size: int = 0) -> None:
        raise VfsPermissionDenied(self.path)

    def seek(self, pos: int) -> None:
        if pos < 0:
            raise VfsError(self.path, "negative seek position")
        self._pos = pos

    def tell(self) -> int:
        return self._pos

    def close(self) -> None:
        self.closed = True


class VirtualFileSystem:
    """The whole in-memory file-system tree.

    All mutating and resolving operations take the acting :class:`OsUser`
    and enforce Unix semantics: search (x) permission along the path, read
    permission to open for reading or to list a directory, write permission
    on the *parent directory* to create/remove entries, and so on.

    A prefix of the tree may be *mounted* onto a synthetic provider
    (:meth:`mount`) — a read-only object answering ``stat``/``listdir``/
    ``read`` for paths under the prefix, the mechanism behind ``/proc``.
    The no-mounts fast path is a single empty-dict check.
    """

    def __init__(self):
        self._lock = threading.RLock()
        self._clock = 0
        self.root = Inode("dir", 0o755, 0, 0)
        #: Mounted synthetic trees: normalized prefix -> provider.
        self._mounts: dict[str, object] = {}

    # -- synthetic mounts ------------------------------------------------------

    def mount(self, prefix: str, provider) -> None:
        """Mount a read-only synthetic provider at ``prefix``.

        The provider answers ``stat(rel, user)``, ``listdir(rel, user)``
        and ``read(rel, user)`` for paths relative to the mount point
        (``"/"`` for the mount point itself), raising VFS errors.  A real
        root-owned ``0o555`` directory is created at the mount point so
        the parent directory lists it.
        """
        normalized = self.normalize(prefix)
        if normalized == "/":
            raise VfsError(prefix, "cannot mount over /")
        with self._lock:
            node = self.root
            for part in normalized.lstrip("/").split("/"):
                if node.kind != "dir":
                    raise VfsNotADirectory(normalized)
                child = node.children.get(part)
                if child is None:
                    child = Inode("dir", 0o555, 0, 0)
                    child.mtime = self._tick()
                    node.children[part] = child
                node = child
            self._mounts[normalized] = provider

    def unmount(self, prefix: str) -> None:
        with self._lock:
            self._mounts.pop(self.normalize(prefix), None)

    def _mount_for(self, normalized: str):
        """(provider, relative-path) when ``normalized`` is mounted."""
        if not self._mounts:
            return None
        for prefix, provider in self._mounts.items():
            if normalized == prefix:
                return provider, "/"
            if normalized.startswith(prefix + "/"):
                return provider, normalized[len(prefix):]
        return None

    def _deny_if_mounted(self, normalized: str) -> None:
        if self._mounts and self._mount_for(normalized) is not None:
            raise VfsPermissionDenied(normalized)

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    # -- path plumbing -------------------------------------------------------

    @staticmethod
    def normalize(path: str, cwd: str = "/") -> str:
        if not path:
            raise VfsNotFound(path)
        if not path.startswith("/"):
            path = posixpath.join(cwd, path)
        normalized = posixpath.normpath(path)
        return normalized if normalized.startswith("/") else "/" + normalized

    def _lookup(self, path: str, user: OsUser,
                follow_final_symlink: bool = True,
                _depth: int = 0) -> Inode:
        """Resolve an absolute normalized path, enforcing search permission."""
        if _depth > _MAX_SYMLINK_DEPTH:
            raise VfsSymlinkLoop(path)
        node = self.root
        if path == "/":
            return node
        parts = path.lstrip("/").split("/")
        walked = ""
        for index, part in enumerate(parts):
            if node.kind != "dir":
                raise VfsNotADirectory(walked or "/")
            if not node.permits(user, EXECUTE):
                raise VfsPermissionDenied(walked or "/")
            child = node.children.get(part)
            walked = f"{walked}/{part}"
            if child is None:
                raise VfsNotFound(walked)
            is_last = index == len(parts) - 1
            if child.kind == "symlink" and (follow_final_symlink or
                                            not is_last):
                target = self.normalize(child.target,
                                        posixpath.dirname(walked) or "/")
                remainder = "/".join(parts[index + 1:])
                full = target if not remainder \
                    else posixpath.join(target, remainder)
                return self._lookup(self.normalize(full), user,
                                    follow_final_symlink, _depth + 1)
            node = child
        return node

    def _parent_of(self, path: str, user: OsUser) -> tuple[Inode, str]:
        parent_path = posixpath.dirname(path) or "/"
        name = posixpath.basename(path)
        if not name:
            raise VfsError(path, "invalid path")
        parent = self._lookup(parent_path, user)
        if parent.kind != "dir":
            raise VfsNotADirectory(parent_path)
        return parent, name

    # -- queries ---------------------------------------------------------------

    def exists(self, path: str, user: OsUser, cwd: str = "/") -> bool:
        try:
            self.stat(path, user, cwd)
            return True
        except VfsError:
            return False

    def stat(self, path: str, user: OsUser, cwd: str = "/") -> VfsStat:
        normalized = self.normalize(path, cwd)
        mounted = self._mount_for(normalized)
        if mounted is not None:
            provider, rel = mounted
            return provider.stat(rel, user)
        with self._lock:
            node = self._lookup(normalized, user)
            return VfsStat(node.ino, node.kind, node.mode, node.uid,
                           node.gid, node.size, node.mtime, node.nlink)

    def is_dir(self, path: str, user: OsUser, cwd: str = "/") -> bool:
        try:
            return self.stat(path, user, cwd).kind == "dir"
        except VfsError:
            return False

    def is_file(self, path: str, user: OsUser, cwd: str = "/") -> bool:
        try:
            return self.stat(path, user, cwd).kind == "file"
        except VfsError:
            return False

    def listdir(self, path: str, user: OsUser, cwd: str = "/") -> list[str]:
        normalized = self.normalize(path, cwd)
        mounted = self._mount_for(normalized)
        if mounted is not None:
            provider, rel = mounted
            return provider.listdir(rel, user)
        with self._lock:
            node = self._lookup(normalized, user)
            if node.kind != "dir":
                raise VfsNotADirectory(normalized)
            if not node.permits(user, READ):
                raise VfsPermissionDenied(normalized)
            return sorted(node.children)

    # -- directory and file creation ---------------------------------------------

    def mkdir(self, path: str, user: OsUser, mode: int = 0o755,
              cwd: str = "/") -> None:
        with self._lock:
            normalized = self.normalize(path, cwd)
            self._deny_if_mounted(normalized)
            parent, name = self._parent_of(normalized, user)
            if name in parent.children:
                raise VfsExists(normalized)
            if not parent.permits(user, WRITE | EXECUTE):
                raise VfsPermissionDenied(normalized)
            child = Inode("dir", mode, user.uid, user.gid)
            child.mtime = self._tick()
            parent.children[name] = child
            parent.mtime = self._tick()

    def makedirs(self, path: str, user: OsUser, mode: int = 0o755,
                 cwd: str = "/") -> None:
        normalized = self.normalize(path, cwd)
        parts = normalized.lstrip("/").split("/")
        built = ""
        for part in parts:
            built = f"{built}/{part}"
            if not self.exists(built, user):
                self.mkdir(built, user, mode)

    def create_file(self, path: str, user: OsUser, mode: int = 0o644,
                    cwd: str = "/", exist_ok: bool = False) -> None:
        with self._lock:
            normalized = self.normalize(path, cwd)
            self._deny_if_mounted(normalized)
            parent, name = self._parent_of(normalized, user)
            if name in parent.children:
                if exist_ok:
                    return
                raise VfsExists(normalized)
            if not parent.permits(user, WRITE | EXECUTE):
                raise VfsPermissionDenied(normalized)
            child = Inode("file", mode, user.uid, user.gid)
            child.mtime = self._tick()
            parent.children[name] = child
            parent.mtime = self._tick()

    def symlink(self, target: str, path: str, user: OsUser,
                cwd: str = "/") -> None:
        with self._lock:
            normalized = self.normalize(path, cwd)
            self._deny_if_mounted(normalized)
            parent, name = self._parent_of(normalized, user)
            if not parent.permits(user, WRITE | EXECUTE):
                raise VfsPermissionDenied(normalized)
            if name in parent.children:
                raise VfsExists(normalized)
            child = Inode("symlink", 0o777, user.uid, user.gid)
            child.target = target
            child.mtime = self._tick()
            parent.children[name] = child
            parent.mtime = self._tick()

    def readlink(self, path: str, user: OsUser, cwd: str = "/") -> str:
        with self._lock:
            normalized = self.normalize(path, cwd)
            node = self._lookup(normalized, user, follow_final_symlink=False)
            if node.kind != "symlink":
                raise VfsError(normalized, "not a symlink")
            return node.target

    # -- open / read / write ----------------------------------------------------

    def open(self, path: str, user: OsUser, mode: str = "r",
             cwd: str = "/", create_mode: int = 0o644) -> VfsFileHandle:
        """Open a file.  ``mode`` is one of r, w, a, r+ (w/a create)."""
        if mode not in ("r", "w", "a", "r+"):
            raise VfsError(path, f"unsupported open mode {mode!r}")
        normalized = self.normalize(path, cwd)
        mounted = self._mount_for(normalized)
        if mounted is not None:
            provider, rel = mounted
            if mode != "r":
                raise VfsPermissionDenied(normalized)
            return SyntheticFileHandle(normalized, provider.read(rel, user))
        with self._lock:
            try:
                node = self._lookup(normalized, user)
            except VfsNotFound:
                if mode in ("w", "a"):
                    self.create_file(normalized, user, create_mode)
                    node = self._lookup(normalized, user)
                else:
                    raise
            if node.kind == "dir":
                raise VfsIsADirectory(normalized)
            readable = mode in ("r", "r+")
            writable = mode in ("w", "a", "r+")
            if readable and not node.permits(user, READ):
                raise VfsPermissionDenied(normalized)
            if writable and not node.permits(user, WRITE):
                raise VfsPermissionDenied(normalized)
            if mode == "w":
                del node.data[:]
                node.mtime = self._tick()
            return VfsFileHandle(self, node, normalized, readable, writable,
                                 append=(mode == "a"))

    def read_file(self, path: str, user: OsUser, cwd: str = "/") -> bytes:
        handle = self.open(path, user, "r", cwd)
        try:
            return handle.read()
        finally:
            handle.close()

    def write_file(self, path: str, payload: bytes, user: OsUser,
                   cwd: str = "/", mode: str = "w") -> None:
        handle = self.open(path, user, mode, cwd)
        try:
            handle.write(payload)
        finally:
            handle.close()

    # -- removal and renaming -----------------------------------------------------

    def unlink(self, path: str, user: OsUser, cwd: str = "/") -> None:
        with self._lock:
            normalized = self.normalize(path, cwd)
            self._deny_if_mounted(normalized)
            parent, name = self._parent_of(normalized, user)
            node = parent.children.get(name)
            if node is None:
                raise VfsNotFound(normalized)
            if node.kind == "dir":
                raise VfsIsADirectory(normalized)
            if not parent.permits(user, WRITE | EXECUTE):
                raise VfsPermissionDenied(normalized)
            del parent.children[name]
            parent.mtime = self._tick()

    def rmdir(self, path: str, user: OsUser, cwd: str = "/") -> None:
        with self._lock:
            normalized = self.normalize(path, cwd)
            self._deny_if_mounted(normalized)
            parent, name = self._parent_of(normalized, user)
            node = parent.children.get(name)
            if node is None:
                raise VfsNotFound(normalized)
            if node.kind != "dir":
                raise VfsNotADirectory(normalized)
            if node.children:
                raise VfsDirectoryNotEmpty(normalized)
            if not parent.permits(user, WRITE | EXECUTE):
                raise VfsPermissionDenied(normalized)
            del parent.children[name]
            parent.mtime = self._tick()

    def rename(self, old: str, new: str, user: OsUser,
               cwd: str = "/") -> None:
        with self._lock:
            old_n = self.normalize(old, cwd)
            new_n = self.normalize(new, cwd)
            self._deny_if_mounted(old_n)
            self._deny_if_mounted(new_n)
            old_parent, old_name = self._parent_of(old_n, user)
            node = old_parent.children.get(old_name)
            if node is None:
                raise VfsNotFound(old_n)
            new_parent, new_name = self._parent_of(new_n, user)
            if not old_parent.permits(user, WRITE | EXECUTE):
                raise VfsPermissionDenied(old_n)
            if not new_parent.permits(user, WRITE | EXECUTE):
                raise VfsPermissionDenied(new_n)
            existing = new_parent.children.get(new_name)
            if existing is not None and existing.kind == "dir":
                raise VfsIsADirectory(new_n)
            new_parent.children[new_name] = node
            del old_parent.children[old_name]
            old_parent.mtime = self._tick()
            new_parent.mtime = self._tick()

    # -- metadata -------------------------------------------------------------------

    def chmod(self, path: str, mode: int, user: OsUser,
              cwd: str = "/") -> None:
        with self._lock:
            normalized = self.normalize(path, cwd)
            self._deny_if_mounted(normalized)
            node = self._lookup(normalized, user)
            if not user.is_superuser and user.uid != node.uid:
                raise VfsPermissionDenied(normalized)
            node.mode = mode
            node.mtime = self._tick()

    def chown(self, path: str, uid: int, gid: int, user: OsUser,
              cwd: str = "/") -> None:
        with self._lock:
            normalized = self.normalize(path, cwd)
            self._deny_if_mounted(normalized)
            node = self._lookup(normalized, user)
            if not user.is_superuser:
                raise VfsPermissionDenied(normalized)
            node.uid = uid
            node.gid = gid
            node.mtime = self._tick()

    # -- bulk helpers ----------------------------------------------------------------

    def walk(self, path: str, user: OsUser) -> Iterable[tuple[str, list[str]]]:
        """Yield (dir_path, entry_names) pairs, depth-first."""
        normalized = self.normalize(path)
        entries = self.listdir(normalized, user)
        yield normalized, entries
        for entry in entries:
            child = posixpath.join(normalized, entry)
            if self.is_dir(child, user):
                yield from self.walk(child, user)
