"""The simulated machine: file system, accounts, and OS process context.

Section 3.1 describes the JVM as "a process in the underlying operating
system" whose initialization (file descriptors, user id, process id) is
inherited from the launching shell.  :class:`OsProcessContext` is exactly
that per-process state; :func:`standard_machine` builds the canonical
test-bed layout used by the examples, tests, and benchmarks.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.unixfs.users import OsUser, OsUserTable, standard_user_table
from repro.unixfs.vfs import VirtualFileSystem


@dataclass
class Machine:
    """One simulated computer: a file system plus its account table."""

    vfs: VirtualFileSystem
    users: OsUserTable
    hostname: str = "javaos.example.com"
    os_name: str = "SimUnix"
    os_version: str = "4.3"
    _pid_counter: int = field(default=100, repr=False)
    _pid_lock: threading.Lock = field(default_factory=threading.Lock,
                                      repr=False)

    def next_pid(self) -> int:
        with self._pid_lock:
            self._pid_counter += 1
            return self._pid_counter


@dataclass
class OsProcessContext:
    """Per-process OS state a JVM inherits at launch (Section 3.1)."""

    machine: Machine
    user: OsUser
    pid: int
    cwd: str = "/"
    env: dict[str, str] = field(default_factory=dict)
    stdin: Optional[object] = None
    stdout: Optional[object] = None
    stderr: Optional[object] = None

    @property
    def vfs(self) -> VirtualFileSystem:
        return self.machine.vfs


def standard_machine(hostname: str = "javaos.example.com") -> Machine:
    """Build the canonical simulated machine.

    Layout::

        /tmp                    world-writable scratch space
        /home/alice, /home/bob  per-user homes (mode 0700, per-user owned)
        /home/jvm               home of the account running the JVM process
        /usr/local/java/...     locally installed Java code (tools, apps)
        /usr/lib/fonts/...      font data read by trusted Font code (§5.6)
        /etc/...                config; /etc/shadow is root-only (Feature 3)
        /var/backup             destination used by the backup application
    """
    machine = Machine(vfs=VirtualFileSystem(),
                      users=standard_user_table(), hostname=hostname)
    vfs = machine.vfs
    root = machine.users.lookup("root")
    alice = machine.users.lookup("alice")
    bob = machine.users.lookup("bob")
    jvm = machine.users.lookup("jvm")

    vfs.makedirs("/tmp", root, mode=0o777)
    vfs.makedirs("/etc", root)
    vfs.makedirs("/var/backup", root, mode=0o777)
    vfs.makedirs("/usr/local/java/tools", root)
    vfs.makedirs("/usr/local/java/apps", root)
    vfs.makedirs("/usr/lib/fonts", root)
    vfs.makedirs("/root", root, mode=0o700)

    # Home directories: in the multi-user JavaOS scenario the JVM process
    # is the only "OS user" that matters — per-user isolation is done by
    # the *Java* policy (Section 5.3), so the JVM process account owns the
    # homes.  /root and /etc/shadow stay root-only to reproduce Feature 3's
    # FileNotFound-instead-of-Security behaviour.
    vfs.makedirs("/home", root)
    for user in (alice, bob, jvm):
        vfs.mkdir(user.home, root, mode=0o755)
        vfs.chown(user.home, jvm.uid, jvm.gid, root)

    # Files the experiments rely on.
    vfs.write_file("/etc/motd", b"Welcome to the multi-processing JVM.\n",
                   root)
    vfs.chmod("/etc/motd", 0o644, root)
    vfs.write_file("/etc/shadow", b"root:x:0:0\n", root)
    vfs.chmod("/etc/shadow", 0o600, root)  # invisible to the jvm user
    vfs.write_file("/usr/lib/fonts/default.fnt",
                   b"FONT default 12pt metrics...\n", root)
    vfs.chmod("/usr/lib/fonts/default.fnt", 0o644, root)
    vfs.write_file("/home/alice/notes.txt", b"alice's private notes\n", jvm)
    vfs.write_file("/home/bob/todo.txt", b"bob's todo list\n", jvm)
    vfs.write_file("/root/secrets.txt", b"root's secrets\n", root)
    vfs.chmod("/root/secrets.txt", 0o600, root)
    return machine


def standard_process(machine: Optional[Machine] = None,
                     user_name: str = "jvm",
                     cwd: str = "/",
                     hostname: str = "javaos.example.com"
                     ) -> OsProcessContext:
    """An OS process context for launching a JVM on ``machine``."""
    machine = machine if machine is not None else standard_machine(hostname)
    user = machine.users.lookup(user_name)
    return OsProcessContext(machine=machine, user=user,
                            pid=machine.next_pid(), cwd=cwd,
                            env={"HOME": user.home, "USER": user.name})
