"""A ``/proc``-style introspection surface over the application table.

Mounted read-only at ``/proc`` by the multi-processing launcher::

    /proc/vmstat              VM-wide telemetry rollup (world-readable)
    /proc/sched               the event-loop scheduler: live tasks, queue
                              depths, switch/timer/error counters
    /proc/security/cache      permission-cache hit/miss/invalidation stats
    /proc/dist/transport      dist-fabric transport stats: frames, bytes,
                              coalescing, and the channel pool
    /proc/cluster/nodes       cluster membership table (controller VMs only)
    /proc/cluster/placements  recent placement decisions
    /proc/super/services      supervised services: state, policy, restarts
    /proc/super/admission     the admission controller's counters and queue
    /proc/<app-id>/status     one application's identity and accounting
    /proc/<app-id>/metrics    its slice of the metrics registry
    /proc/<app-id>/audit      its tail of the security audit log (JSONL)

Gating is by the *Java-level* user model, not OS uids: every Java file
operation runs as the JVM process's OS user (Feature 3), so mode bits
cannot distinguish Alice's application from Bob's.  Instead the provider
resolves the *current application* (the injected ``current_app`` callable)
and allows a per-application directory to be read when the reader is a
host thread, runs as the same :class:`~repro.security.auth.JavaUser`, or
is an ancestor application (the same ancestry rule the system security
manager applies to threads, Section 5.6).  Denials surface as
:class:`~repro.unixfs.vfs.VfsPermissionDenied`, which the Java file layer
translates to ``FileNotFoundException`` — deliberately the same Feature 3
asymmetry as OS-level permission denials: other users' telemetry simply
looks absent.
"""

from __future__ import annotations

import json
from typing import Callable, Optional

from repro.unixfs.vfs import (
    VfsNotADirectory,
    VfsNotFound,
    VfsPermissionDenied,
    VfsStat,
)

#: How many audit records the per-application audit file shows.
AUDIT_TAIL = 100


def _ino(rel: str) -> int:
    """Stable synthetic inode number for a /proc path."""
    return 0x70000000 | (hash(rel) & 0x0FFFFFFF)


class ProcFileSystem:
    """The synthetic provider mounted at ``/proc``."""

    def __init__(self, vm, current_app: Optional[Callable] = None):
        self.vm = vm
        self._current_app = current_app

    # -- resolution ------------------------------------------------------------

    def _application(self, app_id: int):
        registry = self.vm.application_registry
        application = registry.find(app_id) if registry is not None else None
        if application is None:
            raise VfsNotFound(f"/proc/{app_id}")
        return application

    def _gate(self, application, rel: str) -> None:
        """Owning-user gate: host, same user, or ancestor application."""
        current = self._current_app() if self._current_app is not None \
            else None
        if current is None:
            return  # host threads play the native launcher and are trusted
        if current is application:
            return
        if current.user == application.user:
            return
        if current.thread_group.parent_of(application.thread_group):
            return
        raise VfsPermissionDenied(f"/proc{rel}")

    def _split(self, rel: str) -> list[str]:
        return [part for part in rel.split("/") if part]

    # -- content ---------------------------------------------------------------

    def _status_text(self, application) -> str:
        stats = application.stats
        limits = application.limits
        lines = [
            f"Name:\t{application.name}",
            f"Id:\t{application.app_id}",
            f"Class:\t{application.class_name or '-'}",
            f"State:\t{application.state}",
            f"User:\t{application.user.name}",
            f"Parent:\t{application.parent.app_id}"
            if application.parent is not None else "Parent:\t-",
            f"Cwd:\t{application.cwd}",
            f"ThreadsLive:\t{len(application.live_threads())}",
            f"NonDaemon:\t{application.non_daemon_count}",
            f"ThreadsEver:\t{stats['threads']}",
            f"StreamsEver:\t{stats['streams']}",
            f"WindowsEver:\t{stats['windows']}",
            f"ChildrenEver:\t{stats['children']}",
            f"LimitThreads:\t{limits.max_threads or '-'}",
            f"LimitWindows:\t{limits.max_windows or '-'}",
            f"LimitChildren:\t{limits.max_children or '-'}",
            f"LimitStreams:\t{limits.max_open_streams or '-'}",
        ]
        return "\n".join(lines) + "\n"

    def _metrics_text(self, application) -> str:
        return self.vm.telemetry.metrics.render_text(app=application.name)

    def _audit_text(self, application) -> str:
        records = self.vm.telemetry.audit.tail(AUDIT_TAIL,
                                               app_id=application.app_id)
        return "".join(json.dumps(r, default=str) + "\n" for r in records)

    def _vmstat_text(self) -> str:
        telemetry = self.vm.telemetry
        metrics = telemetry.metrics
        audit = telemetry.audit
        lines = [
            f"apps.live\t{int(metrics.total('apps.live'))}",
            f"apps.launched\t{int(metrics.total('apps.launched'))}",
            f"apps.reaped\t{int(metrics.total('apps.reaped'))}",
            f"threads.live\t{int(metrics.total('app.threads.live'))}",
            f"threads.started\t{int(metrics.total('app.threads.started'))}",
            f"classload.defined\t"
            f"{int(metrics.total('classload.defined'))}",
            f"reload.classes\t{int(metrics.total('reload.classes'))}",
            f"reload.bytes\t{int(metrics.total('reload.bytes'))}",
            f"awt.events.dispatched\t"
            f"{int(metrics.total('awt.events.dispatched'))}",
            f"awt.dispatch.batched\t"
            f"{int(metrics.total('awt.dispatch.batched'))}",
            f"awt.repaint.coalesced\t"
            f"{int(metrics.total('awt.repaint.coalesced'))}",
            f"limits.rejected\t{int(metrics.total('limits.rejected'))}",
            f"dist.frames.sent\t{int(metrics.total('dist.frames.sent'))}",
            f"dist.frames.received\t"
            f"{int(metrics.total('dist.frames.received'))}",
            f"dist.frames.coalesced\t"
            f"{int(metrics.total('dist.frames.coalesced'))}",
            f"dist.frames.vectored\t"
            f"{int(metrics.total('dist.frames.vectored'))}",
            f"security.checks\t{audit.grants + audit.denies}",
            f"security.grants\t{audit.grants}",
            f"security.denies\t{audit.denies}",
            f"security.audit.dropped\t{audit.dropped}",
            f"security.cache.hits\t"
            f"{int(metrics.total('security.cache.hit'))}",
            f"security.cache.misses\t"
            f"{int(metrics.total('security.cache.miss'))}",
            f"security.cache.invalidations\t"
            f"{int(metrics.total('security.cache.invalidation'))}",
            f"security.cache.interned_domains\t"
            f"{self._interned_domain_count()}",
        ]
        ring = self._ring_snapshot()
        lines.extend([
            f"ipc.ring.wakeups\t{ring['wakeups']}",
            f"ipc.ring.suppressed_wakeups\t{ring['suppressed_wakeups']}",
            f"ipc.ring.zero_copy_bytes\t{ring['zero_copy_bytes']}",
        ])
        sched = self._sched_stats()
        lines.extend([
            f"sched.tasks.live\t{sched['live']}",
            f"sched.tasks.spawned\t{sched['spawned']}",
            f"sched.tasks.completed\t{sched['completed']}",
            f"sched.switches\t{sched['switches']}",
        ])
        if self.vm.cluster is not None:
            lines.extend([
                f"cluster.nodes.live\t"
                f"{int(metrics.total('cluster.nodes.live'))}",
                f"cluster.placements\t"
                f"{int(metrics.total('cluster.placements'))}",
                f"cluster.failovers\t"
                f"{int(metrics.total('cluster.failovers'))}",
            ])
        if self._has_super():
            lines.extend([
                f"super.restarts\t{int(metrics.total('super.restarts'))}",
                f"super.escalations\t"
                f"{int(metrics.total('super.escalations'))}",
                f"admission.admitted\t"
                f"{int(metrics.total('admission.admitted'))}",
                f"admission.rejected\t"
                f"{int(metrics.total('admission.rejected'))}",
            ])
        return "\n".join(lines) + "\n"

    def _interned_domain_count(self) -> int:
        counter = getattr(self.vm.policy, "interned_domain_count", None)
        return counter() if counter is not None else 0

    def _policy_text(self, application) -> str:
        """``/proc/policy/<app-id>``: phase, recording status, and the
        inferred-vs-live grant delta for one application."""
        from repro.policytool.diff import diff_policies
        from repro.policytool.infer import infer_policy
        recorder = getattr(self.vm, "policy_recorder", None)
        slice_ = recorder.slice_for(application.app_id) \
            if recorder is not None else None
        if slice_ is not None:
            records = slice_.snapshot()
            recording = "on" if slice_.active else "done"
        else:
            records = self.vm.telemetry.audit.records(
                app_id=application.app_id)
            recording = "off"
        inferred = infer_policy(records, phase_aware=True)
        grant_count = sum(len(entry.permissions)
                          for entry in inferred.entries())
        lines = [
            f"Phase:\t{application.phase}",
            f"Recording:\t{recording}",
            f"Records:\t{len(records)}",
            f"InferredGrants:\t{grant_count}",
        ]
        live = self.vm.policy
        if live is not None:
            delta = diff_policies(live, inferred)
            lines.append(f"MissingGrants:\t{len(delta.missing)}")
            lines.append(f"UnusedGrants:\t{len(delta.unused)}")
        return "\n".join(lines) + "\n"

    def _security_cache_text(self) -> str:
        """The epoch-invalidated permission cache, layer by layer."""
        metrics = self.vm.telemetry.metrics

        def total(name: str, **match) -> int:
            return int(metrics.total(name, **match))

        lines = [
            f"hits.policy\t{total('security.cache.hit', layer='policy')}",
            f"misses.policy\t"
            f"{total('security.cache.miss', layer='policy')}",
            f"hits.domain\t{total('security.cache.hit', layer='domain')}",
            f"misses.domain\t"
            f"{total('security.cache.miss', layer='domain')}",
            f"invalidations\t{total('security.cache.invalidation')}",
            f"interned_domains\t{self._interned_domain_count()}",
        ]
        epoch = getattr(self.vm.policy, "epoch", None)
        if epoch is not None:
            lines.append(f"policy_epoch\t{epoch}")
        return "\n".join(lines) + "\n"

    def _sched_stats(self) -> dict:
        scheduler = getattr(self.vm, "scheduler", None)
        if scheduler is None:
            return {"live": 0, "ready": 0, "timers": 0, "spawned": 0,
                    "completed": 0, "switches": 0, "timer_fires": 0,
                    "task_errors": 0, "running": False}
        return scheduler.stats()

    def _sched_text(self) -> str:
        """``/proc/sched``: the VM's event-loop scheduler, in numbers."""
        stats = self._sched_stats()
        lines = [
            f"running\t{1 if stats['running'] else 0}",
            f"tasks.live\t{stats['live']}",
            f"tasks.ready\t{stats['ready']}",
            f"tasks.timers\t{stats['timers']}",
            f"tasks.spawned\t{stats['spawned']}",
            f"tasks.completed\t{stats['completed']}",
            f"tasks.errors\t{stats['task_errors']}",
            f"switches\t{stats['switches']}",
            f"timer_fires\t{stats['timer_fires']}",
        ]
        return "\n".join(lines) + "\n"

    def _ring_snapshot(self) -> dict:
        from repro.io.streams import RING_STATS
        return RING_STATS.snapshot()

    def _ipc_ring_text(self) -> str:
        """The ring-pipe data plane in numbers.

        Totals are folded in when a pipe endpoint closes (the hot paths
        keep pipe-local counters), so a long-lived pipe's traffic shows
        up here once it is torn down.
        """
        ring = self._ring_snapshot()
        lines = [
            f"wakeups\t{ring['wakeups']}",
            f"suppressed_wakeups\t{ring['suppressed_wakeups']}",
            f"zero_copy_bytes\t{ring['zero_copy_bytes']}",
            f"copies\t{ring['copies']}",
        ]
        return "\n".join(lines) + "\n"

    def _dist_transport_text(self) -> str:
        """The transport fast path, in numbers: framing and the pool."""
        from repro.dist.pool import existing_pool
        metrics = self.vm.telemetry.metrics

        def total(name: str, **match) -> int:
            return int(metrics.total(name, **match))

        lines = [
            f"frames.sent\t{total('dist.frames.sent')}",
            f"frames.received\t{total('dist.frames.received')}",
            f"frames.sent.stdout\t{total('dist.frames.sent', type='o')}",
            f"frames.sent.stderr\t{total('dist.frames.sent', type='e')}",
            f"frames.coalesced\t{total('dist.frames.coalesced')}",
            f"bytes.sent\t{total('dist.bytes.sent')}",
            f"bytes.received\t{total('dist.bytes.received')}",
        ]
        pool = existing_pool(self.vm)
        stats = pool.stats() if pool is not None else {
            "hits": 0, "misses": 0, "evicted": 0, "released": 0, "idle": 0}
        lines.extend([
            f"pool.hits\t{stats['hits']}",
            f"pool.misses\t{stats['misses']}",
            f"pool.evicted\t{stats['evicted']}",
            f"pool.released\t{stats['released']}",
            f"pool.idle\t{stats['idle']}",
        ])
        if pool is not None:
            for endpoint, count in pool.idle_counts().items():
                lines.append(f"pool.idle.{endpoint}\t{count}")
        return "\n".join(lines) + "\n"

    def _has_super(self) -> bool:
        return bool(self.vm.supervisors) or self.vm.admission is not None

    def _super_services_text(self) -> str:
        chunks = []
        for name in sorted(self.vm.supervisors):
            chunks.append(self.vm.supervisors[name].render_services())
        if not chunks:
            return "SERVICE\tSTATE\tPOLICY\tRESTARTS\tAPP\tCLASS\tLAST\n"
        return "".join(chunks)

    def _super_admission_text(self) -> str:
        admission = self.vm.admission
        if admission is None:
            return "admission\toff\n"
        return admission.render_text()

    def _file_payload(self, rel: str) -> bytes:
        parts = self._split(rel)
        if parts == ["vmstat"]:
            return self._vmstat_text().encode("utf-8")
        if parts == ["sched"]:
            return self._sched_text().encode("utf-8")
        if parts == ["security", "cache"]:
            return self._security_cache_text().encode("utf-8")
        if parts and parts[0] == "security":
            raise VfsNotFound(f"/proc{rel}")
        if len(parts) == 2 and parts[0] == "policy" and parts[1].isdigit():
            application = self._application(int(parts[1]))
            self._gate(application, rel)
            return self._policy_text(application).encode("utf-8")
        if parts and parts[0] == "policy":
            raise VfsNotFound(f"/proc{rel}")
        if parts == ["dist", "transport"]:
            return self._dist_transport_text().encode("utf-8")
        if parts and parts[0] == "dist":
            raise VfsNotFound(f"/proc{rel}")
        if parts == ["ipc", "ring"]:
            return self._ipc_ring_text().encode("utf-8")
        if parts and parts[0] == "ipc":
            raise VfsNotFound(f"/proc{rel}")
        if parts and parts[0] == "super":
            if not self._has_super():
                raise VfsNotFound(f"/proc{rel}")
            if parts == ["super", "services"]:
                return self._super_services_text().encode("utf-8")
            if parts == ["super", "admission"]:
                return self._super_admission_text().encode("utf-8")
            raise VfsNotFound(f"/proc{rel}")
        if parts and parts[0] == "cluster":
            cluster = self.vm.cluster
            if cluster is None:
                raise VfsNotFound(f"/proc{rel}")
            if parts == ["cluster", "nodes"]:
                return cluster.render_nodes().encode("utf-8")
            if parts == ["cluster", "placements"]:
                return cluster.render_placements().encode("utf-8")
            raise VfsNotFound(f"/proc{rel}")
        if len(parts) == 2 and parts[0].isdigit():
            application = self._application(int(parts[0]))
            self._gate(application, rel)
            if parts[1] == "status":
                return self._status_text(application).encode("utf-8")
            if parts[1] == "metrics":
                return self._metrics_text(application).encode("utf-8")
            if parts[1] == "audit":
                return self._audit_text(application).encode("utf-8")
        raise VfsNotFound(f"/proc{rel}")

    # -- the provider protocol (stat / listdir / read) -------------------------

    def stat(self, rel: str, user) -> VfsStat:
        parts = self._split(rel)
        if not parts:
            return VfsStat(_ino(rel), "dir", 0o555, 0, 0, 0, 0, 1)
        if len(parts) == 1 and parts[0].isdigit():
            self._application(int(parts[0]))
            return VfsStat(_ino(rel), "dir", 0o555, 0, 0, 0, 0, 1)
        if parts == ["cluster"]:
            if self.vm.cluster is None:
                raise VfsNotFound(f"/proc{rel}")
            return VfsStat(_ino(rel), "dir", 0o555, 0, 0, 0, 0, 1)
        if parts == ["super"]:
            if not self._has_super():
                raise VfsNotFound(f"/proc{rel}")
            return VfsStat(_ino(rel), "dir", 0o555, 0, 0, 0, 0, 1)
        if parts == ["security"] or parts == ["dist"] \
                or parts == ["ipc"] or parts == ["policy"]:
            return VfsStat(_ino(rel), "dir", 0o555, 0, 0, 0, 0, 1)
        payload = self._file_payload(rel)
        return VfsStat(_ino(rel), "file", 0o444, 0, 0, len(payload), 0, 1)

    def listdir(self, rel: str, user) -> list[str]:
        parts = self._split(rel)
        if not parts:
            registry = self.vm.application_registry
            applications = registry.applications(check=False) \
                if registry is not None else []
            entries = sorted([str(a.app_id) for a in applications], key=int)
            if self.vm.cluster is not None:
                entries.append("cluster")
            entries.extend(["dist", "ipc", "policy", "sched", "security"])
            if self._has_super():
                entries.append("super")
            return entries + ["vmstat"]
        if parts == ["cluster"]:
            if self.vm.cluster is None:
                raise VfsNotFound(f"/proc{rel}")
            return ["nodes", "placements"]
        if parts == ["super"]:
            if not self._has_super():
                raise VfsNotFound(f"/proc{rel}")
            return ["admission", "services"]
        if parts == ["security"]:
            return ["cache"]
        if parts == ["dist"]:
            return ["transport"]
        if parts == ["ipc"]:
            return ["ring"]
        if parts == ["policy"]:
            registry = self.vm.application_registry
            applications = registry.applications(check=False) \
                if registry is not None else []
            return sorted([str(a.app_id) for a in applications], key=int)
        if len(parts) == 1 and parts[0].isdigit():
            application = self._application(int(parts[0]))
            self._gate(application, rel)
            return ["audit", "metrics", "status"]
        if len(parts) == 1:
            raise VfsNotFound(f"/proc{rel}")
        raise VfsNotADirectory(f"/proc{rel}")

    def read(self, rel: str, user) -> bytes:
        parts = self._split(rel)
        if not parts or (len(parts) == 1 and parts[0].isdigit()) \
                or parts == ["security"] or parts == ["dist"] \
                or parts == ["ipc"] or parts == ["policy"] \
                or (parts == ["cluster"] and self.vm.cluster is not None) \
                or (parts == ["super"] and self._has_super()):
            from repro.unixfs.vfs import VfsIsADirectory
            raise VfsIsADirectory(f"/proc{rel}")
        return self._file_payload(rel)
