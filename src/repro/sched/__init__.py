"""repro.sched — the per-VM event-loop scheduler (continuation tasks).

Public surface:

* :class:`Scheduler` / :class:`Task` — the engine (:mod:`repro.sched.core`);
* :func:`spawn` — run a function (generator functions become true
  continuations) on the calling VM's scheduler, or the process-wide
  default scheduler off-VM;
* :func:`sched_yield` / :func:`sleep` — yieldable requests for task
  bodies (``yield sched_yield()``, ``yield sleep(0.5)``);
* :class:`WaitPoint` / :class:`TaskWaiter` / :class:`SchedEvent` — the
  wait objects the blocking surface parks on
  (:mod:`repro.sched.waitobj`);
* :mod:`repro.sched.ops` — task-side blocking operations (``yield
  from ops.wait_on(...)`` etc.);
* :mod:`repro.sched.timers` — the OS-thread half of the same API
  (``timers.sleep``, ``timers.wait_until``, ``timers.poll_until``);
* :func:`drive_inline` — run a task generator synchronously on a
  dedicated OS thread (the ``threads="os"`` escape hatch).
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.sched import ops, timers
from repro.sched.core import (
    LOOP_IDENTS,
    JoinRequest,
    Scheduler,
    SleepRequest,
    Task,
    WaitRequest,
    YIELD,
    assert_not_loop_thread,
    drive_inline,
    sched_yield,
    sleep,
)
from repro.sched.waitobj import SchedEvent, TaskWaiter, WaitPoint

__all__ = [
    "Scheduler", "Task", "spawn", "sched_yield", "sleep",
    "SleepRequest", "WaitRequest", "JoinRequest", "YIELD",
    "WaitPoint", "TaskWaiter", "SchedEvent",
    "drive_inline", "default_scheduler", "current_scheduler",
    "assert_not_loop_thread", "LOOP_IDENTS", "ops", "timers",
]

_default_scheduler: Optional[Scheduler] = None
_default_lock = threading.Lock()


def default_scheduler() -> Scheduler:
    """The process-wide scheduler for tasks spawned outside any VM."""
    global _default_scheduler
    with _default_lock:
        if _default_scheduler is None or not _default_scheduler.running:
            _default_scheduler = Scheduler(name="sched-default")
        return _default_scheduler.start()


def current_scheduler() -> Scheduler:
    """The scheduler for the calling context.

    An attached thread (or a task being stepped) resolves to its VM's
    scheduler; unattached host threads share the process-wide default.
    """
    from repro.jvm.threads import JThread
    thread = JThread.current_or_none()
    if thread is not None:
        vm = thread.group.vm
        if vm is not None:
            return vm.ensure_scheduler()
    return default_scheduler()


def spawn(fn, *args, name: Optional[str] = None,
          scheduler: Optional[Scheduler] = None) -> Task:
    """Spawn ``fn(*args)`` as a task on the contextual scheduler.

    Generator functions become continuations whose every ``yield`` is a
    scheduling (and interrupt-delivery) point; plain callables run in a
    single step.  The spawner's access-control context is snapshotted
    into the task (Section 5.6 inheritance).
    """
    if scheduler is None:
        scheduler = current_scheduler()
    return scheduler.spawn(fn, *args, name=name)
