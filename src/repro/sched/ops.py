"""Task-side blocking operations, as delegating generators.

Where :mod:`repro.sched.timers` is the OS-thread half of the blocking
API, this module is the task half: each helper is a generator meant for
``yield from`` inside a task body, and each yield is a scheduler request
(and therefore an interrupt/stop delivery point — the same per-thread
wait/interrupt contract the OS-thread primitives honor).

The pattern throughout is the condition-variable loop, transplanted:
take the wait-point lock, check the predicate, park a single-shot
:class:`~repro.sched.waitobj.TaskWaiter` if it is false, yield a
``WaitRequest``, and re-check on wakeup.  Because the predicate check
and the parking happen under the same lock the blocking primitives
``notify_all`` under, no wakeup can be lost; because a timed-out
waiter's park token has been consumed, no wakeup can be delivered
twice.

These generators run unchanged under :func:`repro.sched.core.drive_inline`
(the ``threads="os"`` escape hatch), where the yielded requests are
serviced by the matching OS-thread primitives instead.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.sched.core import (
    JoinRequest,
    SleepRequest,
    WaitRequest,
    sched_yield,
)
from repro.sched.waitobj import TaskWaiter


def sleep(seconds: float):
    """Task sleep: ``yield from ops.sleep(0.5)`` (a stop point)."""
    yield SleepRequest(seconds)


def join(target, timeout: Optional[float] = None):
    """Join a Task or JThread: ``ok = yield from ops.join(t)``."""
    finished = yield JoinRequest(target, timeout)
    return bool(finished)


def wait_on(waitpoint, predicate: Callable[[], bool],
            timeout: Optional[float] = None):
    """Park until ``predicate()`` holds on ``waitpoint`` — the task-side
    twin of :func:`repro.sched.timers.wait_until`.

    Returns True when the predicate became true, False on timeout.  The
    waitpoint lock is *not* held across the yield; the predicate is
    re-evaluated under the lock after every wakeup, so spurious and
    broadcast wakeups are safe.
    """
    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        remaining = None
        if deadline is not None:
            remaining = deadline - time.monotonic()
        with waitpoint:
            if predicate():
                return True
            if remaining is not None and remaining <= 0:
                return False
            waiter = TaskWaiter()
            waitpoint.add_task_waiter(waiter)
        yield WaitRequest(waiter, remaining)


def read(stream, max_bytes: int, timeout: Optional[float] = None):
    """Read from a piped/buffered input stream without blocking the loop.

    ``stream`` must expose the non-blocking trio ``try_read(n)`` (bytes,
    or None when it would block), ``readable_hint()`` and
    ``wait_point()`` — :class:`~repro.io.streams.PipedInputStream` and
    :class:`~repro.io.streams.BufferedInputStream` do.  Returns the
    bytes read (b"" at end-of-stream), or None on timeout.
    """
    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        chunk = stream.try_read(max_bytes)
        if chunk is not None:
            return chunk
        remaining = None
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
        ok = yield from wait_on(stream.wait_point(), stream.readable_hint,
                                timeout=remaining)
        if not ok:
            return None


def accept(listener, timeout: Optional[float] = None):
    """Accept on a :class:`~repro.net.fabric.Listener` from a task.

    Returns the accepted endpoint, or None on timeout.  Closure of the
    listener surfaces as the same exception ``accept`` raises.
    """
    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        endpoint = listener.try_accept()
        if endpoint is not None:
            return endpoint
        remaining = None
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
        ok = yield from wait_on(listener.wait_point(),
                                listener.acceptable_hint,
                                timeout=remaining)
        if not ok:
            return None


def next_event(queue, timeout: Optional[float] = None):
    """Take one event from an AWT :class:`~repro.awt.events.EventQueue`.

    Returns the event, or None on timeout/shutdown.
    """
    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        event, closed = queue.try_next_event()
        if event is not None or closed:
            return event
        remaining = None
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
        ok = yield from wait_on(queue.wait_point(), queue.pending_hint,
                                timeout=remaining)
        if not ok:
            return None


def drain_events(queue, timeout: Optional[float] = None):
    """Take the whole backlog from an AWT event queue (batch dispatch).

    Returns a (possibly empty) list; empty means timeout or shutdown.
    """
    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        batch, closed = queue.try_drain_events()
        if batch or closed:
            return batch
        remaining = None
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return []
        ok = yield from wait_on(queue.wait_point(), queue.pending_hint,
                                timeout=remaining)
        if not ok:
            return []


def wait_app(application, timeout: Optional[float] = None):
    """Park until ``application`` reaches a terminal state.

    Returns the exit code, or None on timeout (mirrors
    ``Application.wait_for``).
    """
    ok = yield from wait_on(application._cond, application._is_terminal,
                            timeout=timeout)
    if not ok:
        return None
    return application.exit_code
