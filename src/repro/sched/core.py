"""The event-loop scheduler: continuation tasks instead of OS threads.

The paper's VM gives every ``JThread`` a real OS thread, which caps how
many live applications one VM can hold.  This module supplies the
alternative the ROADMAP calls for: a per-VM event loop in the style of
VIFF's Twisted runtime — each unit of concurrency is a :class:`Task`
whose "program counter" is a Python generator frame, and one OS thread
(the loop) multiplexes all of them.  Switching between tasks is a
``deque`` rotation plus a ``generator.send``, not a kernel context
switch, which is where the order-of-magnitude win on
``bench_context_switch.py`` comes from.

A task *blocks* by yielding a request object instead of calling a
blocking primitive:

``yield sched_yield()`` (or bare ``yield``)
    Give up the loop for one turn (stays runnable).
``yield SleepRequest(seconds)`` — via :func:`repro.sched.sleep`
    Park on the timer heap.
``yield WaitRequest(waiter, timeout)`` — via :func:`repro.sched.ops.wait_on`
    Park on a :class:`~repro.sched.waitobj.WaitPoint` until notified.
``yield JoinRequest(target, timeout)`` — via :func:`repro.sched.ops.join`
    Park until another task or ``JThread`` finishes.

Every yield is a *stop point* in the Section 5.1 sense: ``interrupt()``
and ``stop()`` on the owning ``JThread`` (or on the task itself) are
delivered by throwing ``InterruptedException`` / ``ThreadDeath`` into
the generator at its next resumption, so the reaper can always make
progress — the same contract the OS-thread path honors, formalized the
same way per-thread interrupt/wait permissions are in the
permission-based separation logic literature.

Security survives the move to continuations (Section 5.6): a task
carries the access-control context snapshot its creator had (via its
facade ``JThread`` or its own ``inherited_context``), and because
protection-domain frames are pushed *per resumption* by the
generator-aware ``JMethod`` invoke, the access-control stack seen inside
a task step is exactly what an OS thread running the same code would
see.  The same program can therefore run under the scheduler or under
:func:`drive_inline` on a dedicated OS thread (the ``threads="os"``
escape hatch) with identical security semantics — which
``tests/jvm/test_sched_security.py`` pins.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from collections import deque
from typing import Callable, Iterable, Optional

from repro.jvm.errors import (
    IllegalStateException,
    InterruptedException,
    ThreadDeath,
)
from repro.sched.waitobj import TaskWaiter

#: OS-thread idents of live scheduler loops.  Blocking primitives consult
#: this to refuse to park the loop itself (a task must yield a request
#: instead); the set is almost always empty or tiny, so the check is one
#: set lookup on the slow (about-to-block) path only.
LOOP_IDENTS: set[int] = set()


def assert_not_loop_thread(what: str) -> None:
    """Refuse to block a scheduler loop thread.

    Called by the OS-thread parking paths (``timers.sleep``,
    ``timers.wait_until``, ``JThread.sleep``/``join``).  A task that
    needs to wait must yield a scheduler request; blocking the loop
    would stall every other task on this VM, so it is an error, not a
    deadlock.
    """
    if threading.get_ident() in LOOP_IDENTS:
        raise IllegalStateException(
            f"cannot block the scheduler loop in {what}; tasks must "
            f"yield a wait request (see repro.sched.ops) instead")


class _Yield:
    """Singleton request: reschedule me at the back of the ready queue."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "YIELD"


YIELD = _Yield()


def sched_yield() -> _Yield:
    """The cooperative yield request: ``yield sched_yield()``."""
    return YIELD


class SleepRequest:
    """Park the task on the timer heap for ``seconds``."""

    __slots__ = ("seconds",)

    def __init__(self, seconds: float):
        self.seconds = max(0.0, float(seconds))


def sleep(seconds: float) -> SleepRequest:
    """Task-side sleep: ``yield sched.sleep(0.5)`` (a stop point)."""
    return SleepRequest(seconds)


class WaitRequest:
    """Park until ``waiter`` fires; resumes ``True`` (fired) or
    ``False`` (timed out)."""

    __slots__ = ("waiter", "timeout")

    def __init__(self, waiter: TaskWaiter, timeout: Optional[float] = None):
        self.waiter = waiter
        self.timeout = timeout


class JoinRequest:
    """Park until ``target`` (a Task or JThread) finishes; resumes
    ``True`` (finished) or ``False`` (timed out)."""

    __slots__ = ("target", "timeout")

    def __init__(self, target, timeout: Optional[float] = None):
        self.target = target
        self.timeout = timeout


# Task states (informational; transitions are guarded by the scheduler
# lock where cross-thread visibility matters).
T_NEW = "new"
T_READY = "ready"
T_RUNNING = "running"
T_PARKED = "parked"
T_FINISHED = "finished"


class Task:
    """One continuation: a generator frame plus scheduling state.

    Tasks are normally created through :meth:`Scheduler.spawn` (or the
    ``JThread`` facade, which owns a task when its body is a generator
    function).  ``jthread`` links back to the facade thread, which
    carries group membership, interrupt flags, and the inherited
    access-control context; standalone tasks keep their own copies of
    the last two.
    """

    _ids = itertools.count(1)

    __slots__ = ("task_id", "name", "gen", "scheduler", "jthread",
                 "inherited_context", "state", "result", "exception",
                 "_park_token", "_parked", "_interrupted",
                 "_stop_requested", "_done_event", "_done_callbacks",
                 "_fast")

    def __init__(self, gen, scheduler: "Scheduler",
                 name: Optional[str] = None, jthread=None,
                 inherited_context=None):
        self.task_id = next(Task._ids)
        self.name = name or f"task-{self.task_id}"
        self.gen = gen
        self.scheduler = scheduler
        self.jthread = jthread
        self.inherited_context = inherited_context
        self.state = T_NEW
        self.result = None
        self.exception: Optional[BaseException] = None
        #: Consumed on every resume: at most one wakeup per park wins.
        self._park_token = 0
        self._parked = False
        self._interrupted = False
        self._stop_requested = False
        self._done_event = threading.Event()
        self._done_callbacks: list[Callable[["Task"], None]] = []
        #: True while the loop may take the inlined resume path: no
        #: facade JThread, no inherited context, no pending flags, not
        #: finished.  Cleared (never re-set) by interrupt/stop/finish;
        #: the GIL makes the unlocked read in the loop safe.
        self._fast = jthread is None and inherited_context is None

    # -- lifecycle ----------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self._done_event.is_set()

    def join(self, timeout: Optional[float] = None) -> bool:
        """OS-thread-side join (a stop point for the waiting thread)."""
        assert_not_loop_thread("Task.join")
        from repro.jvm.threads import JThread, POLL_INTERVAL
        waiter = JThread.current_or_none()
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if waiter is not None:
                waiter._check_stop_point()
            remaining = POLL_INTERVAL
            if deadline is not None:
                remaining = min(remaining, deadline - time.monotonic())
                if remaining <= 0:
                    return self._done_event.is_set()
            if self._done_event.wait(remaining):
                return True

    def add_done_callback(self, callback: Callable[["Task"], None]) -> None:
        """Run ``callback(task)`` on the loop thread when the task ends
        (immediately, on the calling thread, if it already has)."""
        run_now = False
        with self.scheduler._lock:
            if self._done_event.is_set():
                run_now = True
            else:
                self._done_callbacks.append(callback)
        if run_now:
            callback(self)

    # -- interruption (mirrors JThread semantics) ---------------------------

    def interrupt(self) -> None:
        """Interrupt: raises ``InterruptedException`` at the next yield."""
        jthread = self.jthread
        if jthread is not None:
            jthread.interrupt()
            return
        self._fast = False
        self._interrupted = True
        self.scheduler._kick(self)

    def stop(self) -> None:
        """Cooperative stop: ``ThreadDeath`` at the next yield."""
        jthread = self.jthread
        if jthread is not None:
            jthread.stop()
            return
        self._fast = False
        self._stop_requested = True
        self._interrupted = True
        self.scheduler._kick(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Task({self.name!r}, {self.state})"


def _one_shot(fn: Callable, args: tuple):
    """Wrap a plain callable as a single-step task body."""
    return fn(*args)
    yield  # pragma: no cover - makes this a generator function


class Scheduler:
    """A per-VM event loop running continuation tasks on one OS thread.

    Three queues drive it (the classic event-loop trio):

    * the **ready** deque — tasks runnable right now;
    * the **timer** heap — ``SleepRequest`` deadlines and wait/join
      timeouts (lazily cancelled: stale entries are skipped by the
      park-token check when they fire);
    * the **external** queue — thread-safe submissions from other OS
      threads (spawns, :class:`~repro.sched.waitobj.WaitPoint`
      notifications, interrupts), drained into the ready deque at the
      top of every loop iteration.  This is the IO queue: every
      blocking primitive's ``notify_all`` lands here.

    The loop steps tasks in batches; between batches it re-checks
    externals and timers, and when nothing is runnable it sleeps on one
    ``threading.Event`` until the next timer deadline or submission.
    """

    def __init__(self, name: str = "sched", telemetry=None):
        self.name = name
        self.telemetry = telemetry
        self._ready: deque = deque()
        self._timers: list = []
        self._timer_seq = itertools.count()
        self._external: deque = deque()
        self._wakeup = threading.Event()
        self._lock = threading.Lock()
        self._live: set[Task] = set()
        self._loop_thread: Optional[threading.Thread] = None
        self._ident: Optional[int] = None
        self._stopping = False
        self._stopped = threading.Event()
        self._current: Optional[Task] = None
        # Plain-int hot-path counters; surfaced via /proc/sched and
        # vmstat.  Only spawn/finish touch the (locked) metrics registry.
        self.switches = 0
        self.spawned = 0
        self.completed = 0
        self.timer_fires = 0
        self.task_errors = 0

    # -- starting and stopping ----------------------------------------------

    def start(self) -> "Scheduler":
        """Start the loop thread (idempotent)."""
        with self._lock:
            if self._loop_thread is not None:
                return self
            # A plain Python daemon thread, not a JThread: the loop hosts
            # many tasks and registers *their* JThread identities per
            # step; VM lifetime accounting tracks the tasks, not the loop.
            self._loop_thread = threading.Thread(
                target=self._run, name=f"{self.name}-loop", daemon=True)
            self._loop_thread.start()
        return self

    @property
    def running(self) -> bool:
        return (self._loop_thread is not None
                and not self._stopped.is_set())

    def shutdown(self, timeout: float = 2.0) -> None:
        """Stop the loop; remaining tasks die at their next stop point.

        Each live task gets ``ThreadDeath`` thrown into its frame, so
        ``finally`` blocks and ``JThread`` finish hooks run exactly once
        — the same teardown contract the application reaper relies on
        for OS threads.  Safe to call from any thread, including a task
        (the loop then winds itself down after the current step).
        """
        with self._lock:
            if self._loop_thread is None:
                self._stopping = True
                return
            self._stopping = True
        self._wakeup.set()
        if threading.get_ident() != self._ident:
            self._stopped.wait(timeout)

    # -- spawning ------------------------------------------------------------

    def spawn(self, fn: Callable, *args, name: Optional[str] = None) -> Task:
        """Run ``fn(*args)`` as a task.

        Generator functions become true continuations (each ``yield`` a
        scheduling point); plain callables run to completion in a single
        step — callback-style tasks that must not block.  The spawner's
        access-control context is snapshotted so a task can never hold
        more privilege than the code that created it (the Arbiter-style
        invariant: privilege state stays per-task inside the shared
        loop).
        """
        import inspect

        if inspect.isgeneratorfunction(fn):
            gen = fn(*args)
        elif inspect.isgenerator(fn):
            gen = fn
        else:
            gen = _one_shot(fn, args)
        from repro.security import access
        inherited = access.snapshot_inherited_context()
        task = Task(gen, self, name=name, inherited_context=inherited)
        return self._launch(task)

    def spawn_task(self, gen, name: Optional[str] = None,
                   jthread=None) -> Task:
        """Spawn an already-created generator (the JThread facade path)."""
        task = Task(gen, self, name=name, jthread=jthread)
        return self._launch(task)

    def _launch(self, task: Task) -> Task:
        self.start()
        with self._lock:
            if self._stopping:
                raise IllegalStateException(
                    f"scheduler {self.name} is shutting down")
            self._live.add(task)
            task.state = T_READY
            self._external.append((task, None, None))
            self.spawned += 1
        self._wakeup.set()
        if self.telemetry is not None:
            metrics = self.telemetry.metrics
            metrics.counter("sched.tasks.spawned").inc()
            metrics.gauge("sched.tasks.live").set(len(self._live))
        return task

    # -- cross-thread wakeups ------------------------------------------------

    def _submit(self, task: Task, value=None, exc=None,
                token: Optional[int] = None) -> bool:
        """Thread-safe resume; the park token makes wakeups single-shot
        (a notify and a timeout racing for the same park deliver once)."""
        with self._lock:
            if token is not None and token != task._park_token:
                return False
            task._park_token += 1
            task._parked = False
            if task._done_event.is_set():
                return False
            task.state = T_READY
            self._external.append((task, value, exc))
        self._wakeup.set()
        return True

    def _kick(self, task: Task) -> None:
        """Wake a parked task so a pending interrupt/stop gets delivered."""
        with self._lock:
            if not task._parked or task._done_event.is_set():
                return
            task._park_token += 1
            task._parked = False
            task.state = T_READY
            self._external.append((task, None, None))
        self._wakeup.set()

    # -- the loop ------------------------------------------------------------

    def _run(self) -> None:
        self._ident = threading.get_ident()
        LOOP_IDENTS.add(self._ident)
        try:
            ready = self._ready
            while True:
                if self._external:
                    with self._lock:
                        while self._external:
                            ready.append(self._external.popleft())
                if self._timers:
                    self._fire_due_timers()
                if self._stopping:
                    break
                if not ready:
                    delay = self._next_timer_delay()
                    self._wakeup.wait(delay)
                    self._wakeup.clear()
                    continue
                # Step the present batch; new externals and due timers
                # are picked up between batches.  The common case — a
                # flag-free, facade-less task resuming from a plain
                # yield — is inlined here: one ``send``, one deque
                # append, no function call.  This is what makes a task
                # switch an order of magnitude cheaper than an OS-thread
                # hand-off (``bench_context_switch.py``).
                stepped = 0
                for _ in range(len(ready)):
                    item = ready.popleft()
                    task = item[0]
                    if task._fast and item[1] is None and item[2] is None:
                        stepped += 1
                        self._current = task
                        try:
                            out = task.gen.send(None)
                        except BaseException as raised:  # noqa: BLE001
                            if isinstance(raised, StopIteration):
                                self._finish(task, result=raised.value)
                            else:
                                self._finish(task, exc=raised)
                            if self._stopping:
                                break
                            continue
                        if out is None or out is YIELD:
                            # Still runnable: the popped entry is already
                            # (task, None, None) — reuse it, no allocation.
                            ready.append(item)
                        else:
                            self._handle_request(task, out)
                    else:
                        self._step(task, item[1], item[2])
                    if self._stopping:
                        break
                self._current = None
                if stepped:
                    self.switches += stepped
            self._cancel_all()
        finally:
            LOOP_IDENTS.discard(self._ident)
            self._stopped.set()

    def _next_timer_delay(self) -> Optional[float]:
        if not self._timers:
            return None
        return max(0.0, self._timers[0][0] - time.monotonic())

    def _fire_due_timers(self) -> None:
        now = time.monotonic()
        timers = self._timers
        while timers and timers[0][0] <= now:
            _, _, task, token, value = heapq.heappop(timers)
            self.timer_fires += 1
            # Lazy cancellation: a stale token means the park this timer
            # guarded was already resumed by its waiter.
            self._submit(task, value=value, token=token)

    def _add_timer(self, deadline: float, task: Task, token: int,
                   value) -> None:
        heapq.heappush(self._timers,
                       (deadline, next(self._timer_seq), task, token, value))

    def _park(self, task: Task) -> int:
        with self._lock:
            task._park_token += 1
            task._parked = True
            task.state = T_PARKED
            return task._park_token

    # -- stepping ------------------------------------------------------------

    def _step(self, task: Task, value, exc) -> None:
        if task._done_event.is_set():
            return
        jthread = task.jthread
        # Deliver pending interrupt/stop at this resumption (stop wins),
        # mirroring JThread._check_stop_point.  Flag reads are unlocked
        # (GIL-atomic); the locked resolution only runs when flagged.
        if jthread is not None:
            if jthread._stop_requested or jthread._interrupted:
                with jthread._wake:
                    if jthread._stop_requested:
                        exc = ThreadDeath(f"thread {jthread.name} stopped")
                    elif jthread._interrupted:
                        jthread._interrupted = False
                        exc = InterruptedException(
                            f"thread {jthread.name} interrupted")
            # The loop thread *is* this JThread for the duration of the
            # step: security checks, group lookups and Application
            # resolution all go through JThread.current_or_none().
            # Unlocked dict write: item assignment is GIL-atomic and
            # this key is only ever touched by this loop thread.
            from repro.jvm.threads import _current_jthreads
            _current_jthreads[self._ident] = jthread
        else:
            if task._stop_requested:
                exc = ThreadDeath(f"task {task.name} stopped")
                task._stop_requested = False
            elif task._interrupted:
                task._interrupted = False
                exc = InterruptedException(f"task {task.name} interrupted")
            if task.inherited_context is not None:
                from repro.security import access
                access.set_task_floor(task.inherited_context)
        self._current = task
        task.state = T_RUNNING
        self.switches += 1
        try:
            if exc is not None:
                out = task.gen.throw(exc)
            else:
                out = task.gen.send(value)
        except StopIteration as stop:
            self._finish(task, result=stop.value)
            return
        except BaseException as raised:  # noqa: BLE001 - loop survives
            self._finish(task, exc=raised)
            return
        finally:
            self._current = None
            if jthread is not None:
                from repro.jvm.threads import _current_jthreads
                _current_jthreads.pop(self._ident, None)
            elif task.inherited_context is not None:
                from repro.security import access
                access.set_task_floor(None)
        self._handle_request(task, out)

    def _handle_request(self, task: Task, out) -> None:
        if out is None or out is YIELD:
            task.state = T_READY
            self._ready.append((task, None, None))
            return
        if type(out) is SleepRequest:
            token = self._park(task)
            self._add_timer(time.monotonic() + out.seconds, task, token,
                            None)
            return
        if type(out) is WaitRequest:
            token = self._park(task)
            if out.timeout is not None:
                self._add_timer(time.monotonic() + out.timeout, task,
                                token, False)
            out.waiter.bind_callback(
                lambda: self._submit(task, value=True, token=token))
            return
        if type(out) is JoinRequest:
            self._handle_join(task, out)
            return
        # Unknown yields are a programming error in the task; deliver it
        # there instead of killing the loop.
        self._ready.append((task, None, IllegalStateException(
            f"task {task.name} yielded {out!r}; expected a scheduler "
            f"request (sched_yield/sleep/WaitRequest/JoinRequest)")))

    def _handle_join(self, task: Task, request: JoinRequest) -> None:
        target = request.target
        token = self._park(task)
        if request.timeout is not None:
            self._add_timer(time.monotonic() + request.timeout, task,
                            token, False)
        if isinstance(target, Task):
            self._submit_on_done(target, task, token)
            return
        # A JThread (either backing): watch its finish atomically.
        already = target._add_finish_watch(
            lambda _t: self._submit(task, value=True, token=token))
        if already:
            self._submit(task, value=True, token=token)

    def _submit_on_done(self, target: Task, task: Task, token: int) -> None:
        target.add_done_callback(
            lambda _t: self._submit(task, value=True, token=token))

    def _finish(self, task: Task, result=None,
                exc: Optional[BaseException] = None) -> None:
        task.result = result
        if exc is not None and not isinstance(exc, ThreadDeath):
            task.exception = exc
        callbacks: list = []
        with self._lock:
            self._live.discard(task)
            task.state = T_FINISHED
            task._fast = False
            self.completed += 1
            callbacks, task._done_callbacks = task._done_callbacks, []
        jthread = task.jthread
        if jthread is not None:
            # The facade's common end-of-life path: finish hooks exactly
            # once, uncaught-exception reporting, VM accounting.
            from repro.jvm.threads import _current_jthreads
            _current_jthreads[self._ident] = jthread
            try:
                jthread._finish(exc)
            finally:
                _current_jthreads.pop(self._ident, None)
        elif task.exception is not None:
            self.task_errors += 1
        task._done_event.set()
        for callback in callbacks:
            try:
                callback(task)
            except BaseException:  # noqa: BLE001 - loop survives
                self.task_errors += 1
        if self.telemetry is not None:
            metrics = self.telemetry.metrics
            metrics.counter("sched.tasks.completed").inc()
            metrics.gauge("sched.tasks.live").set(len(self._live))

    def _cancel_all(self) -> None:
        """Teardown: ThreadDeath into every remaining frame, hooks run."""
        with self._lock:
            remaining = list(self._live)
        for task in remaining:
            if task._done_event.is_set():
                continue
            try:
                task.gen.throw(ThreadDeath(
                    f"scheduler {self.name} shut down"))
                # A frame that survives ThreadDeath and yields again is
                # beyond cooperation; drop it.
                task.gen.close()
                self._finish(task)
            except (StopIteration, ThreadDeath):
                self._finish(task, exc=ThreadDeath("stopped"))
            except BaseException as raised:  # noqa: BLE001
                self._finish(task, exc=raised)

    # -- introspection -------------------------------------------------------

    def current_task(self) -> Optional[Task]:
        """The task being stepped (meaningful on the loop thread only)."""
        return self._current

    def stats(self) -> dict:
        with self._lock:
            live = len(self._live)
            ready = len(self._ready) + len(self._external)
            timers = len(self._timers)
        return {"live": live, "ready": ready, "timers": timers,
                "spawned": self.spawned, "completed": self.completed,
                "switches": self.switches, "timer_fires": self.timer_fires,
                "task_errors": self.task_errors,
                "running": self.running}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Scheduler({self.name!r}, live={len(self._live)})"


def drive_inline(gen) -> object:
    """Run a task generator to completion on the *calling* OS thread.

    The ``threads="os"`` escape hatch: the very same continuation
    program a scheduler would multiplex runs on a dedicated thread, with
    each yielded request serviced by the matching blocking primitive
    (``SleepRequest`` → ``JThread.sleep``, ``WaitRequest`` → an event
    wait, ``JoinRequest`` → a join — all interruptible stop points).
    Interrupts raised while servicing a request are thrown back into the
    generator at the same yield, so delivery points are identical under
    both backings.
    """
    from repro.jvm.threads import JThread, checkpoint, POLL_INTERVAL

    value, exc = None, None
    while True:
        try:
            if exc is not None:
                pending, exc = exc, None
                out = gen.throw(pending)
            else:
                out = gen.send(value)
        except StopIteration as stop:
            return stop.value
        value = None
        try:
            if out is None or out is YIELD:
                checkpoint()
            elif type(out) is SleepRequest:
                JThread.sleep(out.seconds)
            elif type(out) is WaitRequest:
                value = _wait_inline(out.waiter, out.timeout,
                                     POLL_INTERVAL)
            elif type(out) is JoinRequest:
                value = _join_inline(out.target, out.timeout)
            else:
                raise IllegalStateException(
                    f"task yielded {out!r}; expected a scheduler request")
        except (InterruptedException, ThreadDeath) as caught:
            exc = caught


def _wait_inline(waiter: TaskWaiter, timeout: Optional[float],
                 poll: float) -> bool:
    from repro.jvm.threads import checkpoint
    event = waiter.bind_event()
    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        checkpoint()
        remaining = poll
        if deadline is not None:
            remaining = min(remaining, deadline - time.monotonic())
            if remaining <= 0:
                return event.is_set()
        if event.wait(remaining):
            return True


def _join_inline(target, timeout: Optional[float]) -> bool:
    if isinstance(target, Task):
        return target.join(timeout)
    target.join(timeout)
    return not target.is_alive()
