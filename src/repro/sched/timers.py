"""One scheduler-aware timing API for every OS-thread blocking path.

Before this module the codebase had three ad-hoc sleep/timeout idioms:
raw ``time.sleep`` in polling loops, hand-rolled ``Condition.wait``
deadline loops (``interruptible_wait``), and the supervisor's backoff
timer.  They all become one surface here, with two properties the
scheduler relies on:

* every wait is an interruptible *stop point* (``ThreadDeath`` /
  ``InterruptedException`` delivered at :data:`POLL_INTERVAL`
  granularity, Section 5.1's reaper guarantee), and
* none of them may ever run on a scheduler loop thread — tasks park by
  yielding requests (:mod:`repro.sched.ops`), and blocking the loop
  would stall every task on the VM, so these helpers refuse loudly
  (:func:`repro.sched.core.assert_not_loop_thread`) instead of
  deadlocking quietly.

``repro.jvm.threads.interruptible_wait`` is retained as a
``DeprecationWarning`` shim forwarding to :func:`wait_until`.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.sched.core import assert_not_loop_thread

#: Granularity (seconds) at which blocking waits re-check interruption.
#: Mirrors (and must stay equal to) ``repro.jvm.threads.POLL_INTERVAL``.
POLL_INTERVAL = 0.01


def sleep(seconds: float) -> None:
    """Interruptible sleep — a stop point on attached threads.

    The single replacement for both ``JThread.sleep`` call sites and the
    raw ``time.sleep`` idiom in supervision/cluster polling loops: an
    attached thread sleeps interruptibly; an unattached host thread
    falls back to a plain sleep.
    """
    assert_not_loop_thread("timers.sleep")
    from repro.jvm.threads import JThread
    JThread.sleep(seconds)


def wait_until(condition, predicate: Callable[[], bool],
               timeout: Optional[float] = None) -> bool:
    """Wait on ``condition`` until ``predicate()`` — a stop point.

    The caller must hold ``condition`` (a ``threading.Condition`` or a
    :class:`~repro.sched.waitobj.WaitPoint`; both expose ``wait``).
    Returns True when the predicate became true, False on timeout.
    Raises ``InterruptedException`` / ``ThreadDeath`` if the calling
    thread is interrupted or stopped while waiting.  Every OS-thread
    blocking primitive in this library (pipes, event queues, listener
    accepts, application waits) is built on this helper so the reaper of
    Section 5.1 can always make progress.  Tasks use the generator
    equivalent, :func:`repro.sched.ops.wait_on`.
    """
    assert_not_loop_thread("timers.wait_until")
    from repro.jvm.threads import JThread
    thread = JThread.current_or_none()
    deadline = None if timeout is None else time.monotonic() + timeout
    while not predicate():
        if thread is not None:
            thread._check_stop_point()
        wait_for = POLL_INTERVAL
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            wait_for = min(wait_for, remaining)
        condition.wait(wait_for)
    return True


def poll_until(predicate: Callable[[], bool],
               timeout: Optional[float] = None,
               interval: float = POLL_INTERVAL) -> bool:
    """Interruptible polling loop for conditions with no wait object.

    Replaces the bare ``while not done: time.sleep(x)`` idiom (cluster
    spawn readiness, test harness waits).  Returns True when the
    predicate became true, False on timeout; interruption semantics as
    :func:`sleep`.
    """
    assert_not_loop_thread("timers.poll_until")
    deadline = None if timeout is None else time.monotonic() + timeout
    while not predicate():
        wait_for = interval
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            wait_for = min(wait_for, remaining)
        sleep(wait_for)
    return True
