"""Scheduler wait-objects: one parking abstraction for threads *and* tasks.

The pre-scheduler codebase parked every blocked thread on a raw
``threading.Condition`` — pipes, listeners, event queues, application
waits each owned one.  That worked because every waiter *was* an OS
thread.  With the event-loop scheduler (:mod:`repro.sched.core`) a waiter
may instead be a continuation task that must not block its loop thread,
so the blocking surface needed one object both kinds of waiter can park
on.

:class:`WaitPoint` is that object.  It is condition-variable compatible
(``with wp:``, ``wp.wait(t)``, ``wp.notify_all()``) so the existing
OS-thread code paths — including :func:`repro.sched.timers.wait_until`,
the successor of ``interruptible_wait`` — keep working unchanged, and it
additionally carries a list of parked :class:`TaskWaiter` continuations
that ``notify_all`` fires.  A fired task waiter does not run anything
inline; it hands the parked task back to its scheduler's ready queue
(thread-safe), exactly like a condvar wakeup hands a thread back to the
OS run queue.

:class:`SchedEvent` is the smallest useful composite: a one-way latch an
OS thread can ``wait()`` on and a task can ``yield from
event.wait_task()`` on — the building block the 10k-idle-application
smoke test parks its whole fleet on.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional


class TaskWaiter:
    """One parked continuation (or inline driver) on a :class:`WaitPoint`.

    A waiter is single-shot: the first :meth:`fire` wins, later fires are
    no-ops.  Whoever parks binds *how* the wakeup is delivered — the
    scheduler binds a callback that re-enqueues the task; the inline
    (OS-thread) driver binds a ``threading.Event`` it then blocks on.
    Binding after the fire delivers immediately, so the
    check-predicate-then-park race resolves safely on either side.
    """

    __slots__ = ("_lock", "_fired", "_callback", "_event")

    def __init__(self):
        self._lock = threading.Lock()
        self._fired = False
        self._callback: Optional[Callable[[], None]] = None
        self._event: Optional[threading.Event] = None

    @property
    def fired(self) -> bool:
        with self._lock:
            return self._fired

    def fire(self) -> None:
        """Deliver the wakeup exactly once (any thread may call this)."""
        with self._lock:
            if self._fired:
                return
            self._fired = True
            callback = self._callback
            event = self._event
            self._callback = None
        if callback is not None:
            callback()
        if event is not None:
            event.set()

    def bind_callback(self, callback: Callable[[], None]) -> None:
        """Scheduler-side binding: run ``callback`` on fire (or now)."""
        run_now = False
        with self._lock:
            if self._fired:
                run_now = True
            else:
                self._callback = callback
        if run_now:
            callback()

    def bind_event(self) -> threading.Event:
        """Inline-driver binding: an event set on fire (or already set)."""
        with self._lock:
            if self._event is None:
                self._event = threading.Event()
                if self._fired:
                    self._event.set()
            return self._event


class WaitPoint:
    """A condition variable whose waiters may be OS threads *or* tasks.

    Drop-in for the ``threading.Condition`` idioms this library uses:

    * ``with waitpoint:`` — take the underlying lock (pass ``lock=`` to
      share a plain ``Lock`` exactly as ``RingPipe`` does);
    * ``waitpoint.wait(timeout)`` — OS-thread park (caller holds the
      lock; used via :func:`repro.sched.timers.wait_until`);
    * ``waitpoint.notify_all()`` — wakes blocked OS threads **and**
      fires every parked task continuation.

    Task-side parking goes through :meth:`add_task_waiter` (lock held),
    normally via the :func:`repro.sched.ops.wait_on` generator, which
    re-checks its predicate on every wakeup just like a condvar loop.
    Waiters are fired (not run) under the lock; firing only flips the
    single-shot latch and posts to a scheduler ready queue, so no user
    code runs with the wait-point lock held.
    """

    __slots__ = ("_cond", "_task_waiters")

    def __init__(self, lock=None):
        self._cond = threading.Condition(lock)
        self._task_waiters: list[TaskWaiter] = []

    # -- lock protocol ------------------------------------------------------

    def acquire(self, *args, **kwargs):
        return self._cond.acquire(*args, **kwargs)

    def release(self) -> None:
        self._cond.release()

    def __enter__(self):
        self._cond.__enter__()
        return self

    def __exit__(self, *exc_info):
        return self._cond.__exit__(*exc_info)

    # -- waiting ------------------------------------------------------------

    def wait(self, timeout: Optional[float] = None) -> bool:
        """OS-thread wait (caller holds the lock), condvar semantics."""
        return self._cond.wait(timeout)

    def add_task_waiter(self, waiter: TaskWaiter) -> None:
        """Park a task continuation; the caller must hold the lock."""
        self._task_waiters.append(waiter)

    # -- signalling ---------------------------------------------------------

    def notify_all(self) -> None:
        self._cond.notify_all()
        if self._task_waiters:
            waiters = self._task_waiters
            self._task_waiters = []
            for waiter in waiters:
                waiter.fire()

    # Task waiters re-check their predicate on wakeup (condvar-loop
    # style), so waking every parked continuation is always correct;
    # notify(n) therefore deliberately broadcasts to the task side.
    def notify(self, n: int = 1) -> None:
        self._cond.notify(n)
        if self._task_waiters:
            waiters = self._task_waiters
            self._task_waiters = []
            for waiter in waiters:
                waiter.fire()

    def task_waiter_count(self) -> int:
        """Parked continuations (diagnostics; caller should hold lock)."""
        return len(self._task_waiters)


class SchedEvent:
    """A one-way latch both OS threads and tasks can wait on.

    ``set()`` may be called from any thread (or from a task step); it
    wakes every OS thread blocked in :meth:`wait` and resumes every task
    parked in :meth:`wait_task`.
    """

    def __init__(self):
        self._wp = WaitPoint()
        self._flag = False

    @property
    def is_set(self) -> bool:
        with self._wp:
            return self._flag

    def set(self) -> None:
        with self._wp:
            self._flag = True
            self._wp.notify_all()

    def clear(self) -> None:
        with self._wp:
            self._flag = False

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Interruptible OS-thread wait (a stop point)."""
        from repro.sched.timers import wait_until
        with self._wp:
            return wait_until(self._wp, lambda: self._flag, timeout=timeout)

    def wait_task(self, timeout: Optional[float] = None):
        """Task-side wait: ``ok = yield from event.wait_task()``."""
        from repro.sched.ops import wait_on
        result = yield from wait_on(self._wp, lambda: self._flag,
                                    timeout=timeout)
        return result

    def wait_point(self) -> WaitPoint:
        return self._wp


def _monotonic() -> float:
    return time.monotonic()
